"""repro.overlay — the protocol-agnostic overlay interface layer.

The paper's Section-3 framework treats Chord, CAN, Plaxton-style prefix
routing, and Kleinberg's small-world grid as instances of one idea: greedy
routing over a metric space.  This package states that idea as code:

* :class:`Overlay` — the structural protocol every routable topology
  implements (labels, neighbour iteration, metric, failure/repair ops, and
  ``compile_snapshot() -> OverlaySnapshot``);
* :class:`OverlayMixin` — the shared implementation half: liveness
  bookkeeping, seeded failure injection, the scalar greedy loop, and the
  CSR snapshot compiler;
* :mod:`repro.overlay.policy` — per-protocol next-hop rules
  (:class:`GreedyPolicy`) as data the batched
  :class:`~repro.fastpath.BatchGreedyRouter` executes, hop-for-hop identical
  to each protocol's scalar ``route()``.

``OverlaySnapshot`` is the compiled-array form shared by every overlay — one
snapshot type (:class:`~repro.fastpath.snapshot.FastpathSnapshot`) whatever
the topology, so the experiment harness, benchmarks, and sweeps stay
engine- and protocol-agnostic.
"""

from __future__ import annotations

from typing import Any

from repro.overlay.mixin import OverlayMixin
from repro.overlay.policy import (
    ChordGreedyPolicy,
    GreedyPolicy,
    MetricGreedyPolicy,
    PrefixGreedyPolicy,
    TorusGreedyPolicy,
)
from repro.overlay.protocol import PROTOCOLS, Overlay


def __getattr__(name: str) -> Any:
    # OverlaySnapshot is FastpathSnapshot under its protocol-layer name;
    # resolved lazily because repro.fastpath imports repro.overlay.policy.
    if name == "OverlaySnapshot":
        from repro.fastpath.snapshot import FastpathSnapshot

        return FastpathSnapshot
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Overlay",
    "OverlayMixin",
    "OverlaySnapshot",
    "PROTOCOLS",
    "GreedyPolicy",
    "MetricGreedyPolicy",
    "TorusGreedyPolicy",
    "PrefixGreedyPolicy",
    "ChordGreedyPolicy",
]

"""Greedy next-hop rules as data the batched router can execute.

Section 3 of the paper argues that Chord, CAN, and Plaxton-style schemes are
all *greedy routing in a metric space*: each protocol differs only in which
distance it shrinks and which neighbours are admissible at each hop.  A
:class:`GreedyPolicy` captures exactly that difference as a vectorized
key computation, so one :class:`~repro.fastpath.BatchGreedyRouter` loop can
evaluate every topology:

* per hop the router gathers the dense neighbour rows of all active queries
  and asks the policy for a **key matrix** — one integer per (query,
  candidate) pair;
* entries ``>= policy.blocked`` mark inadmissible candidates (farther than
  the current node, overshooting, padding);
* the router forwards each query to its row's first minimal key, which must
  reproduce the scalar protocol's next-hop choice *including tie-breaks*
  (every scalar rule here breaks ties in favour of the earliest neighbour,
  and ``argmin`` returns the first minimum).

Policies are pure value objects over plain integers/arrays — no graph or
snapshot references — so they serialise with the spec layer and are shared
freely across liveness variants of a snapshot.  Liveness and the
neighbour-knowledge regime are *router* concerns and deliberately stay out
of the key computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.routing import RoutingMode

__all__ = [
    "GreedyPolicy",
    "MetricGreedyPolicy",
    "TorusGreedyPolicy",
    "PrefixGreedyPolicy",
    "ChordGreedyPolicy",
]


class GreedyPolicy:
    """Abstract vectorized next-hop rule.

    Subclasses define :attr:`blocked` (an integer strictly larger than any
    admissible key) and :meth:`candidate_keys`.  :meth:`distance` exposes the
    policy's underlying metric for diagnostics and tests.
    """

    #: Sentinel key marking an inadmissible candidate; every admissible key
    #: is strictly smaller.
    blocked: int

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized metric distance between label arrays (broadcasting)."""
        raise NotImplementedError

    def candidate_keys(
        self,
        current_labels: np.ndarray,
        neighbor_labels: np.ndarray,
        valid: np.ndarray,
        target_labels: np.ndarray,
        mode: RoutingMode,
        edge_class: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return the ``(queries, max_degree)`` key matrix for one hop.

        Parameters
        ----------
        current_labels, target_labels:
            ``(queries,)`` label arrays of each query's current node and goal.
        neighbor_labels:
            ``(queries, max_degree)`` labels of each current node's neighbour
            row (garbage in padding slots).
        valid:
            ``(queries, max_degree)`` mask of real (non-padding) entries.
        mode:
            The router's greedy mode.  Policies whose protocol fixes the rule
            (Chord's one-sided clockwise walk, prefix resolution) ignore it.
        edge_class:
            ``(queries, max_degree)`` per-edge class codes when the snapshot
            carries them (Chord's finger-vs-successor tiers), else ``None``.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class MetricGreedyPolicy(GreedyPolicy):
    """The paper's rule: move strictly closer under a 1-D ring/line metric.

    This is the policy the default overlay snapshots execute; its arithmetic
    is bit-identical to what :class:`~repro.fastpath.BatchGreedyRouter`
    historically inlined, so the refactor preserves hop-for-hop parity with
    the scalar :class:`~repro.core.routing.GreedyRouter`.
    """

    kind: str
    space_size: int

    def __post_init__(self) -> None:
        if self.kind not in ("ring", "line"):
            raise ValueError(f"kind must be 'ring' or 'line', got {self.kind!r}")
        object.__setattr__(self, "blocked", int(self.space_size) + 1)

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Shorter-arc (ring) or absolute (line) distance."""
        diff = np.abs(a - b)
        if self.kind == "ring":
            return np.minimum(diff, self.space_size - diff)
        return diff

    def displacement(self, source: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Signed displacement matching the scalar metric spaces."""
        delta = target - source
        if self.kind == "ring":
            forward = np.where(delta < 0, delta + self.space_size, delta)
            backward = forward - self.space_size
            return np.where(forward <= -backward, forward, backward)
        return delta

    def candidate_keys(
        self,
        current_labels: np.ndarray,
        neighbor_labels: np.ndarray,
        valid: np.ndarray,
        target_labels: np.ndarray,
        mode: RoutingMode,
        edge_class: np.ndarray | None = None,
    ) -> np.ndarray:
        current_distance = self.distance(current_labels, target_labels)
        neighbor_distance = self.distance(neighbor_labels, target_labels[:, None])
        candidates = valid & (neighbor_distance < current_distance[:, None])
        if mode is RoutingMode.ONE_SIDED:
            # Never traverse a link that jumps past the target: the signed
            # displacement towards the target must not change sign.
            before = self.displacement(current_labels, target_labels)
            after = self.displacement(neighbor_labels, target_labels[:, None])
            overshoot = ((before[:, None] > 0) != (after > 0)) & (after != 0)
            candidates &= ~overshoot
        blocked = neighbor_distance.dtype.type(self.blocked)
        return np.where(candidates, neighbor_distance, blocked)


@dataclass(frozen=True)
class TorusGreedyPolicy(GreedyPolicy):
    """CAN / Kleinberg-grid rule: strictly decrease L1 torus distance.

    Labels are row-major flattened coordinates of a ``side^dimensions``
    torus; the key is the candidate's L1 wrap-around distance to the target.
    """

    side: int
    dimensions: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocked", self.dimensions * self.side + 1)

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Sum over axes of the per-coordinate wrap-around distance."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        total = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        for axis in range(self.dimensions):
            scale = self.side**axis
            diff = np.abs((a // scale) % self.side - (b // scale) % self.side)
            total += np.minimum(diff, self.side - diff)
        return total

    def candidate_keys(
        self,
        current_labels: np.ndarray,
        neighbor_labels: np.ndarray,
        valid: np.ndarray,
        target_labels: np.ndarray,
        mode: RoutingMode,
        edge_class: np.ndarray | None = None,
    ) -> np.ndarray:
        current_distance = self.distance(current_labels, target_labels)
        neighbor_distance = self.distance(neighbor_labels, target_labels[:, None])
        candidates = valid & (neighbor_distance < current_distance[:, None])
        return np.where(candidates, neighbor_distance, np.int64(self.blocked))


@dataclass(frozen=True)
class PrefixGreedyPolicy(GreedyPolicy):
    """Plaxton / Tapestry rule: strictly extend the shared target prefix.

    The key is the prefix ultrametric ``digits - shared_prefix_length``; at
    most one neighbour of a node is admissible (the single-digit mutation
    that fixes the next unresolved target digit), so the argmin reproduces
    the scalar digit-fixing walk exactly.
    """

    base: int
    digits: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocked", self.digits + 1)

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Number of digit levels (powers of ``base``) where ``a != b``."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        total = np.zeros(np.broadcast(a, b).shape, dtype=np.int64)
        for level in range(self.digits):
            scale = self.base**level
            total += a // scale != b // scale
        return total

    def candidate_keys(
        self,
        current_labels: np.ndarray,
        neighbor_labels: np.ndarray,
        valid: np.ndarray,
        target_labels: np.ndarray,
        mode: RoutingMode,
        edge_class: np.ndarray | None = None,
    ) -> np.ndarray:
        # Prefix disagreement is downward-closed (equal quotients at level j
        # imply equality at every higher level), so a neighbour is strictly
        # closer than the current node — at distance L from the target — iff
        # it agrees with the target at level L - 1.  That single comparison
        # replaces a full per-level distance matrix.  Admissible candidates
        # all get the key L - 1: a prefix routing table admits at most one
        # neighbour per (node, target), so ranking within the admissible set
        # never arises and selection/consumption order are unaffected.
        # Arithmetic stays in the (compact) label dtype — every intermediate
        # fits because scales and keys are bounded by the space size.
        neighbors = np.asarray(neighbor_labels)
        dtype = neighbors.dtype
        current = np.asarray(current_labels)
        targets = np.asarray(target_labels)
        current_distance = self.distance(current, targets)
        # current != target for every query the router steps, so L >= 1; the
        # maximum is belt-and-braces for direct callers.
        scale = (self.base ** np.maximum(current_distance - 1, 0)).astype(dtype)
        agrees = neighbors // scale[:, None] == (
            targets.astype(dtype) // scale
        )[:, None]
        candidates = valid & agrees & (current_distance[:, None] >= 1)
        keys = current_distance.astype(dtype) - dtype.type(1)
        return np.where(candidates, keys[:, None], dtype.type(self.blocked))


@dataclass(frozen=True)
class ChordGreedyPolicy(GreedyPolicy):
    """Chord's one-sided clockwise rule with a two-tier neighbour table.

    A candidate must advance clockwise without overshooting the target
    (``0 < cw(current, nbr) <= cw(current, target)``).  Fingers (edge class
    0) are keyed by the *remaining* clockwise distance after the hop, so the
    minimum is the farthest admissible finger; successors (edge class 1) are
    keyed at an offset of ``size + 1`` by their own advance, so they are only
    ever chosen when no finger qualifies — and then the *nearest* admissible
    successor wins, exactly the scalar fallback's first-in-list pick.
    """

    size: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocked", 2 * self.size + 3)

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Clockwise distance ``(b - a) mod size`` (Chord's one-sided metric).

        Labels are grid points in ``[0, size)``, so one conditional add
        replaces the (much slower) general modulo reduction.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        delta = b - a
        return np.where(delta < 0, delta + self.size, delta)

    def candidate_keys(
        self,
        current_labels: np.ndarray,
        neighbor_labels: np.ndarray,
        valid: np.ndarray,
        target_labels: np.ndarray,
        mode: RoutingMode,
        edge_class: np.ndarray | None = None,
    ) -> np.ndarray:
        # Keys reach 2 * size + 2, so the compact label dtype is only safe
        # for rings up to 2^29 points; larger rings fall back to int64.
        neighbors = np.asarray(neighbor_labels)
        dtype = neighbors.dtype if self.size <= (1 << 29) else np.dtype(np.int64)
        neighbors = neighbors.astype(dtype, copy=False)
        current = np.asarray(current_labels).astype(dtype, copy=False)
        targets = np.asarray(target_labels).astype(dtype, copy=False)
        size = dtype.type(self.size)
        delta = targets - current
        remaining = np.where(delta < 0, delta + size, delta)
        delta = neighbors - current[:, None]
        advance = np.where(delta < 0, delta + size, delta)
        candidates = valid & (advance >= 1) & (advance <= remaining[:, None])
        keys = remaining[:, None] - advance
        if edge_class is not None:
            keys = np.where(edge_class > 0, advance + (size + dtype.type(1)), keys)
        return np.where(candidates, keys, dtype.type(self.blocked))

"""Shared implementation half of the :class:`~repro.overlay.Overlay` protocol.

Before this layer existed every baseline hand-rolled the same four methods
(``labels`` / ``is_alive`` / ``fail_node`` / ``fail_fraction``) and its own
copy of the scalar greedy loop.  :class:`OverlayMixin` hoists all of that:

* **liveness bookkeeping** over a sorted member-label array + boolean mask
  (with an O(1) fast path when labels are contiguous ``0..n-1``);
* **failure injection** with the exact per-protocol RNG stream the old
  copies used (``failure_stream``), so seeded experiments reproduce the
  same victim draws;
* the **scalar greedy loop** (``route``), parameterised by one method —
  ``next_hop`` — and ordered (arrival check, hop budget, step) to match the
  batched router's per-query semantics move for move;
* the **snapshot compiler** (``compile_snapshot``), which lays
  ``neighbor_entries`` out as CSR arrays and attaches the protocol's
  :class:`~repro.overlay.policy.GreedyPolicy`, making every subclass a
  fastpath citizen.

A concrete overlay supplies: ``space``, ``hop_limit``, ``snapshot_kind``,
``failure_stream``, ``next_hop(current, target)``, ``neighbors_of(label)``,
and ``greedy_policy()``; ``neighbor_entries`` only when the protocol needs
per-edge classes (Chord's finger/successor tiers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

import numpy as np

from repro.core.metric import MetricSpace
from repro.core.routing import FailureReason, RouteResult
from repro.overlay.policy import GreedyPolicy
from repro.util.rng import spawn_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fastpath imports us)
    from repro.fastpath.snapshot import FastpathSnapshot

__all__ = ["OverlayMixin", "apply_fail_fraction"]


def apply_fail_fraction(
    overlay: Any,
    fraction: float,
    seed: int,
    protect: set[int] | None,
    stream: str,
) -> list[int]:
    """Fail a uniformly random fraction of an overlay's live members.

    The one shared implementation of the victim draw: candidates are the
    live labels minus ``protect``, the count rounds ``fraction`` of them,
    and victims are drawn without replacement from ``spawn_rng(seed,
    stream)``.  Used by :class:`OverlayMixin` and by overlays with their own
    liveness state (:class:`~repro.core.network.P2PNetwork`).
    """
    protect = protect or set()
    rng = spawn_rng(seed, stream)
    candidates = [label for label in overlay.labels() if label not in protect]
    count = min(len(candidates), int(round(fraction * len(candidates))))
    victims: list[int] = []
    if count > 0:
        chosen = rng.choice(len(candidates), size=count, replace=False)
        victims = [candidates[int(i)] for i in chosen]
    for victim in victims:
        overlay.fail_node(victim)
    return victims


class OverlayMixin:
    """Liveness, failures, scalar routing, and snapshot compilation."""

    #: Supplied by the concrete overlay (typically dataclass fields).
    space: MetricSpace
    hop_limit: int

    #: Label of the RNG stream ``fail_fraction`` draws from; subclasses keep
    #: their historical stream names so seeded runs reproduce exactly.
    failure_stream: str = "overlay-failures"

    #: ``kind`` tag stamped on compiled snapshots (documentation/repr only
    #: for protocol snapshots — the attached policy owns the arithmetic).
    snapshot_kind: str = "overlay"

    # ------------------------------------------------------------------ #
    # Membership state (subclasses call this once from __post_init__)
    # ------------------------------------------------------------------ #

    def _init_members(self, labels: Iterable[int]) -> None:
        """Set up the member-label array and the all-alive mask."""
        members = np.asarray(sorted(int(label) for label in labels), dtype=np.int64)
        if members.size and np.any(members[1:] == members[:-1]):
            raise ValueError("member labels must be distinct")
        self._member_labels = members
        self._alive = np.ones(members.size, dtype=bool)
        # Dead (holder, target) table entries.  Reset here deliberately: a
        # membership rebuild (e.g. Chord's stabilize re-initialising over the
        # live set) draws fresh links, and fresh links are healthy.
        self._dead_edges: set[tuple[int, int]] = set()
        # Sorted distinct labels spanning exactly 0..n-1 are the identity
        # mapping, so liveness lookups can index directly.
        self._contiguous = bool(
            members.size and members[0] == 0 and members[-1] == members.size - 1
        )

    def _label_position(self, label: int) -> int | None:
        """Index of ``label`` in the member array, or ``None`` for non-members."""
        if self._contiguous:
            return int(label) if 0 <= label < self._member_labels.size else None
        position = int(np.searchsorted(self._member_labels, label))
        if position < self._member_labels.size and self._member_labels[position] == label:
            return position
        return None

    # ------------------------------------------------------------------ #
    # Liveness and failures (the formerly quadruplicated methods)
    # ------------------------------------------------------------------ #

    def labels(self, only_alive: bool = True) -> list[int]:
        """Member labels in ascending order, optionally live-only."""
        if only_alive:
            return [int(label) for label in self._member_labels[self._alive]]
        return [int(label) for label in self._member_labels]

    def is_alive(self, label: int) -> bool:
        """Whether ``label`` is a live member (``False`` for non-members)."""
        position = self._label_position(label)
        return bool(self._alive[position]) if position is not None else False

    def fail_node(self, label: int) -> None:
        """Fail the member at ``label`` (no-op for non-members)."""
        position = self._label_position(label)
        if position is not None:
            self._alive[position] = False

    def revive_node(self, label: int) -> None:
        """Revive the member at ``label`` (no-op for non-members)."""
        position = self._label_position(label)
        if position is not None:
            self._alive[position] = True

    def fail_fraction(
        self, fraction: float, seed: int = 0, protect: set[int] | None = None
    ) -> list[int]:
        """Fail a uniformly random fraction of the live members."""
        return apply_fail_fraction(self, fraction, seed, protect, self.failure_stream)

    def fail_link(self, source: int, target: int) -> None:
        """Mark the table entry ``source -> target`` as unusable.

        Every parallel occurrence of the pair (Chord's finger *and*
        successor entries to the same node) shares the fate — the paper's
        link-failure model is per node pair, not per table slot.
        """
        self._dead_edges.add((int(source), int(target)))

    def revive_link(self, source: int, target: int) -> None:
        """Mark the table entry ``source -> target`` as usable again."""
        self._dead_edges.discard((int(source), int(target)))

    def link_is_alive(self, source: int, target: int) -> bool:
        """Whether the ``source -> target`` table entry is usable."""
        return (source, target) not in self._dead_edges

    def repair(self) -> None:
        """Revive every member and link, then run the protocol's repair hook."""
        self._dead_edges.clear()
        self._alive[:] = True
        self._after_repair()

    def _after_repair(self) -> None:
        """Hook for protocols that rebuild state on repair (Chord's tables)."""

    # ------------------------------------------------------------------ #
    # Scalar routing
    # ------------------------------------------------------------------ #

    def _point_of(self, label: int) -> Any:
        """Map a label to its metric-space point (identity by default).

        Torus overlays override this with their coordinate decoding so the
        default :meth:`next_hop` can measure ``space.distance``.
        """
        return label

    def next_hop(self, current: int, target: int) -> int | None:
        """The protocol's greedy rule: the next live node, or ``None`` if stuck.

        The default is the plain metric-greedy rule — the live neighbour
        strictly closest to the target under ``space.distance``, earliest
        neighbour winning ties — which is what CAN, the Kleinberg grid, and
        most user overlays need.  Protocols with a different rule (Chord's
        clockwise tiers, Plaxton's digit fixing) override it; the override
        must stay consistent with :meth:`greedy_policy` for batched parity.
        """
        target_point = self._point_of(target)
        best: int | None = None
        best_distance = self.space.distance(self._point_of(current), target_point)
        for neighbor in self.neighbors_of(current):
            if not self.is_alive(neighbor):
                continue
            if not self.link_is_alive(current, neighbor):
                continue
            distance = self.space.distance(self._point_of(neighbor), target_point)
            if distance < best_distance:
                best = neighbor
                best_distance = distance
        return best

    def route(self, source: int, target: int) -> RouteResult:
        """Greedy routing from ``source`` to ``target`` over live members.

        The loop order (arrival check, then hop budget, then one
        ``next_hop`` step) matches the batched router's per-query semantics
        exactly, which is what makes scalar-vs-batched parity checkable path
        for path.  (The pre-Overlay baseline loops gated the arrival check
        on ``hops < hop_limit``, so a query arriving on exactly the limit-th
        hop counted as HOP_LIMIT; here it succeeds — the boundary case is
        unreachable for the strictly-decreasing rules and vanishingly rare
        for Chord's successor crawl.)
        """
        if not self.is_alive(source):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_SOURCE)
        if not self.is_alive(target):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_TARGET)
        path = [source]
        hops = 0
        current = source
        limit = self.hop_limit
        while True:
            if current == target:
                return RouteResult(success=True, hops=hops, path=path)
            if hops >= limit:
                return RouteResult(success=False, hops=hops, path=path,
                                   failure_reason=FailureReason.HOP_LIMIT)
            following = self.next_hop(current, target)
            if following is None:
                return RouteResult(success=False, hops=hops, path=path,
                                   failure_reason=FailureReason.STUCK)
            current = following
            path.append(current)
            hops += 1

    # ------------------------------------------------------------------ #
    # Snapshot compilation
    # ------------------------------------------------------------------ #

    def neighbors_of(self, label: int) -> Sequence[int]:
        """The labels in ``label``'s routing table (protocol-specific)."""
        raise NotImplementedError

    def greedy_policy(self) -> GreedyPolicy:
        """The vectorized :class:`~repro.overlay.policy.GreedyPolicy`."""
        raise NotImplementedError

    def neighbor_entries(self, label: int) -> Iterator[tuple[int, int]]:
        """Yield ``(neighbor_label, edge_class)`` pairs in candidate order.

        The default emits ``neighbors_of`` at class 0; protocols with tiered
        tables (Chord) override this to tag each entry.
        """
        for neighbor in self.neighbors_of(label):
            yield neighbor, 0

    def compile_snapshot(self) -> "FastpathSnapshot":
        """Compile the topology + current liveness into an array snapshot.

        Per-vertex entry order equals the scalar rule's iteration order, so
        ``argmin`` over the policy's keys breaks ties exactly like
        ``next_hop`` — the hop-for-hop parity contract.  The snapshot is a
        frozen value: recompile after membership changes; pure liveness
        changes (node or link) can be expressed with
        :meth:`~repro.fastpath.snapshot.FastpathSnapshot.with_alive` /
        :meth:`~repro.fastpath.snapshot.FastpathSnapshot.with_edge_alive`.
        """
        # Imported here: repro.fastpath depends on repro.overlay.policy, so a
        # module-level import would create a cycle through the packages.
        from repro.fastpath.dtypes import label_dtype, narrow_indptr
        from repro.fastpath.snapshot import FastpathSnapshot

        member_labels = self._member_labels
        num_nodes = int(member_labels.size)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        flat_labels: list[int] = []
        flat_classes: list[int] = []
        flat_holders: list[int] = []
        for index, label in enumerate(member_labels.tolist()):
            for neighbor, edge_class in self.neighbor_entries(label):
                flat_labels.append(int(neighbor))
                flat_classes.append(int(edge_class))
                flat_holders.append(label)
            indptr[index + 1] = len(flat_labels)

        flat = np.asarray(flat_labels, dtype=np.int64)
        indices = np.searchsorted(member_labels, flat)
        indices = np.clip(indices, 0, max(num_nodes - 1, 0))
        if flat.size and np.any(member_labels[indices] != flat):
            bad = flat[member_labels[indices] != flat]
            raise ValueError(
                f"routing tables point at non-member labels {bad[:5].tolist()}"
            )
        classes = np.asarray(flat_classes, dtype=np.int8)
        edge_alive: np.ndarray | None = None
        if self._dead_edges:
            dead = self._dead_edges
            flat_alive = [
                (holder, neighbor) not in dead
                for holder, neighbor in zip(flat_holders, flat_labels)
            ]
            edge_alive = np.asarray(flat_alive, dtype=bool)
            if bool(edge_alive.all()):
                edge_alive = None
        # astype always copies here, so the frozen snapshot never aliases the
        # mutable member table; dtypes narrow per the fastpath contracts.
        return FastpathSnapshot(
            kind=self.snapshot_kind,
            space_size=self.space.size(),
            labels=member_labels.astype(label_dtype(self.space.size())),
            alive=self._alive.copy(),
            neighbor_indptr=narrow_indptr(indptr),
            neighbor_indices=indices.astype(np.int32),
            symmetric_neighbors=False,
            policy=self.greedy_policy(),
            edge_class=classes if np.any(classes) else None,
            edge_alive=edge_alive,
        )

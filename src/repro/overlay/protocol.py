"""The ``Overlay`` protocol: what every routable topology must expose.

The paper's Section-3 thesis is that structured peer-to-peer systems are one
family: nodes embedded in a metric space, a neighbour table per node, and
greedy forwarding with some failure story.  This module states that contract
as a :class:`typing.Protocol` so the experiment harness, the sweep executor,
and the fastpath engine can treat the power-law overlay, Chord, CAN,
Plaxton, and the Kleinberg grid — or any user-defined topology —
interchangeably:

* **identity** — ``space`` (the metric) and ``labels()`` (the embedded
  nodes);
* **structure** — ``neighbors_of()`` (one node's routing table);
* **failures** — ``is_alive`` / ``fail_node`` / ``fail_fraction`` /
  ``repair``;
* **routing** — the scalar reference ``route()`` and ``compile_snapshot()``,
  which compiles the topology into an :data:`OverlaySnapshot` whose batched
  routes are hop-for-hop identical to ``route()``.

Implementations normally get the liveness bookkeeping, the scalar greedy
loop, and the snapshot compiler from :class:`~repro.overlay.mixin.OverlayMixin`
and only write the two protocol-specific pieces: a scalar ``next_hop`` rule
and the matching vectorized :class:`~repro.overlay.policy.GreedyPolicy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.core.metric import MetricSpace
from repro.core.routing import RouteResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fastpath imports us)
    from repro.fastpath.snapshot import FastpathSnapshot

__all__ = ["Overlay", "PROTOCOLS"]

#: Registry names of the built-in overlay protocols, as accepted by
#: ``topology.protocol`` in a :class:`~repro.scenarios.spec.TopologySpec`.
PROTOCOLS = ("power-law", "chord", "kleinberg", "can", "plaxton")


@runtime_checkable
class Overlay(Protocol):
    """Structural interface of a routable peer-to-peer topology.

    ``isinstance(obj, Overlay)`` checks member presence at runtime (not
    signatures); the behavioural half of the contract — batched routes over
    ``compile_snapshot()`` match ``route()`` hop for hop — is asserted by
    ``tests/property/test_property_overlay.py``.
    """

    #: The metric space node labels live in.
    space: MetricSpace

    def labels(self, only_alive: bool = True) -> list[int]:
        """Member node labels in ascending order, optionally live-only."""
        ...

    def is_alive(self, label: int) -> bool:
        """Whether ``label`` is a live member (``False`` for non-members)."""
        ...

    def neighbors_of(self, label: int) -> Sequence[int]:
        """The labels in ``label``'s routing table (liveness ignored)."""
        ...

    def fail_node(self, label: int) -> None:
        """Mark the member at ``label`` as failed (no-op for non-members)."""
        ...

    def fail_fraction(
        self, fraction: float, seed: int = 0, protect: set[int] | None = None
    ) -> list[int]:
        """Fail a uniformly random fraction of live members; return victims."""
        ...

    def repair(self) -> None:
        """Restore a fully routable topology after failures.

        Protocol-specific: the baseline overlays revive every member (and
        rebuild tables where needed), while :class:`~repro.core.network.P2PNetwork`
        runs its maintenance protocol — crashed members are excised and the
        survivors' links regenerated.  Callers may assume routing works
        again, not that the membership is unchanged.
        """
        ...

    def route(self, source: int, target: int) -> RouteResult:
        """Scalar greedy routing — the reference the batched engine matches."""
        ...

    def compile_snapshot(self) -> "FastpathSnapshot":
        """Compile the current topology + liveness into an array snapshot."""
        ...

"""Baseline peer-to-peer routing systems for comparison.

Section 3 of the paper surveys the systems its overlay generalises: Chord,
CAN, and Tapestry (Plaxton-style prefix routing), and Section 2 positions the
work relative to Kleinberg's small-world grid.  Implementing these baselines
lets the experiment harness compare hop counts and failure behaviour across
designs on identical workloads.

All baselines expose the same minimal interface: ``route(source, target)``
returning a :class:`~repro.core.routing.RouteResult`, plus ``labels()`` and
failure injection via ``fail_node``.
"""

from repro.baselines.can import CanNetwork
from repro.baselines.chord import ChordNetwork
from repro.baselines.kleinberg_grid import KleinbergGridNetwork
from repro.baselines.plaxton import PlaxtonNetwork

__all__ = [
    "ChordNetwork",
    "KleinbergGridNetwork",
    "CanNetwork",
    "PlaxtonNetwork",
]

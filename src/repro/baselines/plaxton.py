"""Plaxton / Tapestry-style prefix routing baseline.

Tapestry (and Pastry) route by resolving the target identifier one digit at a
time: a node whose identifier shares a ``k``-digit prefix with the target
forwards to a neighbour sharing ``k + 1`` digits.  With identifiers of
``digits`` base-``base`` digits this takes at most ``digits = log_base(n)``
hops and each node keeps ``O(base * log_base n)`` routing entries — the same
state/hop trade-off as the paper's deterministic base-``b`` scheme
(Theorem 14), which is why the comparison is instructive.

This implementation assumes the fully populated identifier space (every
identifier hosts a node), which keeps the routing-table construction exact;
failures are injected afterwards, as in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.routing import FailureReason, RouteResult
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_positive

__all__ = ["PlaxtonNetwork"]


@dataclass
class PlaxtonNetwork:
    """Suffix/prefix digit routing over a fully populated identifier space.

    Parameters
    ----------
    digits:
        Number of identifier digits.
    base:
        Digit base (the identifier space has ``base ** digits`` nodes).
    seed:
        Kept for interface symmetry; construction is deterministic.
    """

    digits: int
    base: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.digits, "digits")
        if self.base < 2:
            raise ValueError(f"base must be >= 2, got {self.base}")
        self.size = self.base**self.digits
        self._alive = np.ones(self.size, dtype=bool)

    # ------------------------------------------------------------------ #
    # Digit helpers
    # ------------------------------------------------------------------ #

    def digits_of(self, label: int) -> list[int]:
        """Return the base-``base`` digits of ``label``, most significant first."""
        result = []
        remaining = int(label)
        for _ in range(self.digits):
            result.append(remaining % self.base)
            remaining //= self.base
        return list(reversed(result))

    def label_from_digits(self, digit_list: list[int]) -> int:
        """Inverse of :meth:`digits_of`."""
        label = 0
        for digit in digit_list:
            label = label * self.base + int(digit) % self.base
        return label

    def shared_prefix_length(self, a: int, b: int) -> int:
        """Number of leading digits ``a`` and ``b`` share."""
        digits_a = self.digits_of(a)
        digits_b = self.digits_of(b)
        shared = 0
        for digit_a, digit_b in zip(digits_a, digits_b):
            if digit_a != digit_b:
                break
            shared += 1
        return shared

    # ------------------------------------------------------------------ #
    # Membership and failures
    # ------------------------------------------------------------------ #

    def labels(self, only_alive: bool = True) -> list[int]:
        if only_alive:
            return [int(i) for i in np.flatnonzero(self._alive)]
        return list(range(self.size))

    def is_alive(self, label: int) -> bool:
        return bool(self._alive[label])

    def fail_node(self, label: int) -> None:
        self._alive[label] = False

    def fail_fraction(self, fraction: float, seed: int = 0, protect: set[int] | None = None) -> list[int]:
        """Fail a uniformly random fraction of the live nodes."""
        protect = protect or set()
        rng = spawn_rng(seed, "plaxton-failures")
        candidates = [label for label in self.labels() if label not in protect]
        count = min(len(candidates), int(round(fraction * len(candidates))))
        victims: list[int] = []
        if count > 0:
            chosen = rng.choice(len(candidates), size=count, replace=False)
            victims = [candidates[int(i)] for i in chosen]
        for victim in victims:
            self.fail_node(victim)
        return victims

    def repair(self) -> None:
        self._alive[:] = True

    def state_per_node(self) -> int:
        """Routing entries per node: ``(base - 1) * digits``."""
        return (self.base - 1) * self.digits

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def route(self, source: int, target: int) -> RouteResult:
        """Fix the target's digits one at a time, most significant first.

        At each step the current node forwards to the node whose identifier
        matches the target in one more leading digit and matches the current
        node elsewhere.  If that node is dead the route is stuck (Tapestry
        would consult backup neighbours; the paper's comparison uses the
        unadorned algorithm).
        """
        if not self.is_alive(source):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_SOURCE)
        if not self.is_alive(target):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_TARGET)
        path = [source]
        hops = 0
        current = source
        target_digits = self.digits_of(target)
        while hops <= self.digits + 1:
            if current == target:
                return RouteResult(success=True, hops=hops, path=path)
            shared = self.shared_prefix_length(current, target)
            next_digits = self.digits_of(current)
            next_digits[: shared + 1] = target_digits[: shared + 1]
            next_hop = self.label_from_digits(next_digits)
            if next_hop == current:
                # The digit already matched; advance the prefix further.
                next_digits = target_digits[: shared + 1] + self.digits_of(current)[shared + 1:]
                next_hop = self.label_from_digits(next_digits)
            if not self.is_alive(next_hop):
                return RouteResult(success=False, hops=hops, path=path,
                                   failure_reason=FailureReason.STUCK)
            current = next_hop
            path.append(current)
            hops += 1
        return RouteResult(success=False, hops=hops, path=path,
                           failure_reason=FailureReason.HOP_LIMIT)

"""Plaxton / Tapestry-style prefix routing baseline.

Tapestry (and Pastry) route by resolving the target identifier one digit at a
time: a node whose identifier shares a ``k``-digit prefix with the target
forwards to a neighbour sharing ``k + 1`` digits.  With identifiers of
``digits`` base-``base`` digits this takes at most ``digits = log_base(n)``
hops and each node keeps ``O(base * log_base n)`` routing entries — the same
state/hop trade-off as the paper's deterministic base-``b`` scheme
(Theorem 14), which is why the comparison is instructive.

This implementation assumes the fully populated identifier space (every
identifier hosts a node), which keeps the routing-table construction exact;
failures are injected afterwards, as in the paper's experiments.

As an :class:`~repro.overlay.Overlay`, the scheme is greedy routing under
the :class:`~repro.core.metric.PrefixMetric` ultrametric: the snapshot's
:class:`~repro.overlay.policy.PrefixGreedyPolicy` admits exactly the one
neighbour that extends the shared target prefix, so batched routes are
hop-for-hop identical to the scalar digit-fixing walk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metric import PrefixMetric
from repro.overlay.mixin import OverlayMixin
from repro.overlay.policy import PrefixGreedyPolicy
from repro.util.validation import ensure_positive

__all__ = ["PlaxtonNetwork"]


@dataclass
class PlaxtonNetwork(OverlayMixin):
    """Suffix/prefix digit routing over a fully populated identifier space.

    Parameters
    ----------
    digits:
        Number of identifier digits.
    base:
        Digit base (the identifier space has ``base ** digits`` nodes).
    """

    digits: int
    base: int = 4

    failure_stream = "plaxton-failures"
    snapshot_kind = "prefix"

    def __post_init__(self) -> None:
        ensure_positive(self.digits, "digits")
        if self.base < 2:
            raise ValueError(f"base must be >= 2, got {self.base}")
        self.space = PrefixMetric(base=self.base, digits=self.digits)
        self.size = self.base**self.digits
        # One hop fixes one digit, so digits moves always suffice; the +2
        # headroom keeps the budget unreachable rather than binding.
        self.hop_limit = self.digits + 2
        self._init_members(range(self.size))

    # ------------------------------------------------------------------ #
    # Digit helpers
    # ------------------------------------------------------------------ #

    def digits_of(self, label: int) -> list[int]:
        """Return the base-``base`` digits of ``label``, most significant first."""
        result = []
        remaining = int(label)
        for _ in range(self.digits):
            result.append(remaining % self.base)
            remaining //= self.base
        return list(reversed(result))

    def label_from_digits(self, digit_list: list[int]) -> int:
        """Inverse of :meth:`digits_of`."""
        label = 0
        for digit in digit_list:
            label = label * self.base + int(digit) % self.base
        return label

    def shared_prefix_length(self, a: int, b: int) -> int:
        """Number of leading digits ``a`` and ``b`` share."""
        return self.space.shared_prefix_length(a, b)

    # ------------------------------------------------------------------ #
    # Routing (liveness/failure ops and the route loop come from the mixin)
    # ------------------------------------------------------------------ #

    def next_hop(self, current: int, target: int) -> int | None:
        """The node fixing the next unresolved target digit, if it is alive.

        At each step the current node forwards to the node whose identifier
        matches the target in one more leading digit and matches the current
        node elsewhere.  If that node is dead the route is stuck (Tapestry
        would consult backup neighbours; the paper's comparison uses the
        unadorned algorithm).
        """
        shared = self.shared_prefix_length(current, target)
        next_digits = self.digits_of(current)
        next_digits[: shared + 1] = self.digits_of(target)[: shared + 1]
        following = self.label_from_digits(next_digits)
        if following == current or not self.is_alive(following):
            return None
        if not self.link_is_alive(current, following):
            return None
        return following

    def neighbors_of(self, label: int) -> list[int]:
        """Every single-digit mutation of ``label`` — the full routing table.

        Ordered by (digit position, digit value), ``(base - 1) * digits``
        entries; the policy admits at most one of them per target, so the
        order never affects routing.
        """
        own = self.digits_of(label)
        result = []
        for position in range(self.digits):
            for digit in range(self.base):
                if digit == own[position]:
                    continue
                mutated = list(own)
                mutated[position] = digit
                result.append(self.label_from_digits(mutated))
        return result

    def greedy_policy(self) -> PrefixGreedyPolicy:
        """Strictly extend the shared target prefix (the ultrametric rule)."""
        return PrefixGreedyPolicy(base=self.base, digits=self.digits)

    def state_per_node(self) -> int:
        """Routing entries per node: ``(base - 1) * digits``."""
        return (self.base - 1) * self.digits

"""Kleinberg small-world grid baseline (Kleinberg, STOC 2000).

Nodes sit at every point of a ``side x side`` torus; each node links to its
four grid neighbours and to ``links_per_node`` long-range contacts drawn with
probability proportional to ``d^-exponent`` (the harmonic case ``exponent =
2`` is Kleinberg's optimum in two dimensions).  Greedy routing forwards to the
neighbour closest to the target in L1 torus distance.

The paper (Section 2) describes its own construction as a generalisation of
Kleinberg's; this baseline lets the experiments show the effect of dimension
and of the exponent choice, including Kleinberg's result that exponents far
from the dimension degrade greedy routing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metric import TorusMetric
from repro.core.routing import FailureReason, RouteResult
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_positive

__all__ = ["KleinbergGridNetwork"]


@dataclass
class KleinbergGridNetwork:
    """A two-dimensional Kleinberg small-world torus.

    Parameters
    ----------
    side:
        Side length of the grid (``side * side`` nodes).
    links_per_node:
        Number of long-range contacts per node (Kleinberg's q).
    exponent:
        Clustering exponent ``r``; 2.0 is optimal for a two-dimensional grid.
    seed:
        Seed for contact selection.
    """

    side: int
    links_per_node: int = 1
    exponent: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.side, "side")
        ensure_positive(self.links_per_node, "links_per_node")
        self.space = TorusMetric(self.side, dimensions=2)
        self.size = self.side * self.side
        self._alive = np.ones(self.size, dtype=bool)
        self._contacts: dict[int, list[int]] = {}
        self._build_contacts()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def label_to_point(self, label: int) -> tuple[int, int]:
        """Flattened label -> (row, column)."""
        return (label // self.side, label % self.side)

    def point_to_label(self, point: tuple[int, int]) -> int:
        """(row, column) -> flattened label."""
        return (point[0] % self.side) * self.side + (point[1] % self.side)

    def _build_contacts(self) -> None:
        rng = spawn_rng(self.seed, "kleinberg-contacts")
        labels = np.arange(self.size)
        rows, columns = labels // self.side, labels % self.side
        for label in range(self.size):
            row, column = self.label_to_point(label)
            row_diff = np.abs(rows - row)
            column_diff = np.abs(columns - column)
            distance = (
                np.minimum(row_diff, self.side - row_diff)
                + np.minimum(column_diff, self.side - column_diff)
            ).astype(float)
            with np.errstate(divide="ignore"):
                weights = np.where(distance > 0, distance**-self.exponent, 0.0)
            probabilities = weights / weights.sum()
            chosen = rng.choice(self.size, size=self.links_per_node, p=probabilities)
            self._contacts[label] = sorted(set(int(c) for c in chosen) - {label})

    def grid_neighbors(self, label: int) -> list[int]:
        """The four lattice neighbours of ``label`` on the torus."""
        row, column = self.label_to_point(label)
        return [
            self.point_to_label(((row + 1) % self.side, column)),
            self.point_to_label(((row - 1) % self.side, column)),
            self.point_to_label((row, (column + 1) % self.side)),
            self.point_to_label((row, (column - 1) % self.side)),
        ]

    def neighbors_of(self, label: int) -> list[int]:
        """Grid neighbours plus long-range contacts."""
        return self.grid_neighbors(label) + self._contacts[label]

    # ------------------------------------------------------------------ #
    # Membership and failures
    # ------------------------------------------------------------------ #

    def labels(self, only_alive: bool = True) -> list[int]:
        """All node labels, optionally only the live ones."""
        if only_alive:
            return [int(i) for i in np.flatnonzero(self._alive)]
        return list(range(self.size))

    def is_alive(self, label: int) -> bool:
        return bool(self._alive[label])

    def fail_node(self, label: int) -> None:
        self._alive[label] = False

    def fail_fraction(self, fraction: float, seed: int = 0, protect: set[int] | None = None) -> list[int]:
        """Fail a uniformly random fraction of the live nodes."""
        protect = protect or set()
        rng = spawn_rng(seed, "kleinberg-failures")
        candidates = [label for label in self.labels() if label not in protect]
        count = min(len(candidates), int(round(fraction * len(candidates))))
        victims: list[int] = []
        if count > 0:
            chosen = rng.choice(len(candidates), size=count, replace=False)
            victims = [candidates[int(i)] for i in chosen]
        for victim in victims:
            self.fail_node(victim)
        return victims

    def repair(self) -> None:
        """Revive every node."""
        self._alive[:] = True

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def route(self, source: int, target: int) -> RouteResult:
        """Greedy L1 routing from ``source`` to ``target`` over live nodes."""
        if not self.is_alive(source):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_SOURCE)
        if not self.is_alive(target):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_TARGET)
        target_point = self.label_to_point(target)
        path = [source]
        hops = 0
        current = source
        hop_limit = 8 * self.side + 64
        while hops < hop_limit:
            if current == target:
                return RouteResult(success=True, hops=hops, path=path)
            current_distance = self.space.distance(
                self.label_to_point(current), target_point
            )
            best: int | None = None
            best_distance = current_distance
            for neighbor in self.neighbors_of(current):
                if not self.is_alive(neighbor):
                    continue
                distance = self.space.distance(
                    self.label_to_point(neighbor), target_point
                )
                if distance < best_distance:
                    best = neighbor
                    best_distance = distance
            if best is None:
                return RouteResult(success=False, hops=hops, path=path,
                                   failure_reason=FailureReason.STUCK)
            current = best
            path.append(current)
            hops += 1
        return RouteResult(success=False, hops=hops, path=path,
                           failure_reason=FailureReason.HOP_LIMIT)

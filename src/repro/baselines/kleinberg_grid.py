"""Kleinberg small-world grid baseline (Kleinberg, STOC 2000).

Nodes sit at every point of a ``side x side`` torus; each node links to its
four grid neighbours and to ``links_per_node`` long-range contacts drawn with
probability proportional to ``d^-exponent`` (the harmonic case ``exponent =
2`` is Kleinberg's optimum in two dimensions).  Greedy routing forwards to the
neighbour closest to the target in L1 torus distance.

The paper (Section 2) describes its own construction as a generalisation of
Kleinberg's; this baseline lets the experiments show the effect of dimension
and of the exponent choice, including Kleinberg's result that exponents far
from the dimension degrade greedy routing.

As an :class:`~repro.overlay.Overlay`, the grid compiles into a snapshot
executed by :class:`~repro.overlay.policy.TorusGreedyPolicy`, hop-for-hop
identical to the scalar ``route()``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metric import TorusMetric
from repro.overlay.mixin import OverlayMixin
from repro.overlay.policy import TorusGreedyPolicy
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_positive

__all__ = ["KleinbergGridNetwork"]


@dataclass
class KleinbergGridNetwork(OverlayMixin):
    """A two-dimensional Kleinberg small-world torus.

    Parameters
    ----------
    side:
        Side length of the grid (``side * side`` nodes).
    links_per_node:
        Number of long-range contacts per node (Kleinberg's q).
    exponent:
        Clustering exponent ``r``; 2.0 is optimal for a two-dimensional grid.
    seed:
        Seed for contact selection.
    """

    side: int
    links_per_node: int = 1
    exponent: float = 2.0
    seed: int = 0

    failure_stream = "kleinberg-failures"
    snapshot_kind = "torus"

    def __post_init__(self) -> None:
        ensure_positive(self.side, "side")
        ensure_positive(self.links_per_node, "links_per_node")
        self.space = TorusMetric(self.side, dimensions=2)
        self.size = self.side * self.side
        self.hop_limit = 8 * self.side + 64
        self._init_members(range(self.size))
        self._contacts: dict[int, list[int]] = {}
        self._build_contacts()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def label_to_point(self, label: int) -> tuple[int, int]:
        """Flattened label -> (row, column)."""
        return (label // self.side, label % self.side)

    def point_to_label(self, point: tuple[int, int]) -> int:
        """(row, column) -> flattened label."""
        return (point[0] % self.side) * self.side + (point[1] % self.side)

    def _build_contacts(self) -> None:
        rng = spawn_rng(self.seed, "kleinberg-contacts")
        labels = np.arange(self.size)
        rows, columns = labels // self.side, labels % self.side
        for label in range(self.size):
            row, column = self.label_to_point(label)
            row_diff = np.abs(rows - row)
            column_diff = np.abs(columns - column)
            distance = (
                np.minimum(row_diff, self.side - row_diff)
                + np.minimum(column_diff, self.side - column_diff)
            ).astype(float)
            with np.errstate(divide="ignore"):
                weights = np.where(distance > 0, distance**-self.exponent, 0.0)
            probabilities = weights / weights.sum()
            chosen = rng.choice(self.size, size=self.links_per_node, p=probabilities)
            self._contacts[label] = sorted(set(int(c) for c in chosen) - {label})

    def grid_neighbors(self, label: int) -> list[int]:
        """The four lattice neighbours of ``label`` on the torus."""
        row, column = self.label_to_point(label)
        return [
            self.point_to_label(((row + 1) % self.side, column)),
            self.point_to_label(((row - 1) % self.side, column)),
            self.point_to_label((row, (column + 1) % self.side)),
            self.point_to_label((row, (column - 1) % self.side)),
        ]

    def neighbors_of(self, label: int) -> list[int]:
        """Grid neighbours plus long-range contacts."""
        return self.grid_neighbors(label) + self._contacts[label]

    # ------------------------------------------------------------------ #
    # Routing — the mixin's default metric-greedy next_hop (live neighbour
    # strictly closest under space.distance) is exactly Kleinberg's rule.
    # ------------------------------------------------------------------ #

    def _point_of(self, label: int) -> tuple[int, int]:
        return self.label_to_point(label)

    def greedy_policy(self) -> TorusGreedyPolicy:
        """Strictly decreasing L1 torus distance."""
        return TorusGreedyPolicy(side=self.side, dimensions=2)

"""CAN baseline (Ratnasamy et al., SIGCOMM 2001) — simplified d-dimensional torus.

CAN partitions a ``d``-dimensional coordinate space into zones, one per node,
and routes greedily through neighbouring zones; each node keeps ``O(d)`` state
and routing costs ``O(d * n^(1/d))`` hops.  This baseline models the common
simplification in which every node owns a unit hyper-cube cell of a
``side^d`` torus and neighbours are the ``2d`` adjacent cells: the state and
hop-count scaling are exactly CAN's, which is what the comparison experiments
need.

As an :class:`~repro.overlay.Overlay`, CAN compiles into a snapshot executed
by :class:`~repro.overlay.policy.TorusGreedyPolicy` (strictly decreasing L1
torus distance), hop-for-hop identical to the scalar ``route()``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.metric import TorusMetric
from repro.overlay.mixin import OverlayMixin
from repro.overlay.policy import TorusGreedyPolicy
from repro.util.validation import ensure_positive

__all__ = ["CanNetwork"]


@dataclass
class CanNetwork(OverlayMixin):
    """A CAN-style d-dimensional torus of unit zones.

    Parameters
    ----------
    side:
        Number of zones along each dimension.
    dimensions:
        Number of dimensions ``d``.
    """

    side: int
    dimensions: int = 2

    failure_stream = "can-failures"
    snapshot_kind = "torus"

    def __post_init__(self) -> None:
        ensure_positive(self.side, "side")
        ensure_positive(self.dimensions, "dimensions")
        self.space = TorusMetric(self.side, dimensions=self.dimensions)
        self.size = self.side**self.dimensions
        self.hop_limit = self.dimensions * self.side * 4 + 64
        self._init_members(range(self.size))

    # ------------------------------------------------------------------ #
    # Coordinate helpers
    # ------------------------------------------------------------------ #

    def label_to_point(self, label: int) -> tuple[int, ...]:
        """Flattened label -> coordinate tuple (row-major)."""
        coordinates = []
        remaining = int(label)
        for _ in range(self.dimensions):
            coordinates.append(remaining % self.side)
            remaining //= self.side
        return tuple(reversed(coordinates))

    def point_to_label(self, point: tuple[int, ...]) -> int:
        """Coordinate tuple -> flattened label (row-major)."""
        label = 0
        for coordinate in point:
            label = label * self.side + (int(coordinate) % self.side)
        return label

    def neighbors_of(self, label: int) -> list[int]:
        """The ``2d`` zone neighbours of ``label`` on the torus."""
        point = self.label_to_point(label)
        result = []
        for axis, delta in itertools.product(range(self.dimensions), (-1, 1)):
            neighbor = list(point)
            neighbor[axis] = (neighbor[axis] + delta) % self.side
            result.append(self.point_to_label(tuple(neighbor)))
        return result

    # ------------------------------------------------------------------ #
    # Routing — the mixin's default metric-greedy next_hop (live neighbour
    # strictly closest under space.distance) is exactly CAN's rule.
    # ------------------------------------------------------------------ #

    def _point_of(self, label: int) -> tuple[int, ...]:
        return self.label_to_point(label)

    def greedy_policy(self) -> TorusGreedyPolicy:
        """Strictly decreasing L1 torus distance."""
        return TorusGreedyPolicy(side=self.side, dimensions=self.dimensions)

    def state_per_node(self) -> int:
        """CAN's ``O(d)`` routing state: the number of zone neighbours."""
        return 2 * self.dimensions

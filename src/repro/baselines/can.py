"""CAN baseline (Ratnasamy et al., SIGCOMM 2001) — simplified d-dimensional torus.

CAN partitions a ``d``-dimensional coordinate space into zones, one per node,
and routes greedily through neighbouring zones; each node keeps ``O(d)`` state
and routing costs ``O(d * n^(1/d))`` hops.  This baseline models the common
simplification in which every node owns a unit hyper-cube cell of a
``side^d`` torus and neighbours are the ``2d`` adjacent cells: the state and
hop-count scaling are exactly CAN's, which is what the comparison experiments
need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.metric import TorusMetric
from repro.core.routing import FailureReason, RouteResult
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_positive

__all__ = ["CanNetwork"]


@dataclass
class CanNetwork:
    """A CAN-style d-dimensional torus of unit zones.

    Parameters
    ----------
    side:
        Number of zones along each dimension.
    dimensions:
        Number of dimensions ``d``.
    seed:
        Kept for interface symmetry (construction is deterministic).
    """

    side: int
    dimensions: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.side, "side")
        ensure_positive(self.dimensions, "dimensions")
        self.space = TorusMetric(self.side, dimensions=self.dimensions)
        self.size = self.side**self.dimensions
        self._alive = np.ones(self.size, dtype=bool)

    # ------------------------------------------------------------------ #
    # Coordinate helpers
    # ------------------------------------------------------------------ #

    def label_to_point(self, label: int) -> tuple[int, ...]:
        """Flattened label -> coordinate tuple (row-major)."""
        coordinates = []
        remaining = int(label)
        for _ in range(self.dimensions):
            coordinates.append(remaining % self.side)
            remaining //= self.side
        return tuple(reversed(coordinates))

    def point_to_label(self, point: tuple[int, ...]) -> int:
        """Coordinate tuple -> flattened label (row-major)."""
        label = 0
        for coordinate in point:
            label = label * self.side + (int(coordinate) % self.side)
        return label

    def neighbors_of(self, label: int) -> list[int]:
        """The ``2d`` zone neighbours of ``label`` on the torus."""
        point = self.label_to_point(label)
        result = []
        for axis, delta in itertools.product(range(self.dimensions), (-1, 1)):
            neighbor = list(point)
            neighbor[axis] = (neighbor[axis] + delta) % self.side
            result.append(self.point_to_label(tuple(neighbor)))
        return result

    # ------------------------------------------------------------------ #
    # Membership and failures
    # ------------------------------------------------------------------ #

    def labels(self, only_alive: bool = True) -> list[int]:
        if only_alive:
            return [int(i) for i in np.flatnonzero(self._alive)]
        return list(range(self.size))

    def is_alive(self, label: int) -> bool:
        return bool(self._alive[label])

    def fail_node(self, label: int) -> None:
        self._alive[label] = False

    def fail_fraction(self, fraction: float, seed: int = 0, protect: set[int] | None = None) -> list[int]:
        """Fail a uniformly random fraction of the live nodes."""
        protect = protect or set()
        rng = spawn_rng(seed, "can-failures")
        candidates = [label for label in self.labels() if label not in protect]
        count = min(len(candidates), int(round(fraction * len(candidates))))
        victims: list[int] = []
        if count > 0:
            chosen = rng.choice(len(candidates), size=count, replace=False)
            victims = [candidates[int(i)] for i in chosen]
        for victim in victims:
            self.fail_node(victim)
        return victims

    def repair(self) -> None:
        self._alive[:] = True

    def state_per_node(self) -> int:
        """CAN's ``O(d)`` routing state: the number of zone neighbours."""
        return 2 * self.dimensions

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def route(self, source: int, target: int) -> RouteResult:
        """Greedy zone-by-zone routing from ``source`` to ``target``."""
        if not self.is_alive(source):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_SOURCE)
        if not self.is_alive(target):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_TARGET)
        target_point = self.label_to_point(target)
        path = [source]
        hops = 0
        current = source
        hop_limit = self.dimensions * self.side * 4 + 64
        while hops < hop_limit:
            if current == target:
                return RouteResult(success=True, hops=hops, path=path)
            current_distance = self.space.distance(
                self.label_to_point(current), target_point
            )
            best: int | None = None
            best_distance = current_distance
            for neighbor in self.neighbors_of(current):
                if not self.is_alive(neighbor):
                    continue
                distance = self.space.distance(
                    self.label_to_point(neighbor), target_point
                )
                if distance < best_distance:
                    best = neighbor
                    best_distance = distance
            if best is None:
                return RouteResult(success=False, hops=hops, path=path,
                                   failure_reason=FailureReason.STUCK)
            current = best
            path.append(current)
            hops += 1
        return RouteResult(success=False, hops=hops, path=path,
                           failure_reason=FailureReason.HOP_LIMIT)

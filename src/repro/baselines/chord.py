"""Chord baseline (Stoica et al., SIGCOMM 2001).

Chord places nodes on a modulo-``2^m`` identifier circle; every node keeps a
finger table whose ``i``-th entry is the first live node at clockwise distance
at least ``2^(i-1)``, and routing forwards greedily to the farthest finger
that does not overshoot the target (one-sided clockwise routing).  The paper
(Section 3) treats Chord as one instance of its general metric-space
framework; this implementation lets the experiments compare hop counts and
failure resilience against the inverse power-law overlay on the same ring.

As an :class:`~repro.overlay.Overlay`, Chord compiles into a two-tier
snapshot (fingers at edge class 0, successors at class 1) executed by
:class:`~repro.overlay.policy.ChordGreedyPolicy`: the batched routes are
hop-for-hop identical to the scalar ``route()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.metric import RingMetric
from repro.overlay.mixin import OverlayMixin
from repro.overlay.policy import ChordGreedyPolicy
from repro.util.validation import ensure_positive

__all__ = ["ChordNetwork"]


@dataclass
class ChordNetwork(OverlayMixin):
    """A Chord ring over the identifier space ``[0, 2^bits)``.

    Parameters
    ----------
    bits:
        Identifier length ``m``; the ring has ``2^m`` points.
    members:
        Node identifiers (a subset of the identifier space).  When ``None``
        every identifier hosts a node.
    successor_list_length:
        Length of the successor list each node keeps for fault tolerance
        (routing falls back to successors when all fingers overshoot or are
        dead).
    """

    bits: int
    members: list[int] | None = None
    successor_list_length: int = 4

    failure_stream = "chord-failures"
    snapshot_kind = "chord"

    def __post_init__(self) -> None:
        ensure_positive(self.bits, "bits")
        self.size = 1 << self.bits
        self.space = RingMetric(self.size)
        self.hop_limit = 4 * self.bits + 32
        if self.members is None:
            self.members = list(range(self.size))
        self.members = sorted(set(int(m) % self.size for m in self.members))
        if len(self.members) < 2:
            raise ValueError("a Chord ring needs at least two members")
        self._init_members(self.members)
        self._fingers: dict[int, list[int]] = {}
        self._successors: dict[int, list[int]] = {}
        self.build_routing_tables()

    # ------------------------------------------------------------------ #
    # Table construction
    # ------------------------------------------------------------------ #

    def successor_of(self, point: int) -> int:
        """Return the first member at or clockwise after ``point`` (alive or not)."""
        index = int(np.searchsorted(self._member_labels, point % self.size))
        if index == len(self.members):
            index = 0
        return int(self._member_labels[index])

    def build_routing_tables(self) -> None:
        """(Re)build every member's finger table and successor list.

        The scalar reference implementation; :meth:`build_routing_tables_batched`
        produces identical tables with vectorized searchsorted sweeps and is
        what :meth:`stabilize` uses.
        """
        for label in self.members:
            fingers = []
            for i in range(self.bits):
                start = (label + (1 << i)) % self.size
                fingers.append(self.successor_of(start))
            self._fingers[label] = fingers
            successors = []
            cursor = label
            for _ in range(self.successor_list_length):
                cursor = self.successor_of((cursor + 1) % self.size)
                successors.append(cursor)
                if cursor == label:
                    break
            self._successors[label] = successors

    def build_routing_tables_batched(self) -> None:
        """Rebuild all tables as bulk array sweeps (identical to the scalar build).

        Fingers: one ``searchsorted`` over the ``(n, bits)`` start matrix.
        Successor lists: ``successor_list_length`` vectorized crawl steps,
        each advancing every member's cursor at once; a member that wraps
        back to itself deactivates (the scalar loop's ``break``).
        """
        labels = self._member_labels
        n = int(labels.size)
        size = self.size
        starts = (labels[:, None] + (1 << np.arange(self.bits, dtype=np.int64))[None, :]) % size
        idx = np.searchsorted(labels, starts)
        idx[idx == n] = 0
        finger_matrix = labels[idx]
        finger_lists = finger_matrix.tolist()
        self._fingers = dict(zip(labels.tolist(), finger_lists))

        cursor = labels.copy()
        active = np.ones(n, dtype=bool)
        columns: list[np.ndarray] = []
        for _ in range(self.successor_list_length):
            idx = np.searchsorted(labels, (cursor + 1) % size)
            idx[idx == n] = 0
            step = labels[idx]
            cursor = np.where(active, step, cursor)
            columns.append(np.where(active, cursor, -1))
            active &= cursor != labels
        successor_matrix = np.stack(columns, axis=1) if columns else np.empty((n, 0), np.int64)
        self._successors = {
            int(label): [entry for entry in row if entry >= 0]
            for label, row in zip(labels.tolist(), successor_matrix.tolist())
        }

    # ------------------------------------------------------------------ #
    # Membership and failures (liveness ops come from OverlayMixin)
    # ------------------------------------------------------------------ #

    def _after_repair(self) -> None:
        """Reviving everyone invalidates the tables; rebuild them."""
        self.build_routing_tables()

    def stabilize(self) -> None:
        """Rebuild tables over the live membership (Chord's repair protocol outcome).

        Failed members are excised entirely: the surviving ring has only the
        live nodes as members, all alive, with fresh finger/successor tables.
        """
        live = self.labels(only_alive=True)
        if len(live) < 2:
            return
        self.members = live
        self._init_members(live)
        self.build_routing_tables_batched()

    # ------------------------------------------------------------------ #
    # Routing (the scalar loop comes from OverlayMixin.route)
    # ------------------------------------------------------------------ #

    def next_hop(self, current: int, target: int) -> int | None:
        """Farthest live finger that does not overshoot the target, else a successor."""
        remaining = self.space.clockwise_distance(current, target)
        best: int | None = None
        best_advance = 0
        for finger in self._fingers[current]:
            if finger == current or not self.is_alive(finger):
                continue
            if not self.link_is_alive(current, finger):
                continue
            advance = self.space.clockwise_distance(current, finger)
            if 0 < advance <= remaining and advance > best_advance:
                best = finger
                best_advance = advance
        if best is not None:
            return best
        for successor in self._successors[current]:
            if successor == current or not self.is_alive(successor):
                continue
            if not self.link_is_alive(current, successor):
                continue
            advance = self.space.clockwise_distance(current, successor)
            if 0 < advance <= remaining:
                return successor
        return None

    # ------------------------------------------------------------------ #
    # Overlay protocol: neighbour iteration and snapshot compilation
    # ------------------------------------------------------------------ #

    def neighbors_of(self, label: int) -> list[int]:
        """Distinct routing-table entries (fingers then successors, no self)."""
        entries = dict.fromkeys(neighbor for neighbor, _ in self.neighbor_entries(label))
        return list(entries)

    def neighbor_entries(self, label: int) -> Iterator[tuple[int, int]]:
        """Fingers at edge class 0, successors at class 1, self-entries dropped.

        Entry order matches :meth:`next_hop`'s iteration order; the class
        split lets :class:`~repro.overlay.policy.ChordGreedyPolicy` key the
        two tiers so fingers always win and the successor fallback picks the
        nearest admissible successor, exactly as the scalar rule does.
        """
        for finger in self._fingers[label]:
            if finger != label:
                yield finger, 0
        for successor in self._successors[label]:
            if successor != label:
                yield successor, 1

    def greedy_policy(self) -> ChordGreedyPolicy:
        """The one-sided clockwise rule over this ring."""
        return ChordGreedyPolicy(size=self.size)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def average_table_size(self) -> float:
        """Average number of distinct routing entries per node."""
        total = 0
        for label in self.members:
            entries = set(self._fingers[label]) | set(self._successors[label])
            entries.discard(label)
            total += len(entries)
        return total / len(self.members)

    def expected_hops(self) -> float:
        """Chord's textbook expected hop count, ``0.5 * log2(n)``."""
        return 0.5 * math.log2(max(2, len(self.members)))

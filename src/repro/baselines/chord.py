"""Chord baseline (Stoica et al., SIGCOMM 2001).

Chord places nodes on a modulo-``2^m`` identifier circle; every node keeps a
finger table whose ``i``-th entry is the first live node at clockwise distance
at least ``2^(i-1)``, and routing forwards greedily to the farthest finger
that does not overshoot the target (one-sided clockwise routing).  The paper
(Section 3) treats Chord as one instance of its general metric-space
framework; this implementation lets the experiments compare hop counts and
failure resilience against the inverse power-law overlay on the same ring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.metric import RingMetric
from repro.core.routing import FailureReason, RouteResult
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_positive

__all__ = ["ChordNetwork"]


@dataclass
class ChordNetwork:
    """A Chord ring over the identifier space ``[0, 2^bits)``.

    Parameters
    ----------
    bits:
        Identifier length ``m``; the ring has ``2^m`` points.
    members:
        Node identifiers (a subset of the identifier space).  When ``None``
        every identifier hosts a node.
    successor_list_length:
        Length of the successor list each node keeps for fault tolerance
        (routing falls back to successors when all fingers overshoot or are
        dead).
    seed:
        Unused at present (Chord is deterministic given the membership) but
        kept for interface symmetry with the randomized builders.
    """

    bits: int
    members: list[int] | None = None
    successor_list_length: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.bits, "bits")
        self.size = 1 << self.bits
        self.space = RingMetric(self.size)
        if self.members is None:
            self.members = list(range(self.size))
        self.members = sorted(set(int(m) % self.size for m in self.members))
        if len(self.members) < 2:
            raise ValueError("a Chord ring needs at least two members")
        self._alive: dict[int, bool] = {label: True for label in self.members}
        self._member_array = np.array(self.members)
        self._fingers: dict[int, list[int]] = {}
        self._successors: dict[int, list[int]] = {}
        self.build_routing_tables()

    # ------------------------------------------------------------------ #
    # Table construction
    # ------------------------------------------------------------------ #

    def successor_of(self, point: int) -> int:
        """Return the first member at or clockwise after ``point`` (alive or not)."""
        index = int(np.searchsorted(self._member_array, point % self.size))
        if index == len(self.members):
            index = 0
        return int(self._member_array[index])

    def build_routing_tables(self) -> None:
        """(Re)build every member's finger table and successor list."""
        for label in self.members:
            fingers = []
            for i in range(self.bits):
                start = (label + (1 << i)) % self.size
                fingers.append(self.successor_of(start))
            self._fingers[label] = fingers
            successors = []
            cursor = label
            for _ in range(self.successor_list_length):
                cursor = self.successor_of((cursor + 1) % self.size)
                successors.append(cursor)
                if cursor == label:
                    break
            self._successors[label] = successors

    # ------------------------------------------------------------------ #
    # Membership and failures
    # ------------------------------------------------------------------ #

    def labels(self, only_alive: bool = True) -> list[int]:
        """Member identifiers, optionally restricted to live nodes."""
        if only_alive:
            return [label for label in self.members if self._alive[label]]
        return list(self.members)

    def is_alive(self, label: int) -> bool:
        """Whether the member at ``label`` is alive."""
        return self._alive.get(label, False)

    def fail_node(self, label: int) -> None:
        """Fail the member at ``label`` (finger tables are *not* rebuilt)."""
        if label in self._alive:
            self._alive[label] = False

    def fail_fraction(self, fraction: float, seed: int = 0, protect: set[int] | None = None) -> list[int]:
        """Fail a uniformly random fraction of the live members."""
        protect = protect or set()
        rng = spawn_rng(seed, "chord-failures")
        candidates = [label for label in self.labels() if label not in protect]
        count = min(len(candidates), int(round(fraction * len(candidates))))
        victims = []
        if count > 0:
            chosen = rng.choice(len(candidates), size=count, replace=False)
            victims = [candidates[int(i)] for i in chosen]
        for victim in victims:
            self.fail_node(victim)
        return victims

    def repair(self) -> None:
        """Revive every member and rebuild the routing tables."""
        for label in self._alive:
            self._alive[label] = True
        self.build_routing_tables()

    def stabilize(self) -> None:
        """Rebuild tables over the live membership (Chord's repair protocol outcome)."""
        live = self.labels(only_alive=True)
        if len(live) < 2:
            return
        saved_alive = dict(self._alive)
        self.members = live
        self._member_array = np.array(self.members)
        self._alive = {label: True for label in live}
        self.build_routing_tables()
        # Preserve the liveness of nodes that were failed but not excised.
        for label, alive in saved_alive.items():
            if label in self._alive:
                self._alive[label] = alive

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def route(self, source: int, target: int) -> RouteResult:
        """Greedy clockwise routing from ``source`` to the member ``target``."""
        if not self.is_alive(source):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_SOURCE)
        if not self.is_alive(target):
            return RouteResult(success=False, hops=0, path=[source],
                               failure_reason=FailureReason.DEAD_TARGET)
        path = [source]
        hops = 0
        current = source
        hop_limit = 4 * self.bits + 32
        while hops < hop_limit:
            if current == target:
                return RouteResult(success=True, hops=hops, path=path)
            next_hop = self._next_hop(current, target)
            if next_hop is None:
                return RouteResult(success=False, hops=hops, path=path,
                                   failure_reason=FailureReason.STUCK)
            current = next_hop
            path.append(current)
            hops += 1
        return RouteResult(success=False, hops=hops, path=path,
                           failure_reason=FailureReason.HOP_LIMIT)

    def _next_hop(self, current: int, target: int) -> int | None:
        """Farthest live finger that does not overshoot the target, else a successor."""
        remaining = self.space.clockwise_distance(current, target)
        best: int | None = None
        best_advance = 0
        for finger in self._fingers[current]:
            if finger == current or not self.is_alive(finger):
                continue
            advance = self.space.clockwise_distance(current, finger)
            if 0 < advance <= remaining and advance > best_advance:
                best = finger
                best_advance = advance
        if best is not None:
            return best
        for successor in self._successors[current]:
            if successor == current or not self.is_alive(successor):
                continue
            advance = self.space.clockwise_distance(current, successor)
            if 0 < advance <= remaining:
                return successor
        return None

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def average_table_size(self) -> float:
        """Average number of distinct routing entries per node."""
        total = 0
        for label in self.members:
            entries = set(self._fingers[label]) | set(self._successors[label])
            entries.discard(label)
            total += len(entries)
        return total / len(self.members)

    def expected_hops(self) -> float:
        """Chord's textbook expected hop count, ``0.5 * log2(n)``."""
        return 0.5 * math.log2(max(2, len(self.members)))

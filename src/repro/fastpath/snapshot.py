"""Compile an overlay graph into an immutable array snapshot.

The object layer (:class:`~repro.core.graph.OverlayGraph`) is optimised for
mutation: joins, link redirects, and failure injection all touch small Python
structures.  Routing *evaluation*, by contrast, is read-only and embarrassingly
parallel across queries, so the fastpath engine first **compiles** the graph
into flat NumPy arrays:

* ``labels`` — the metric-space position of every vertex, sorted ascending
  (the ring positions of the paper's identifier circle);
* ``alive`` — a boolean liveness mask aligned with ``labels``;
* ``neighbor_indptr`` / ``neighbor_indices`` — a CSR-style adjacency whose
  per-vertex slices preserve **exactly** the neighbour order the scalar
  :class:`~repro.core.routing.GreedyRouter` sees (short links first, then long
  links in creation order, then incoming links), which is what makes
  hop-for-hop parity between the two engines possible.

The snapshot is a frozen value object: node failures are modelled by deriving
a copy with a different ``alive`` mask (:meth:`FastpathSnapshot.with_alive`),
and link failures by deriving a copy with a per-edge ``edge_alive`` mask
(:meth:`FastpathSnapshot.with_edge_alive`) — never by mutating arrays in
place.  Graph compiles bake link liveness into the adjacency (dead links are
omitted, mirroring the scalar router's ``only_alive_links=True``); the edge
mask exists for the delta layer's liveness tier, where table-based overlays
flip per-edge health without recompiling.

Only one-dimensional spaces are supported (:class:`~repro.core.metric.RingMetric`
and :class:`~repro.core.metric.LineMetric`) — the spaces the paper's analysis
and experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import OverlayGraph
from repro.core.metric import LineMetric, RingMetric
from repro.fastpath.dtypes import label_dtype, narrow_indptr, narrow_labels
from repro.overlay.policy import GreedyPolicy, MetricGreedyPolicy
from repro.telemetry.core import spanned as telemetry_spanned

__all__ = ["FastpathSnapshot", "compile_snapshot"]


@dataclass(frozen=True, eq=False)
class FastpathSnapshot:
    """Immutable array view of an overlay graph.

    Attributes
    ----------
    kind:
        ``"ring"`` or ``"line"`` — which metric the label arithmetic uses.
    space_size:
        Number of grid points of the underlying metric space.
    labels:
        ``label_dtype(space_size)[num_nodes]`` sorted vertex labels (ring
        positions) — ``int32`` whenever the space fits
        (:func:`repro.fastpath.dtypes.label_dtype`), else ``int64``.
    alive:
        ``bool[num_nodes]`` liveness mask aligned with ``labels``.
    neighbor_indptr:
        ``indptr_dtype(total_degree)[num_nodes + 1]`` CSR row pointers into
        ``neighbor_indices`` — ``int32`` whenever the entry count fits
        (:func:`repro.fastpath.dtypes.indptr_dtype`), else ``int64``.
    neighbor_indices:
        ``int32[total_degree]`` neighbour *indices* (positions in ``labels``),
        in the scalar router's neighbour order per vertex.
    symmetric_neighbors:
        Whether incoming long links were folded into the adjacency (the
        scalar router's ``symmetric_neighbors`` flag at compile time).
    policy:
        Optional :class:`~repro.overlay.policy.GreedyPolicy` giving this
        snapshot its next-hop rule.  ``None`` (graph-compiled ring/line
        snapshots) means the default strictly-decreasing metric rule; the
        baseline overlays attach their protocol's policy, which is how one
        batch router serves every topology.
    edge_class:
        Optional ``int8[total_degree]`` per-edge class codes aligned with
        ``neighbor_indices`` for protocols whose tables are tiered (Chord's
        fingers vs successors); ``None`` when all edges are equal.
    edge_alive:
        Optional ``bool[total_degree]`` per-edge liveness mask aligned with
        ``neighbor_indices``; ``None`` means every compiled edge is usable
        (the common case — an all-``True`` mask is normalised to ``None`` so
        fresh compiles and delta-derived snapshots stay field-identical).
    """

    kind: str
    space_size: int
    labels: np.ndarray
    alive: np.ndarray
    neighbor_indptr: np.ndarray
    neighbor_indices: np.ndarray
    symmetric_neighbors: bool = True
    policy: GreedyPolicy | None = None
    edge_class: np.ndarray | None = None
    edge_alive: np.ndarray | None = None
    # Dense (num_nodes, max_degree) padded adjacency, built lazily from the
    # CSR arrays because the batch router gathers whole rows per hop.
    _dense_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Total number of vertices (alive and failed)."""
        return int(self.labels.shape[0])

    def alive_count(self) -> int:
        """Number of live vertices."""
        return int(self.alive.sum())

    def degrees(self) -> np.ndarray:
        """Out-degree (including folded incoming links) of every vertex."""
        return np.diff(self.neighbor_indptr)

    def indices_of(self, labels: np.ndarray) -> np.ndarray:
        """Map an array of vertex labels to their indices in ``labels``.

        Raises
        ------
        KeyError
            If any queried label is not a vertex of the snapshot.
        """
        queried = np.asarray(labels, dtype=np.int64)
        if self._labels_contiguous():
            # Sorted distinct labels spanning 0..n-1 are the identity map.
            mismatch = (queried < 0) | (queried >= self.num_nodes)
            if np.any(mismatch):
                missing = queried[mismatch].ravel()
                raise KeyError(
                    f"labels {missing[:5].tolist()} are not vertices of this snapshot"
                )
            return queried.copy()
        positions = np.searchsorted(self.labels, queried)
        positions = np.clip(positions, 0, self.num_nodes - 1)
        mismatch = self.labels[positions] != queried
        if np.any(mismatch):
            missing = queried[mismatch].ravel()
            raise KeyError(
                f"labels {missing[:5].tolist()} are not vertices of this snapshot"
            )
        return positions.astype(np.int64)

    def _labels_contiguous(self) -> bool:
        """Whether the (sorted, distinct) labels are exactly ``0..n-1``."""
        cached = self._dense_cache.get("contiguous")
        if cached is None:
            cached = bool(
                self.num_nodes
                and int(self.labels[0]) == 0
                and int(self.labels[-1]) == self.num_nodes - 1
            )
            self._dense_cache["contiguous"] = cached
        return cached

    def neighbors_of_index(self, index: int) -> np.ndarray:
        """Return the neighbour indices of the vertex at ``index`` (CSR slice)."""
        start, stop = self.neighbor_indptr[index], self.neighbor_indptr[index + 1]
        return self.neighbor_indices[start:stop]

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    def dense_neighbors(self) -> np.ndarray:
        """Return the padded ``int32[num_nodes, max_degree]`` adjacency matrix.

        Rows are padded with ``-1``; the matrix is built on first use and
        cached (it is a pure function of the immutable CSR arrays, so sharing
        it between derived snapshots via :meth:`with_alive` is safe).
        """
        return self.routing_matrices()[0]

    def routing_matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(dense, valid, neighbor_labels)`` padded matrices, cached.

        ``dense`` is the ``int32[num_nodes, max_degree]`` adjacency padded
        with ``-1``; ``valid`` marks real (non-pad) entries; and
        ``neighbor_labels`` holds each neighbour's metric-space label (0 in
        pad slots).  The batch router gathers whole rows of these per hop, so
        they are precomputed once per topology rather than re-derived per
        step.  All three are pure functions of the immutable CSR arrays and
        are shared between liveness variants via :meth:`with_alive`.
        """
        cached = self._dense_cache.get("matrices")
        if cached is not None:
            return cached
        degrees = self.degrees()
        max_degree = int(degrees.max()) if degrees.size else 0
        max_degree = max(max_degree, 1)
        dense = np.full((self.num_nodes, max_degree), -1, dtype=np.int32)
        # Scatter each CSR entry to (row, position-within-row).
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), degrees)
        offsets = np.arange(
            self.neighbor_indices.shape[0], dtype=np.int64
        ) - np.repeat(self.neighbor_indptr[:-1], degrees)
        dense[rows, offsets] = self.neighbor_indices
        valid = dense >= 0
        neighbor_labels = self.labels_compact()[np.where(valid, dense, 0)]
        matrices = (dense, valid, neighbor_labels)
        self._dense_cache["matrices"] = matrices
        return matrices

    def greedy_policy(self) -> GreedyPolicy:
        """The next-hop rule this snapshot routes under.

        Protocol snapshots carry their policy explicitly; graph-compiled
        ring/line snapshots fall back to the default metric rule (cached —
        it is what the batch router historically inlined).
        """
        if self.policy is not None:
            return self.policy
        cached = self._dense_cache.get("default_policy")
        if cached is None:
            cached = MetricGreedyPolicy(kind=self.kind, space_size=self.space_size)
            self._dense_cache["default_policy"] = cached
        return cached

    def class_matrix(self) -> np.ndarray | None:
        """Padded ``int8[num_nodes, max_degree]`` edge classes, or ``None``.

        The dense counterpart of ``edge_class``, aligned slot-for-slot with
        :meth:`dense_neighbors` (0 in padding slots); cached like the other
        routing matrices and shared between liveness variants.
        """
        if self.edge_class is None:
            return None
        cached = self._dense_cache.get("class_matrix")
        if cached is None:
            degrees = self.degrees()
            max_degree = max(int(degrees.max()) if degrees.size else 0, 1)
            cached = np.zeros((self.num_nodes, max_degree), dtype=np.int8)
            rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), degrees)
            offsets = np.arange(
                self.neighbor_indices.shape[0], dtype=np.int64
            ) - np.repeat(self.neighbor_indptr[:-1], degrees)
            cached[rows, offsets] = self.edge_class
            self._dense_cache["class_matrix"] = cached
        return cached

    def labels_compact(self) -> np.ndarray:
        """The label array in the narrowest integer dtype that fits the space.

        Since the dtype contracts landed (:mod:`repro.fastpath.dtypes`),
        freshly built snapshots already store ``labels`` at
        :func:`~repro.fastpath.dtypes.label_dtype` and this returns them
        as-is; the cast-and-cache path remains for hand-constructed wide
        snapshots, keeping the halved per-hop memory traffic either way.
        """
        target = label_dtype(self.space_size)
        if self.labels.dtype == target:
            return self.labels
        cached = self._dense_cache.get("labels_compact")
        if cached is None:
            cached = self.labels.astype(target)
            self._dense_cache["labels_compact"] = cached
        return cached

    def with_alive(self, alive: np.ndarray) -> "FastpathSnapshot":
        """Return a copy of this snapshot with a different liveness mask.

        The adjacency arrays (and the cached dense matrix) are shared — node
        failures do not change the topology, only which vertices count as
        usable, exactly as :meth:`OverlayGraph.fail_node` flips a flag.
        """
        alive = np.asarray(alive, dtype=bool)
        if alive.shape != self.alive.shape:
            raise ValueError(
                f"alive mask has shape {alive.shape}, expected {self.alive.shape}"
            )
        return FastpathSnapshot(
            kind=self.kind,
            space_size=self.space_size,
            labels=self.labels,
            alive=alive.copy(),
            neighbor_indptr=self.neighbor_indptr,
            neighbor_indices=self.neighbor_indices,
            symmetric_neighbors=self.symmetric_neighbors,
            policy=self.policy,
            edge_class=self.edge_class,
            edge_alive=self.edge_alive,
            _dense_cache=self._dense_cache,
        )

    def with_edge_alive(self, edge_alive: np.ndarray | None) -> "FastpathSnapshot":
        """Return a copy of this snapshot with a different per-edge mask.

        The adjacency arrays and dense-matrix cache are shared — edge
        failures do not change the topology, only which table entries count
        as usable (the cache holds only pure-adjacency derivatives; masked
        validity is folded in by the batch router per snapshot).  An
        all-``True`` mask is normalised to ``None`` so a fully repaired
        snapshot is field-identical to a fresh compile.
        """
        if edge_alive is not None:
            edge_alive = np.asarray(edge_alive, dtype=bool)
            if edge_alive.shape != self.neighbor_indices.shape:
                raise ValueError(
                    f"edge_alive mask has shape {edge_alive.shape}, "
                    f"expected {self.neighbor_indices.shape}"
                )
            edge_alive = None if bool(edge_alive.all()) else edge_alive.copy()
        return FastpathSnapshot(
            kind=self.kind,
            space_size=self.space_size,
            labels=self.labels,
            alive=self.alive,
            neighbor_indptr=self.neighbor_indptr,
            neighbor_indices=self.neighbor_indices,
            symmetric_neighbors=self.symmetric_neighbors,
            policy=self.policy,
            edge_class=self.edge_class,
            edge_alive=edge_alive,
            _dense_cache=self._dense_cache,
        )

    # ------------------------------------------------------------------ #
    # Vectorized metric arithmetic
    # ------------------------------------------------------------------ #

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized metric distance between label arrays ``a`` and ``b``.

        Protocol snapshots delegate to their policy's metric; ring/line
        labels are grid points in ``[0, space_size)``, so the ring arithmetic
        skips the general modulo reduction (``|a - b| < space_size`` already).
        """
        if self.policy is not None:
            return self.policy.distance(a, b)
        diff = np.abs(a - b)
        if self.kind == "ring":
            return np.minimum(diff, self.space_size - diff)
        return diff

    def displacement(self, source: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Vectorized signed displacement, matching the scalar metric spaces.

        Ring: the shorter-arc displacement, positive (clockwise) on ties.
        Line: the plain signed difference ``target - source``.
        """
        delta = target - source
        if self.kind == "ring":
            forward = np.where(delta < 0, delta + self.space_size, delta)
            backward = forward - self.space_size
            return np.where(forward <= -backward, forward, backward)
        return delta


@telemetry_spanned("compile")
def compile_snapshot(
    graph: OverlayGraph,
    symmetric_neighbors: bool = True,
) -> FastpathSnapshot:
    """Compile an :class:`~repro.core.graph.OverlayGraph` into a snapshot.

    The per-vertex neighbour order reproduces exactly what
    :meth:`OverlayGraph.neighbors_of` returns with ``only_alive_nodes=False``
    and ``only_alive_links=True`` — the candidate list the scalar
    :class:`~repro.core.routing.GreedyRouter` iterates — so the batched engine
    breaks distance ties identically and stays hop-for-hop compatible.

    Parameters
    ----------
    graph:
        The overlay graph to compile.  Link liveness is baked into the
        adjacency (dead links are omitted); node liveness is captured in the
        ``alive`` mask and can be varied later without re-compiling.
    symmetric_neighbors:
        Fold incoming long links into each vertex's neighbour list (the
        scalar router's default handshake model).

    Raises
    ------
    NotImplementedError
        If the graph's metric space is not one-dimensional.
    """
    space = graph.space
    if isinstance(space, RingMetric):
        kind = "ring"
    elif isinstance(space, LineMetric):
        kind = "line"
    else:
        raise NotImplementedError(
            "fastpath snapshots require a one-dimensional space "
            f"(RingMetric or LineMetric), got {type(space).__name__}"
        )

    label_list = sorted(graph.labels())
    labels = np.array(label_list, dtype=np.int64)
    num_nodes = labels.shape[0]

    alive_flags: list[bool] = []
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    flat_labels: list[int] = []
    append = flat_labels.append
    # Inlined OverlayGraph.neighbors_of(only_alive_nodes=False,
    # only_alive_links=True, include_incoming=symmetric_neighbors): the same
    # candidate row in the same order, built without the per-node temporary
    # lists — compilation is itself a hot path at large n.
    for index, label in enumerate(label_list):
        node = graph.node(label)
        alive_flags.append(node.alive)
        row_start = len(flat_labels)
        left, right = node.left, node.right
        if left is not None:
            append(left)
        if right is not None and right != left:
            append(right)
        for link in node.long_links:
            if link.alive:
                append(link.target)
        if symmetric_neighbors:
            incoming = graph.incoming_sources(label)
            if incoming:
                seen = set(flat_labels[row_start:])
                seen.add(label)
                for source in incoming:
                    if source not in seen:
                        seen.add(source)
                        append(source)
        indptr[index + 1] = len(flat_labels)

    # Bulk label -> index translation; every link endpoint is a vertex of the
    # graph (OverlayGraph maintains that invariant on node removal).
    flat = np.asarray(flat_labels, dtype=np.int64)
    indices = np.searchsorted(labels, flat)
    indices = np.clip(indices, 0, max(num_nodes - 1, 0))
    if flat.size and np.any(labels[indices] != flat):
        bad = flat[labels[indices] != flat]
        raise ValueError(
            f"graph links point at non-vertex labels {bad[:5].tolist()}; "
            "the overlay is corrupt"
        )

    # Label translation above runs in int64 (searchsorted intermediates);
    # storage narrows to the contract dtypes only at the snapshot boundary.
    return FastpathSnapshot(
        kind=kind,
        space_size=space.size(),
        labels=narrow_labels(labels, space.size()),
        alive=np.array(alive_flags, dtype=bool),
        neighbor_indptr=narrow_indptr(indptr),
        neighbor_indices=indices.astype(np.int32),
        symmetric_neighbors=symmetric_neighbors,
    )

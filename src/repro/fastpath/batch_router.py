"""Batched greedy routing over a compiled snapshot.

The scalar :class:`~repro.core.routing.GreedyRouter` walks one message at a
time through Python objects; this module advances **thousands of queries one
hop per vectorized step**.  Each step gathers the dense neighbour rows of all
still-active queries, computes every candidate's metric distance to its
query's target in one NumPy expression, masks out unusable candidates, and
picks each query's next hop with a single ``argmin``.

Equivalence contract (see also :mod:`repro.core.routing`)
---------------------------------------------------------
For the configurations it supports, the batch engine is **hop-for-hop
identical** to the scalar router — not merely statistically similar.  The
guarantee rests on two details:

* the snapshot's per-vertex neighbour order equals the scalar router's
  candidate order, and ``argmin`` returns the *first* minimum, matching the
  scalar router's stable sort-by-distance tie-break;
* all queries use the terminate recovery strategy, under which a route's hop
  count equals the number of global steps it has been active, so a single
  step counter implements the scalar per-route hop limit exactly.

Supported: both routing modes (``TWO_SIDED`` and ``ONE_SIDED``, Sections 2
and 4 of the paper), both neighbour-knowledge regimes
(``strict_best_neighbor`` True/False), node failures (Sections 4.3.4.2 and
6), and the ``terminate`` recovery strategy.  The ``random-reroute`` and
``backtrack`` strategies of Section 6 carry per-query mutable state (detour
targets, bounded visit histories) that defeats lock-step vectorization; the
constructor raises :class:`NotImplementedError` for them and callers should
fall back to the scalar :class:`~repro.core.routing.GreedyRouter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.routing import (
    FailureReason,
    RecoveryStrategy,
    RouteResult,
    RoutingMode,
)
from repro.fastpath.snapshot import FastpathSnapshot

__all__ = ["BatchRouteResult", "BatchGreedyRouter", "FAILURE_CODES"]


# Compact int8 encoding of FailureReason for the result arrays.
FAILURE_CODES: dict[FailureReason, int] = {
    FailureReason.NONE: 0,
    FailureReason.STUCK: 1,
    FailureReason.HOP_LIMIT: 2,
    FailureReason.DEAD_SOURCE: 3,
    FailureReason.DEAD_TARGET: 4,
}
_CODE_TO_REASON = {code: reason for reason, code in FAILURE_CODES.items()}


@dataclass
class BatchRouteResult:
    """Array-of-structs outcome of a batched routing run.

    All arrays are aligned with the query order passed to
    :meth:`BatchGreedyRouter.route_batch`.

    Attributes
    ----------
    sources, targets:
        The queried (source, target) labels.
    success:
        ``bool[num_queries]`` — whether each message reached its target.
    hops:
        ``int64[num_queries]`` — edges traversed per query.
    failure_codes:
        ``int8[num_queries]`` — :data:`FAILURE_CODES` encoding of the failure
        reason (0 on success).
    final:
        ``int64[num_queries]`` — label of the node each message stopped at.
    paths:
        Per-query visited-label lists when the run recorded paths, else
        ``None`` (recording is intended for parity tests, not bulk runs).
    """

    sources: np.ndarray
    targets: np.ndarray
    success: np.ndarray
    hops: np.ndarray
    failure_codes: np.ndarray
    final: np.ndarray
    paths: list[list[int]] | None = None

    def __len__(self) -> int:
        return int(self.success.shape[0])

    def success_rate(self) -> float:
        """Fraction of queries that succeeded (0.0 for an empty batch)."""
        if len(self) == 0:
            return 0.0
        return float(self.success.mean())

    def failed_count(self) -> int:
        """Number of failed queries."""
        return int(len(self) - self.success.sum())

    def mean_hops(self, successful_only: bool = True) -> float:
        """Mean hop count, by default over successful queries only.

        Matches the experiments' convention of averaging the delivery time of
        *successful* searches; returns 0.0 when no query qualifies.
        """
        mask = self.success if successful_only else np.ones(len(self), dtype=bool)
        if not np.any(mask):
            return 0.0
        return float(self.hops[mask].mean())

    def failure_reason(self, index: int) -> FailureReason:
        """Decode the failure reason of the query at ``index``."""
        return _CODE_TO_REASON[int(self.failure_codes[index])]

    def to_route_results(self) -> list[RouteResult]:
        """Convert to scalar :class:`~repro.core.routing.RouteResult` objects.

        When paths were not recorded, each result's ``path`` contains only the
        endpoints actually known (source, and the final node when distinct).
        """
        results: list[RouteResult] = []
        for index in range(len(self)):
            if self.paths is not None:
                path = list(self.paths[index])
            else:
                path = [int(self.sources[index])]
                if int(self.final[index]) != path[-1]:
                    path.append(int(self.final[index]))
            results.append(
                RouteResult(
                    success=bool(self.success[index]),
                    hops=int(self.hops[index]),
                    path=path,
                    failure_reason=self.failure_reason(index),
                )
            )
        return results


@dataclass
class BatchGreedyRouter:
    """Vectorized greedy router over a :class:`FastpathSnapshot`.

    Parameters mirror :class:`~repro.core.routing.GreedyRouter` where the
    semantics overlap; see the module docstring for the equivalence contract.

    Parameters
    ----------
    snapshot:
        The compiled overlay.  Its ``alive`` mask is the node-liveness the
        router respects; link liveness was baked in at compile time.
    mode:
        Two-sided (default) or one-sided greedy forwarding.
    recovery:
        Must be :attr:`RecoveryStrategy.TERMINATE`; the stateful Section-6
        strategies raise :class:`NotImplementedError` (use the scalar router).
    strict_best_neighbor:
        Same knowledge-regime switch as the scalar router.
    hop_limit:
        Per-query hop budget; ``None`` derives the scalar router's default
        from the space size.
    """

    snapshot: FastpathSnapshot
    mode: RoutingMode = RoutingMode.TWO_SIDED
    recovery: RecoveryStrategy = RecoveryStrategy.TERMINATE
    strict_best_neighbor: bool = False
    hop_limit: int | None = None

    def __post_init__(self) -> None:
        if self.recovery is not RecoveryStrategy.TERMINATE:
            raise NotImplementedError(
                f"the fastpath engine only supports the "
                f"{RecoveryStrategy.TERMINATE.value!r} recovery strategy; "
                f"{self.recovery.value!r} keeps per-query mutable state — "
                "fall back to the scalar repro.core.routing.GreedyRouter"
            )
        if self.hop_limit is None:
            size = max(4, self.snapshot.space_size)
            self.hop_limit = int(50 * np.ceil(np.log2(size)) ** 2 + 100)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def route_pairs(
        self, pairs, record_paths: bool = False
    ) -> BatchRouteResult:
        """Route a sequence of (source, target) label pairs."""
        array = np.asarray(list(pairs), dtype=np.int64)
        if array.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return BatchRouteResult(
                sources=empty,
                targets=empty.copy(),
                success=np.empty(0, dtype=bool),
                hops=empty.copy(),
                failure_codes=np.empty(0, dtype=np.int8),
                final=empty.copy(),
                paths=[] if record_paths else None,
            )
        return self.route_batch(array[:, 0], array[:, 1], record_paths=record_paths)

    def route_batch(
        self,
        sources,
        targets,
        record_paths: bool = False,
    ) -> BatchRouteResult:
        """Route every ``sources[i] -> targets[i]`` query and return all outcomes.

        Parameters
        ----------
        sources, targets:
            Equal-length arrays of vertex labels.
        record_paths:
            Also record the per-query visited-label lists (slow; meant for
            parity tests and debugging, not bulk evaluation).
        """
        snapshot = self.snapshot
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise ValueError(
                "sources and targets must be equal-length 1-D arrays, got "
                f"shapes {sources.shape} and {targets.shape}"
            )
        num_queries = sources.shape[0]

        source_index = snapshot.indices_of(sources)
        target_index = snapshot.indices_of(targets)
        alive = snapshot.alive
        labels = snapshot.labels

        success = np.zeros(num_queries, dtype=bool)
        hops = np.zeros(num_queries, dtype=np.int64)
        codes = np.zeros(num_queries, dtype=np.int8)
        current = source_index.copy()
        paths: list[list[int]] | None = None
        if record_paths:
            paths = [[int(label)] for label in sources]

        # Endpoint checks, in the scalar router's order: dead source first.
        dead_source = ~alive[source_index]
        dead_target = ~dead_source & ~alive[target_index]
        codes[dead_source] = FAILURE_CODES[FailureReason.DEAD_SOURCE]
        codes[dead_target] = FAILURE_CODES[FailureReason.DEAD_TARGET]
        trivial = ~dead_source & ~dead_target & (source_index == target_index)
        success[trivial] = True

        active = np.flatnonzero(~dead_source & ~dead_target & ~trivial)
        matrices = snapshot.routing_matrices()
        # Skip the per-hop liveness gather entirely on a failure-free
        # snapshot — the common case for the no-failure experiment rows.
        all_alive = bool(alive.all())

        step = 0
        while active.size and step < self.hop_limit:
            chosen, stuck = self._step(
                matrices, current[active], target_index[active], all_alive
            )
            # Stuck queries terminate here (the terminate strategy).
            stuck_queries = active[stuck]
            codes[stuck_queries] = FAILURE_CODES[FailureReason.STUCK]

            movers = ~stuck
            moving_queries = active[movers]
            current[moving_queries] = chosen[movers]
            hops[moving_queries] += 1
            if paths is not None:
                for query in moving_queries:
                    paths[query].append(int(labels[current[query]]))

            arrived = current[moving_queries] == target_index[moving_queries]
            success[moving_queries[arrived]] = True
            active = moving_queries[~arrived]
            step += 1

        # Whatever is still active ran out of hop budget.
        codes[active] = FAILURE_CODES[FailureReason.HOP_LIMIT]

        return BatchRouteResult(
            sources=sources,
            targets=targets,
            success=success,
            hops=hops,
            failure_codes=codes,
            final=labels[current].copy(),
            paths=paths,
        )

    # ------------------------------------------------------------------ #
    # One vectorized greedy step
    # ------------------------------------------------------------------ #

    def _step(
        self,
        matrices: tuple[np.ndarray, np.ndarray, np.ndarray],
        current: np.ndarray,
        target: np.ndarray,
        all_alive: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance every active query one hop.

        Returns ``(chosen, stuck)``: the next-hop vertex index per query
        (undefined where stuck) and the boolean stuck mask.
        """
        snapshot = self.snapshot
        dense, valid_matrix, label_matrix = matrices
        compact_labels = snapshot.labels_compact()
        alive = snapshot.alive

        neighbors = dense[current]  # (k, max_degree) vertex indices, -1 pad
        valid = valid_matrix[current]
        neighbor_labels = label_matrix[current]
        current_labels = compact_labels[current]
        target_labels = compact_labels[target]

        current_distance = snapshot.distance(current_labels, target_labels)
        neighbor_distance = snapshot.distance(
            neighbor_labels, target_labels[:, None]
        )
        candidates = valid & (neighbor_distance < current_distance[:, None])

        if self.mode is RoutingMode.ONE_SIDED:
            # Never traverse a link that jumps past the target: the signed
            # displacement towards the target must not change sign.
            before = snapshot.displacement(current_labels, target_labels)
            after = snapshot.displacement(neighbor_labels, target_labels[:, None])
            overshoot = ((before[:, None] > 0) != (after > 0)) & (after != 0)
            candidates &= ~overshoot

        if not self.strict_best_neighbor and not all_alive:
            candidates &= alive[np.where(valid, neighbors, 0)]

        # First minimum along the row == the scalar router's stable
        # sort-by-distance with earliest-neighbour tie-break.
        blocked = neighbor_distance.dtype.type(snapshot.space_size + 1)
        keyed = np.where(candidates, neighbor_distance, blocked)
        pick = np.argmin(keyed, axis=1)
        row = np.arange(current.shape[0])
        has_candidate = keyed[row, pick] < blocked
        chosen = neighbors[row, pick]

        if self.strict_best_neighbor and not all_alive:
            # The node commits to its best candidate before learning whether
            # it is alive; a dead best candidate means the query is stuck.
            stuck = ~has_candidate | ~alive[np.where(has_candidate, chosen, 0)]
        else:
            stuck = ~has_candidate
        return chosen, stuck

"""Batched greedy routing over a compiled snapshot.

The scalar :class:`~repro.core.routing.GreedyRouter` walks one message at a
time through Python objects; this module advances **thousands of queries one
hop per vectorized step**.  Each step gathers the dense neighbour rows of all
still-active queries, computes every candidate's metric distance to its
query's target in one NumPy expression, masks out unusable candidates, and
picks each query's next hop with a single ``argmin``.

All three Section-6 recovery strategies are implemented:

* **terminate** — a stuck query simply fails; pure lock-step.
* **random re-route** — per-query detour targets (a Valiant-style detour to a
  uniformly random live node).  Stuck queries are frozen until every query
  either finishes or needs a detour, then detours are drawn *in query order*
  from the same derived stream the scalar router uses, so the draw sequence is
  identical to routing the batch one query at a time.
* **backtracking** — a ``(queries, backtrack_depth)`` history ring buffer plus
  a per-query map from visited node to the number of already-tried candidates.
  The scalar router's tried-set is always a *prefix* of the distance-sorted
  candidate list, so one integer per (query, node) reproduces it exactly.

Equivalence contract (see also :mod:`repro.core.routing`)
---------------------------------------------------------
For the configurations it supports, the batch engine is **hop-for-hop
identical** to the scalar router — not merely statistically similar.  The
guarantee rests on three details:

* the snapshot's per-vertex neighbour order equals the scalar router's
  candidate order, and ``argmin`` / stable ``argsort`` reproduce the scalar
  router's stable sort-by-distance tie-break;
* each query's hop budget is tracked individually, reproducing the scalar
  per-route hop limit exactly even when recovery detours desynchronise the
  queries;
* random re-route draws come from ``spawn_rng(seed, "random-reroute")`` in
  ascending query order — the order a scalar router consuming one shared
  stream would draw in (exact for ``max_reroutes=1``, the scalar default;
  larger budgets interleave draws across queries and stay scalar-only).

Supported: both routing modes (``TWO_SIDED`` and ``ONE_SIDED``, Sections 2
and 4 of the paper), both neighbour-knowledge regimes
(``strict_best_neighbor`` True/False), node failures (Sections 4.3.4.2 and
6), and all three recovery strategies of Section 6.  Parity is asserted
path-for-path by ``tests/property/test_property_fastpath.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.routing import (
    FailureReason,
    RecoveryStrategy,
    RouteResult,
    RoutingMode,
)
from repro.fastpath.snapshot import FastpathSnapshot
from repro.telemetry.core import (
    HOP_BUCKETS,
    POW2_BUCKETS,
    current as telemetry_current,
)
from repro.util.rng import spawn_rng

__all__ = ["BatchRouteResult", "BatchGreedyRouter", "FAILURE_CODES"]


# Compact int8 encoding of FailureReason for the result arrays.
FAILURE_CODES: dict[FailureReason, int] = {
    FailureReason.NONE: 0,
    FailureReason.STUCK: 1,
    FailureReason.HOP_LIMIT: 2,
    FailureReason.DEAD_SOURCE: 3,
    FailureReason.DEAD_TARGET: 4,
}
_CODE_TO_REASON = {code: reason for reason, code in FAILURE_CODES.items()}


@dataclass
class BatchRouteResult:
    """Array-of-structs outcome of a batched routing run.

    All arrays are aligned with the query order passed to
    :meth:`BatchGreedyRouter.route_batch`.

    Attributes
    ----------
    sources, targets:
        The queried (source, target) labels.
    success:
        ``bool[num_queries]`` — whether each message reached its target.
    hops:
        ``int64[num_queries]`` — edges traversed per query (detour and
        backtrack moves included, as in the scalar router).
    failure_codes:
        ``int8[num_queries]`` — :data:`FAILURE_CODES` encoding of the failure
        reason (0 on success).
    final:
        ``label_dtype(space_size)[num_queries]`` — label of the node each
        message stopped at (the snapshot's label dtype).
    paths:
        Per-query visited-label lists when the run recorded paths, else
        ``None`` (recording is intended for parity tests, not bulk runs).
    reroutes:
        ``int64[num_queries]`` — random re-route detours taken per query.
    backtracks:
        ``int64[num_queries]`` — backtracking moves taken per query.
    """

    sources: np.ndarray
    targets: np.ndarray
    success: np.ndarray
    hops: np.ndarray
    failure_codes: np.ndarray
    final: np.ndarray
    paths: list[list[int]] | None = None
    reroutes: np.ndarray | None = None
    backtracks: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.reroutes is None:
            self.reroutes = np.zeros(self.success.shape[0], dtype=np.int64)
        if self.backtracks is None:
            self.backtracks = np.zeros(self.success.shape[0], dtype=np.int64)

    def __len__(self) -> int:
        return int(self.success.shape[0])

    def success_rate(self) -> float:
        """Fraction of queries that succeeded (0.0 for an empty batch)."""
        if len(self) == 0:
            return 0.0
        return float(self.success.mean())

    def failed_count(self) -> int:
        """Number of failed queries."""
        return int(len(self) - self.success.sum())

    def mean_hops(self, successful_only: bool = True) -> float:
        """Mean hop count, by default over successful queries only.

        Matches the experiments' convention of averaging the delivery time of
        *successful* searches; returns 0.0 when no query qualifies.
        """
        mask = self.success if successful_only else np.ones(len(self), dtype=bool)
        if not np.any(mask):
            return 0.0
        return float(self.hops[mask].mean())

    def failure_reason(self, index: int) -> FailureReason:
        """Decode the failure reason of the query at ``index``."""
        return _CODE_TO_REASON[int(self.failure_codes[index])]

    def to_route_results(self) -> list[RouteResult]:
        """Convert to scalar :class:`~repro.core.routing.RouteResult` objects.

        When paths were not recorded, each result's ``path`` contains only the
        endpoints actually known (source, and the final node when distinct).
        """
        results: list[RouteResult] = []
        for index in range(len(self)):
            if self.paths is not None:
                path = list(self.paths[index])
            else:
                path = [int(self.sources[index])]
                if int(self.final[index]) != path[-1]:
                    path.append(int(self.final[index]))
            results.append(
                RouteResult(
                    success=bool(self.success[index]),
                    hops=int(self.hops[index]),
                    path=path,
                    failure_reason=self.failure_reason(index),
                    reroutes=int(self.reroutes[index]),
                    backtracks=int(self.backtracks[index]),
                )
            )
        return results


class _PrefixTable:
    """Per-query map ``visited node -> consumed candidate-prefix length``.

    The scalar backtracking router remembers, per visited node, which
    next-hop candidates it has already tried.  Because candidates are
    consumed in distance-sorted order, that set is always a prefix of the
    sorted candidate list, so a single integer per (query, node) pair carries
    the full state.  Entries live in a small, growable slot table per query
    (``-1`` marks a free slot); the scalar router's bounded-memory rule —
    forget a node's tried-set when it falls out of the backtrack window —
    maps to :meth:`delete`.
    """

    def __init__(self, num_queries: int, initial_slots: int = 8) -> None:
        self._nodes = np.full((num_queries, initial_slots), -1, dtype=np.int64)
        self._counts = np.zeros((num_queries, initial_slots), dtype=np.int64)

    def lookup(self, queries: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Consumed-prefix length of ``nodes[i]`` for query ``queries[i]`` (0 if absent)."""
        match = self._nodes[queries] == nodes[:, None]
        found = match.any(axis=1)
        slot = match.argmax(axis=1)
        counts = self._counts[queries, slot]
        return np.where(found, counts, 0)

    def store(self, queries: np.ndarray, nodes: np.ndarray, counts: np.ndarray) -> None:
        """Set the consumed-prefix length, creating slots for new nodes."""
        match = self._nodes[queries] == nodes[:, None]
        found = match.any(axis=1)
        slot = match.argmax(axis=1)
        if found.any():
            self._counts[queries[found], slot[found]] = counts[found]
        new = ~found & (counts > 0)
        if not new.any():
            return
        new_queries = queries[new]
        while True:
            free = self._nodes[new_queries] == -1
            if free.any(axis=1).all():
                break
            self._grow()
        free_slot = free.argmax(axis=1)
        self._nodes[new_queries, free_slot] = nodes[new]
        self._counts[new_queries, free_slot] = counts[new]

    def delete(self, queries: np.ndarray, nodes: np.ndarray) -> None:
        """Forget the entries of ``nodes[i]`` for query ``queries[i]`` (if present)."""
        match = self._nodes[queries] == nodes[:, None]
        found = match.any(axis=1)
        if not found.any():
            return
        slot = match.argmax(axis=1)
        self._nodes[queries[found], slot[found]] = -1
        self._counts[queries[found], slot[found]] = 0

    def _grow(self) -> None:
        num_queries, slots = self._nodes.shape
        nodes = np.full((num_queries, 2 * slots), -1, dtype=np.int64)
        counts = np.zeros((num_queries, 2 * slots), dtype=np.int64)
        nodes[:, :slots] = self._nodes
        counts[:, :slots] = self._counts
        self._nodes, self._counts = nodes, counts


@dataclass
class BatchGreedyRouter:
    """Vectorized greedy router over a :class:`FastpathSnapshot`.

    Parameters mirror :class:`~repro.core.routing.GreedyRouter` where the
    semantics overlap; see the module docstring for the equivalence contract.

    Parameters
    ----------
    snapshot:
        The compiled overlay.  Its ``alive`` mask is the node-liveness the
        router respects; link liveness was baked in at compile time.
    mode:
        Two-sided (default) or one-sided greedy forwarding.
    recovery:
        Any of the three Section-6 strategies (terminate, random re-route,
        backtracking).
    backtrack_depth:
        Number of recently visited nodes remembered for backtracking
        (the paper uses 5).
    max_reroutes:
        Random re-route detour budget per query.  Only 0 and 1 are supported
        (1 is the scalar default): larger budgets interleave RNG draws across
        queries in an order only sequential routing can reproduce, so they
        raise :class:`NotImplementedError` — use the scalar router.
    strict_best_neighbor:
        Same knowledge-regime switch as the scalar router.
    hop_limit:
        Per-query hop budget; ``None`` derives the scalar router's default
        from the space size.
    seed:
        Seed for the random re-route stream, derived exactly as the scalar
        router derives it.
    reroute_pool:
        Optional sequence of live-node labels, in the order the paired scalar
        router's ``graph.labels(only_alive=True)`` returns them; detour draws
        index into this pool.  ``None`` (default) uses the snapshot's live
        vertices in ascending label order — correct for every graph built in
        sorted label order, which all one-shot builders guarantee.
    """

    snapshot: FastpathSnapshot
    mode: RoutingMode = RoutingMode.TWO_SIDED
    recovery: RecoveryStrategy = RecoveryStrategy.TERMINATE
    backtrack_depth: int = 5
    max_reroutes: int = 1
    strict_best_neighbor: bool = False
    hop_limit: int | None = None
    seed: int = 0
    reroute_pool: object = None
    _pool_cache: tuple | None = field(default=None, repr=False, compare=False)
    _usable_cache: object = field(default=None, repr=False, compare=False)
    _edge_valid_cache: object = field(default=None, repr=False, compare=False)

    @property
    def policy(self):
        """The greedy next-hop rule the router executes (from the snapshot)."""
        return self.snapshot.greedy_policy()

    def rebase(self, snapshot: FastpathSnapshot) -> None:
        """Point the router at a delta-updated snapshot.

        Invalidates the per-snapshot caches (the liveness-folded usable
        matrix and the detour pool) while keeping the router's configuration
        and its random re-route stream — batches routed across successive
        deltas continue the same draw sequence, exactly like a scalar router
        observing the overlay mutate in place.  This is the per-*delta*
        invalidation point: liveness-only deltas hand back a snapshot that
        shares its dense adjacency matrices with the previous one (see
        :meth:`~repro.fastpath.delta.DeltaSnapshot.snapshot`), so only the
        two caches cleared here are actually recomputed.
        """
        self.snapshot = snapshot
        self._usable_cache = None
        self._pool_cache = None
        self._edge_valid_cache = None

    def _valid_matrix(
        self, matrices: tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> np.ndarray:
        """The padding-validity matrix with dead *edges* masked out, cached.

        With no ``edge_alive`` mask this is the plain padding mask; with one,
        each dead table entry's dense slot is switched off — the node knows
        its own table's health, so dead edges are excluded as candidates in
        both knowledge regimes (exactly as the scalar rules skip them).
        """
        snapshot = self.snapshot
        if snapshot.edge_alive is None:
            return matrices[1]
        if self._edge_valid_cache is None:
            _dense, valid, _labels = matrices
            edge_ok = valid.copy()
            degrees = snapshot.degrees()
            rows = np.repeat(np.arange(snapshot.num_nodes, dtype=np.int64), degrees)
            offsets = np.arange(
                snapshot.neighbor_indices.shape[0], dtype=np.int64
            ) - np.repeat(snapshot.neighbor_indptr[:-1], degrees)
            edge_ok[rows, offsets] = snapshot.edge_alive
            self._edge_valid_cache = edge_ok
        return self._edge_valid_cache

    def _usable_matrix(
        self, matrices: tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> np.ndarray:
        """Edge-validity with dead neighbours also masked out, cached per router.

        The snapshot's ``alive`` mask is immutable, so in the lenient
        knowledge regime (dead candidates skipped) liveness can be folded
        into the validity mask once instead of being re-gathered every hop.
        """
        if self._usable_cache is None:
            dense, _valid, _ = matrices
            valid = self._valid_matrix(matrices)
            alive = self.snapshot.alive
            self._usable_cache = valid & alive[np.where(valid, dense, 0)]
        return self._usable_cache

    def __post_init__(self) -> None:
        if self.backtrack_depth < 1:
            raise ValueError(f"backtrack_depth must be >= 1, got {self.backtrack_depth}")
        if self.max_reroutes not in (0, 1):
            raise NotImplementedError(
                f"the fastpath engine supports max_reroutes 0 or 1 (the scalar "
                f"default), got {self.max_reroutes}: larger budgets interleave "
                "RNG draws across queries — use the scalar "
                "repro.core.routing.GreedyRouter"
            )
        if self.hop_limit is None:
            size = max(4, self.snapshot.space_size)
            self.hop_limit = int(50 * np.ceil(np.log2(size)) ** 2 + 100)
        # One stream for the router's lifetime, exactly like the scalar
        # router: batches routed back-to-back continue the same sequence.
        self._reroute_rng = spawn_rng(self.seed, "random-reroute")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def route_pairs(
        self, pairs: Iterable[tuple[int, int]], record_paths: bool = False
    ) -> BatchRouteResult:
        """Route a sequence of (source, target) label pairs."""
        array = np.asarray(list(pairs), dtype=np.int64)
        if array.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return BatchRouteResult(
                sources=empty,
                targets=empty.copy(),
                success=np.empty(0, dtype=bool),
                hops=empty.copy(),
                failure_codes=np.empty(0, dtype=np.int8),
                final=empty.copy(),
                paths=[] if record_paths else None,
            )
        return self.route_batch(array[:, 0], array[:, 1], record_paths=record_paths)

    def route_batch(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        record_paths: bool = False,
    ) -> BatchRouteResult:
        """Route every ``sources[i] -> targets[i]`` query and return all outcomes.

        Parameters
        ----------
        sources, targets:
            Equal-length arrays of vertex labels.
        record_paths:
            Also record the per-query visited-label lists (slow; meant for
            parity tests and debugging, not bulk evaluation).
        """
        snapshot = self.snapshot
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise ValueError(
                "sources and targets must be equal-length 1-D arrays, got "
                f"shapes {sources.shape} and {targets.shape}"
            )
        num_queries = sources.shape[0]

        source_index = snapshot.indices_of(sources)
        target_index = snapshot.indices_of(targets)
        alive = snapshot.alive
        labels = snapshot.labels

        success = np.zeros(num_queries, dtype=bool)
        hops = np.zeros(num_queries, dtype=np.int64)
        codes = np.zeros(num_queries, dtype=np.int8)
        reroutes = np.zeros(num_queries, dtype=np.int64)
        backtracks = np.zeros(num_queries, dtype=np.int64)
        current = source_index.copy()
        paths: list[list[int]] | None = None
        if record_paths:
            paths = [[label] for label in sources.tolist()]

        # Endpoint checks, in the scalar router's order: dead source first.
        dead_source = ~alive[source_index]
        dead_target = ~dead_source & ~alive[target_index]
        codes[dead_source] = FAILURE_CODES[FailureReason.DEAD_SOURCE]
        codes[dead_target] = FAILURE_CODES[FailureReason.DEAD_TARGET]
        trivial = ~dead_source & ~dead_target & (source_index == target_index)
        success[trivial] = True

        active = np.flatnonzero(~dead_source & ~dead_target & ~trivial)
        # Telemetry is fetched once per batch; the per-round guards inside
        # the run loops are plain truthiness checks, so the disabled path
        # costs nothing measurable (property-tested to be bit-identical).
        tel = telemetry_current()
        if tel is not None:
            tel.count("route.batches")
            tel.count("route.queries", num_queries)
            # repro: allow[RPR001] — timing only reachable with telemetry on
            batch_started = time.perf_counter()
            with tel.span("route"):
                if self.recovery is RecoveryStrategy.BACKTRACK:
                    self._run_backtrack(
                        active, current, target_index, success, hops, codes, backtracks, paths
                    )
                else:
                    self._run_forward(
                        active, current, target_index, success, hops, codes, reroutes, paths
                    )
            # repro: allow[RPR001] — timing only reachable with telemetry on
            batch_ms = (time.perf_counter() - batch_started) * 1e3
            tel.observe("route.batch_ms", batch_ms)
            if success.any():
                tel.observe_many("route.hops", hops[success], buckets=HOP_BUCKETS)
        elif self.recovery is RecoveryStrategy.BACKTRACK:
            self._run_backtrack(
                active, current, target_index, success, hops, codes, backtracks, paths
            )
        else:
            self._run_forward(
                active, current, target_index, success, hops, codes, reroutes, paths
            )

        return BatchRouteResult(
            sources=sources,
            targets=targets,
            success=success,
            hops=hops,
            failure_codes=codes,
            final=labels[current].copy(),
            paths=paths,
            reroutes=reroutes,
            backtracks=backtracks,
        )

    # ------------------------------------------------------------------ #
    # Forward-only routing (terminate / random re-route)
    # ------------------------------------------------------------------ #

    def _run_forward(
        self,
        active: np.ndarray,
        current: np.ndarray,
        target_index: np.ndarray,
        success: np.ndarray,
        hops: np.ndarray,
        codes: np.ndarray,
        reroutes: np.ndarray,
        paths: list[list[int]] | None,
    ) -> None:
        """Lock-step greedy forwarding with optional random re-route detours.

        Stuck queries with detour budget are *frozen* rather than resolved in
        place; once every query has either finished or frozen, detours are
        drawn in ascending query order (the order a scalar router sharing one
        RNG stream would draw in) and the frozen queries resume.  With the
        supported budget of one detour per query this reproduces the scalar
        draw sequence exactly.
        """
        snapshot = self.snapshot
        labels = snapshot.labels
        matrices = snapshot.routing_matrices()
        # Skip the per-hop liveness gather entirely on a failure-free
        # snapshot — the common case for the no-failure experiment rows.
        all_alive = bool(snapshot.alive.all())
        rerouting = self.recovery is RecoveryStrategy.RANDOM_REROUTE
        # Per-query detour target (vertex index), -1 when routing to the
        # real target.
        detour = np.full(current.shape[0], -1, dtype=np.int64)
        pending: list[int] = []
        tel = telemetry_current()

        while active.size or pending:
            if not active.size:
                active = self._draw_detours(pending, current, detour, codes, reroutes)
                if tel is not None and active.size:
                    tel.count("route.recovery.reroute", int(active.size))
                pending = []
                continue

            # Per-query hop budget, checked before anything else — exactly
            # the scalar loop condition.
            over = hops[active] >= self.hop_limit
            if over.any():
                codes[active[over]] = FAILURE_CODES[FailureReason.HOP_LIMIT]
                active = active[~over]
                if not active.size:
                    continue

            if tel is not None:
                tel.count("route.rounds")
                tel.count("route.rows_scanned", int(active.size))
                tel.observe("route.frontier", float(active.size), buckets=POW2_BUCKETS)

            # Arriving at the detour node costs no hop: resume routing to
            # the real target from there.
            active_detour = detour[active]
            at_detour = (active_detour >= 0) & (current[active] == active_detour)
            if at_detour.any():
                detour[active[at_detour]] = -1
            goal = np.where(detour[active] >= 0, detour[active], target_index[active])

            chosen, stuck = self._step(matrices, current[active], goal, all_alive)

            if stuck.any():
                stuck_queries = active[stuck]
                if rerouting:
                    can_detour = reroutes[stuck_queries] < self.max_reroutes
                    pending.extend(int(q) for q in stuck_queries[can_detour])
                    codes[stuck_queries[~can_detour]] = FAILURE_CODES[
                        FailureReason.STUCK
                    ]
                else:
                    codes[stuck_queries] = FAILURE_CODES[FailureReason.STUCK]

            movers = ~stuck
            moving_queries = active[movers]
            current[moving_queries] = chosen[movers]
            hops[moving_queries] += 1
            if paths is not None:
                for query in moving_queries:
                    paths[query].append(int(labels[current[query]]))

            arrived = current[moving_queries] == target_index[moving_queries]
            success[moving_queries[arrived]] = True
            active = moving_queries[~arrived]

    def _reroute_pool_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The detour pool as (vertex indices, vertex -> pool position)."""
        if self._pool_cache is None:
            if self.reroute_pool is not None:
                pool_labels = np.asarray(list(self.reroute_pool), dtype=np.int64)
                pool = self.snapshot.indices_of(pool_labels)
            else:
                pool = np.flatnonzero(self.snapshot.alive).astype(np.int64)
            position = np.full(self.snapshot.num_nodes, -1, dtype=np.int64)
            position[pool] = np.arange(pool.size, dtype=np.int64)
            self._pool_cache = (pool, position)
        return self._pool_cache

    def _draw_detours(
        self,
        pending: np.ndarray,
        current: np.ndarray,
        detour: np.ndarray,
        codes: np.ndarray,
        reroutes: np.ndarray,
    ) -> np.ndarray:
        """Draw a detour target for every frozen query, in query order.

        Reproduces ``GreedyRouter._pick_random_live_node`` per query: a
        uniform index into the live pool minus the query's current node, one
        ``integers`` call per draw from the shared stream.  Queries with no
        other live node fail as stuck without consuming a draw.  Returns the
        reactivated query indices.
        """
        pool, position = self._reroute_pool_arrays()
        rng = self._reroute_rng
        reactivated: list[int] = []
        for query in sorted(pending):
            at = int(position[current[query]])
            available = pool.size - 1 if at >= 0 else pool.size
            if available <= 0:
                codes[query] = FAILURE_CODES[FailureReason.STUCK]
                continue
            index = int(rng.integers(0, available))
            if at >= 0 and index >= at:
                index += 1
            detour[query] = pool[index]
            reroutes[query] += 1
            reactivated.append(query)
        return np.asarray(reactivated, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Backtracking routing
    # ------------------------------------------------------------------ #

    def _run_backtrack(
        self,
        active: np.ndarray,
        current: np.ndarray,
        target_index: np.ndarray,
        success: np.ndarray,
        hops: np.ndarray,
        codes: np.ndarray,
        backtracks: np.ndarray,
        paths: list[list[int]] | None,
    ) -> None:
        """Lock-step greedy routing with per-query backtracking state.

        Per query: a ``backtrack_depth``-deep ring buffer of recently
        forwarded-from vertices and a :class:`_PrefixTable` of consumed
        candidates.  Each iteration advances every in-flight query by exactly
        one scalar-loop iteration (a forward move, a backtrack move, or a
        terminal verdict), so hop counts, paths, and tie-breaks match the
        scalar router move for move.
        """
        snapshot = self.snapshot
        matrices = snapshot.routing_matrices()
        alive = snapshot.alive
        labels = snapshot.labels
        depth = self.backtrack_depth
        num_queries = current.shape[0]

        history = np.full((num_queries, depth), -1, dtype=np.int64)
        history_len = np.zeros(num_queries, dtype=np.int64)
        tried = _PrefixTable(num_queries)
        tel = telemetry_current()

        while active.size:
            # Scalar loop order: hop budget first, then the arrival check.
            over = hops[active] >= self.hop_limit
            if over.any():
                codes[active[over]] = FAILURE_CODES[FailureReason.HOP_LIMIT]
                active = active[~over]
                if not active.size:
                    break
            arrived = current[active] == target_index[active]
            if arrived.any():
                success[active[arrived]] = True
                active = active[~arrived]
                if not active.size:
                    break

            if tel is not None:
                tel.count("route.rounds")
                tel.count("route.rows_scanned", int(active.size))
                tel.observe("route.frontier", float(active.size), buckets=POW2_BUCKETS)

            chosen, new_consumed, consumed_nodes, stuck = self._backtrack_select(
                matrices, alive, active, current, target_index, tried
            )
            tried.store(active, consumed_nodes, new_consumed)

            movers = ~stuck
            moving_queries = active[movers]
            if moving_queries.size:
                from_vertex = current[moving_queries].copy()
                # Push the departed vertex into the history window; when the
                # window overflows, forget the dropped vertex's tried-set
                # unless it still appears elsewhere in the window.
                full = history_len[moving_queries] == depth
                if full.any():
                    full_queries = moving_queries[full]
                    dropped = history[full_queries, 0].copy()
                    history[full_queries, :-1] = history[full_queries, 1:]
                    history[full_queries, -1] = from_vertex[full]
                    still_present = (history[full_queries] == dropped[:, None]).any(axis=1)
                    if (~still_present).any():
                        tried.delete(full_queries[~still_present], dropped[~still_present])
                partial = ~full
                if partial.any():
                    partial_queries = moving_queries[partial]
                    history[partial_queries, history_len[partial_queries]] = (
                        from_vertex[partial]
                    )
                    history_len[partial_queries] += 1
                current[moving_queries] = chosen[movers]
                hops[moving_queries] += 1
                if paths is not None:
                    for query in moving_queries:
                        paths[query].append(int(labels[current[query]]))

            stuck_queries = active[stuck]
            returning = np.empty(0, dtype=np.int64)
            if stuck_queries.size:
                can_return = history_len[stuck_queries] > 0
                returning = stuck_queries[can_return]
                if returning.size:
                    if tel is not None:
                        tel.count("route.recovery.backtrack", int(returning.size))
                    previous = history[returning, history_len[returning] - 1]
                    history_len[returning] -= 1
                    current[returning] = previous
                    hops[returning] += 1
                    backtracks[returning] += 1
                    if paths is not None:
                        for query in returning.tolist():
                            paths[query].append(int(labels[current[query]]))
                exhausted = stuck_queries[~can_return]
                codes[exhausted] = FAILURE_CODES[FailureReason.STUCK]

            active = np.sort(np.concatenate([moving_queries, returning]))

    def _backtrack_select(
        self,
        matrices: tuple[np.ndarray, np.ndarray, np.ndarray],
        alive: np.ndarray,
        active: np.ndarray,
        current: np.ndarray,
        target_index: np.ndarray,
        tried: _PrefixTable,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pick each active query's next untried candidate, consuming prefixes.

        Returns ``(chosen, new_consumed, nodes, stuck)``: the next-hop vertex
        per query (undefined where stuck), the updated consumed-prefix length
        for the query's current vertex, that vertex, and the stuck mask.
        """
        cur = current[active]
        neighbors, valid, keyed, blocked = self._candidate_keys(
            matrices, cur, target_index[active]
        )
        row = np.arange(active.size, dtype=np.int64)

        # Fast path — by far the most common case: the query is visiting this
        # node for the first time (nothing consumed), so the scalar router
        # simply takes its closest candidate.  ``argmin`` finds it without
        # the sort-and-dedup machinery; consuming it sets the prefix to 1.
        # Lenient queries whose closest candidate is dead (they would skip
        # and consume further) drop to the full path below.
        consumed = tried.lookup(active, cur)
        first_pick = np.argmin(keyed, axis=1)
        has_candidate = keyed[row, first_pick] < blocked
        first_choice = neighbors[row, first_pick].astype(np.int64)
        first_alive = alive[np.where(has_candidate, first_choice, 0)]
        if self.strict_best_neighbor:
            cheap = consumed == 0
            cheap_stuck = ~has_candidate | ~first_alive
        else:
            cheap = (consumed == 0) & (~has_candidate | first_alive)
            cheap_stuck = ~has_candidate
        if cheap.all():
            chosen = first_choice
            stuck = cheap_stuck
            new_consumed = np.where(has_candidate, 1, 0)
            return chosen, new_consumed, cur, stuck

        chosen = first_choice
        stuck = cheap_stuck.copy()
        new_consumed = np.where(has_candidate, 1, 0)
        full = np.flatnonzero(~cheap)
        (
            chosen[full],
            new_consumed[full],
            stuck[full],
        ) = self._backtrack_select_full(
            neighbors[full], keyed[full], blocked, alive, consumed[full]
        )
        return chosen, new_consumed, cur, stuck

    def _backtrack_select_full(
        self,
        neighbors: np.ndarray,
        keyed: np.ndarray,
        blocked: np.generic,
        alive: np.ndarray,
        consumed: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The general prefix-consuming selection for revisited/degraded rows."""
        # Stable argsort by distance == the scalar router's stable
        # sort-by-distance with earliest-neighbour tie-break; non-candidates
        # sink to the back.
        order = np.argsort(keyed, axis=1, kind="stable")
        sorted_neighbors = np.take_along_axis(neighbors, order, axis=1)
        sorted_keyed = np.take_along_axis(keyed, order, axis=1)
        is_candidate = sorted_keyed < blocked

        # A neighbour row may list the same vertex twice (e.g. a long link to
        # the node's own ring neighbour).  The scalar tried-set holds *labels*,
        # so consuming a candidate consumes every duplicate of it: the prefix
        # arithmetic lives on the deduplicated sorted list.  Mark every
        # repeated occurrence (value-sorted adjacency; the stable sort keeps
        # the distance-order first occurrence first).
        value = np.where(is_candidate, sorted_neighbors.astype(np.int64), -1)
        value_order = np.argsort(value, axis=1, kind="stable")
        value_sorted = np.take_along_axis(value, value_order, axis=1)
        repeat_sorted = np.zeros_like(is_candidate)
        repeat_sorted[:, 1:] = (value_sorted[:, 1:] == value_sorted[:, :-1]) & (
            value_sorted[:, 1:] >= 0
        )
        repeated = np.zeros_like(is_candidate)
        np.put_along_axis(repeated, value_order, repeat_sorted, axis=1)
        distinct = is_candidate & ~repeated
        candidate_count = distinct.sum(axis=1).astype(np.int64)
        # 0-based rank of each distinct candidate in distance order (garbage
        # in non-distinct slots; every use below is masked by ``distinct``).
        rank = distinct.cumsum(axis=1, dtype=np.int64) - 1

        row = np.arange(neighbors.shape[0], dtype=np.int64)
        if self.strict_best_neighbor:
            # The node commits to its single best untried candidate: the
            # candidate is consumed either way, and a dead pick means the
            # node is stuck for this visit.
            has_untried = consumed < candidate_count
            at_consumed = distinct & (rank == consumed[:, None])
            pick = at_consumed.argmax(axis=1)
            chosen = sorted_neighbors[row, pick].astype(np.int64)
            chosen_alive = alive[np.where(has_untried, chosen, 0)]
            stuck = ~has_untried | ~chosen_alive
            new_consumed = np.where(has_untried, consumed + 1, consumed)
        else:
            # Lenient model: dead untried candidates are consumed and
            # skipped until a live one is found.
            safe_neighbors = np.where(sorted_neighbors >= 0, sorted_neighbors, 0)
            eligible = (
                distinct & (rank >= consumed[:, None]) & alive[safe_neighbors]
            )
            found = eligible.any(axis=1)
            pick = eligible.argmax(axis=1)
            chosen = sorted_neighbors[row, pick].astype(np.int64)
            stuck = ~found
            new_consumed = np.where(found, rank[row, pick] + 1, candidate_count)
        return chosen, new_consumed, stuck

    # ------------------------------------------------------------------ #
    # One vectorized greedy step
    # ------------------------------------------------------------------ #

    def _candidate_keys(
        self,
        matrices: tuple[np.ndarray, np.ndarray, np.ndarray],
        current: np.ndarray,
        target: np.ndarray,
        valid_matrix: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Gather neighbour rows and ask the snapshot's policy to key them.

        Returns ``(neighbors, valid, keyed, blocked)``: the dense neighbour
        rows of the queried vertices, the non-padding mask, the policy's key
        matrix (``>= blocked`` marks inadmissible candidates), and the
        blocked sentinel in the key dtype.  *Node* liveness is not applied
        here unless the caller folds it into ``valid_matrix`` (the
        knowledge-regime handling stays with the caller); *edge* liveness
        always is — a node never proposes a table entry it knows is down.
        """
        snapshot = self.snapshot
        dense, _padding_valid, label_matrix = matrices
        if valid_matrix is None:
            valid_matrix = self._valid_matrix(matrices)
        compact_labels = snapshot.labels_compact()

        neighbors = dense[current]  # (k, max_degree) vertex indices, -1 pad
        valid = valid_matrix[current]
        neighbor_labels = label_matrix[current]
        current_labels = compact_labels[current]
        target_labels = compact_labels[target]

        policy = self.policy
        class_matrix = snapshot.class_matrix()
        keyed = policy.candidate_keys(
            current_labels,
            neighbor_labels,
            valid,
            target_labels,
            self.mode,
            edge_class=class_matrix[current] if class_matrix is not None else None,
        )
        blocked = keyed.dtype.type(policy.blocked)
        return neighbors, valid, keyed, blocked

    def _step(
        self,
        matrices: tuple[np.ndarray, np.ndarray, np.ndarray],
        current: np.ndarray,
        target: np.ndarray,
        all_alive: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance every active query one hop towards its goal.

        Returns ``(chosen, stuck)``: the next-hop vertex index per query
        (undefined where stuck) and the boolean stuck mask.
        """
        alive = self.snapshot.alive
        # Lenient regime: dead candidates are skipped, which is equivalent to
        # never having them in the row — fold the (immutable) liveness mask
        # into validity once per router instead of re-gathering it per hop.
        usable = None
        if not self.strict_best_neighbor and not all_alive:
            usable = self._usable_matrix(matrices)
        neighbors, _valid, keyed, blocked = self._candidate_keys(
            matrices, current, target, valid_matrix=usable
        )

        # First minimum along the row == the scalar router's stable
        # sort-by-distance with earliest-neighbour tie-break.
        pick = np.argmin(keyed, axis=1)
        row = np.arange(current.shape[0], dtype=np.int64)
        has_candidate = keyed[row, pick] < blocked
        chosen = neighbors[row, pick]

        if self.strict_best_neighbor and not all_alive:
            # The node commits to its best candidate before learning whether
            # it is alive; a dead best candidate means the query is stuck.
            stuck = ~has_candidate | ~alive[np.where(has_candidate, chosen, 0)]
        else:
            stuck = ~has_candidate
        return chosen, stuck

"""Vectorized failure injection for fastpath snapshots.

The object layer's :class:`~repro.core.failures.NodeFailureModel` flips
per-node flags one at a time; here the same sampling runs as bulk NumPy
operations against a snapshot's liveness mask, so a failure sweep never walks
Python objects.

The sampling semantics — and the random stream — deliberately match
:class:`~repro.core.failures.NodeFailureModel`: the same ``seed`` failing the
same candidate list picks the same victims.  For graphs whose nodes were
inserted in sorted label order (every builder in :mod:`repro.core.builder`
does this) the candidate order is identical, so the two failure paths are
interchangeable in experiments.

Only **node** failures are handled here.  Link failures change the compiled
adjacency itself, so the fastpath route for those is: apply a
:class:`~repro.core.failures.LinkFailureModel` to the graph, then re-compile
with :func:`~repro.fastpath.snapshot.compile_snapshot` (dead links are
omitted at compile time).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fastpath.snapshot import FastpathSnapshot
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_probability

__all__ = ["sample_node_failures", "apply_node_failures"]


def sample_node_failures(
    snapshot: FastpathSnapshot,
    failure_level: float,
    mode: str = "fraction",
    protect: Sequence[int] = (),
    seed: int = 0,
) -> np.ndarray:
    """Sample a boolean *failed* mask over the snapshot's vertices.

    Parameters
    ----------
    snapshot:
        The compiled overlay; only currently-alive vertices are candidates.
    failure_level:
        Fraction (or per-node probability) of failures, in [0, 1].
    mode:
        ``"fraction"`` (exact count, the Section-6 experimental setup) or
        ``"probability"`` (independent coin flips, the Section-4.3.4.2
        analytical model).
    protect:
        Labels that must never fail (e.g. the endpoints of a paired routing
        comparison).
    seed:
        Seed; drawn from the same derived stream as
        :class:`~repro.core.failures.NodeFailureModel`.

    Returns
    -------
    numpy.ndarray
        ``bool[num_nodes]`` mask, ``True`` where the vertex fails.
    """
    ensure_probability(failure_level, "failure_level")
    if mode not in ("fraction", "probability"):
        raise ValueError(f"mode must be 'fraction' or 'probability', got {mode!r}")

    rng = spawn_rng(seed, "node-failures")
    candidates = snapshot.alive.copy()
    if len(protect):
        candidates[snapshot.indices_of(np.asarray(list(protect), dtype=np.int64))] = False
    candidate_indices = np.flatnonzero(candidates)

    failed = np.zeros(snapshot.num_nodes, dtype=bool)
    if candidate_indices.size == 0:
        return failed
    if mode == "fraction":
        count = int(round(failure_level * candidate_indices.size))
        count = min(count, candidate_indices.size)
        if count > 0:
            chosen = rng.choice(candidate_indices.size, size=count, replace=False)
            failed[candidate_indices[chosen]] = True
    else:
        draws = rng.random(candidate_indices.size)
        failed[candidate_indices[draws < failure_level]] = True
    return failed


def apply_node_failures(
    snapshot: FastpathSnapshot,
    failure_level: float,
    mode: str = "fraction",
    protect: Sequence[int] = (),
    seed: int = 0,
) -> FastpathSnapshot:
    """Return a derived snapshot with a fraction of its live vertices failed.

    The input snapshot is untouched (snapshots are immutable); "repair" is
    simply keeping the original around.
    """
    failed = sample_node_failures(
        snapshot, failure_level, mode=mode, protect=protect, seed=seed
    )
    return snapshot.with_alive(snapshot.alive & ~failed)

"""repro.fastpath — array-compiled overlay and batched greedy routing.

The paper's headline numbers (Figures 5–7, Table 1) are statistics over many
thousands of routed queries; this package is the evaluation engine that makes
those populations cheap.  It has two halves:

* :mod:`repro.fastpath.snapshot` — **compile** a built overlay into an
  immutable array snapshot (CSR neighbour arrays, ring positions, alive
  bitmask);
* :mod:`repro.fastpath.batch_router` — **evaluate** thousands of
  (source, target) queries against a snapshot, one vectorized hop per step,
  with :mod:`repro.fastpath.failures` injecting node failures as bulk mask
  operations;
* :mod:`repro.fastpath.delta` — **maintain** a compiled snapshot under
  churn: a :class:`DeltaRecorder` captures join/leave/crash/repair mutations
  from the object graph and a :class:`DeltaSnapshot` applies them as
  incremental array updates (slack-capacity CSR edits, liveness mask flips,
  vectorized ring rewrites), so churn sweeps never pay a full recompile.

Coverage and the equivalence contract
-------------------------------------
The fastpath engine covers greedy routing as analysed in Sections 2 and 4 and
evaluated under node failures in Section 6 of the paper, for both the
two-sided and one-sided routing modes and **all three** Section-6 recovery
strategies (terminate, random re-route, backtracking).  Within that envelope
it is hop-for-hop identical to the scalar
:class:`~repro.core.routing.GreedyRouter` (same paths, same hop counts, same
failure verdicts, same detour draws and backtrack moves) — asserted by
``tests/property/test_property_fastpath.py``.  Byzantine behaviour and the
maintenance/DHT layers remain object-engine only, as do graphs embedded in
spaces the snapshot compiler does not support; :func:`select_engine` and the
experiment harness arbitrate the fallback.

The standard experimental network can additionally be built straight into a
snapshot — :func:`build_snapshot` samples every node's long links in one
batched draw and assembles the CSR arrays without materialising any
``OverlayGraph``/``OverlayNode`` objects, bit-identical to the object build
at a fixed seed.

Quickstart
----------
>>> from repro.core.builder import build_ideal_network
>>> from repro.fastpath import compile_snapshot, BatchGreedyRouter
>>> graph = build_ideal_network(1024, seed=3).graph
>>> router = BatchGreedyRouter(compile_snapshot(graph))
>>> result = router.route_batch([1, 2, 3], [900, 700, 500])
>>> bool(result.success.all())
True
"""

from __future__ import annotations

from repro.core.routing import RecoveryStrategy
from repro.fastpath.batch_router import (
    FAILURE_CODES,
    BatchGreedyRouter,
    BatchRouteResult,
)
from repro.fastpath.builder import build_snapshot
from repro.fastpath.delta import DeltaRecorder, DeltaSnapshot, SnapshotDelta
from repro.fastpath.dtypes import (
    SNAPSHOT_CONTRACT,
    expected_snapshot_dtypes,
    indptr_dtype,
    label_dtype,
    snapshot_nbytes,
)
from repro.fastpath.failures import apply_node_failures, sample_node_failures
from repro.fastpath.shm import ArenaSpec, SnapshotArena
from repro.fastpath.snapcache import (
    cached_attach,
    cached_build_snapshot,
    snapshot_cache_clear,
    snapshot_cache_stats,
)
from repro.fastpath.snapshot import FastpathSnapshot, compile_snapshot

__all__ = [
    "FastpathSnapshot",
    "compile_snapshot",
    "build_snapshot",
    "ArenaSpec",
    "SnapshotArena",
    "cached_attach",
    "cached_build_snapshot",
    "snapshot_cache_clear",
    "snapshot_cache_stats",
    "SNAPSHOT_CONTRACT",
    "label_dtype",
    "indptr_dtype",
    "expected_snapshot_dtypes",
    "snapshot_nbytes",
    "BatchGreedyRouter",
    "BatchRouteResult",
    "FAILURE_CODES",
    "SnapshotDelta",
    "DeltaRecorder",
    "DeltaSnapshot",
    "apply_node_failures",
    "sample_node_failures",
    "ENGINES",
    "FASTPATH_RECOVERIES",
    "supports_recovery",
    "select_engine",
]

#: Engine names accepted by the experiment harness.
ENGINES = ("object", "fastpath")

#: Recovery strategies the batched engine implements — since the vectorized
#: recovery work, all three Section-6 strategies.
FASTPATH_RECOVERIES = frozenset(
    {
        RecoveryStrategy.TERMINATE,
        RecoveryStrategy.RANDOM_REROUTE,
        RecoveryStrategy.BACKTRACK,
    }
)


def supports_recovery(recovery: RecoveryStrategy) -> bool:
    """Return ``True`` when the fastpath engine implements ``recovery``."""
    return recovery in FASTPATH_RECOVERIES


def select_engine(engine: str, recovery: RecoveryStrategy) -> str:
    """Validate an engine request and resolve the fastpath fallback rule.

    Returns ``"fastpath"`` when it was requested and the recovery strategy is
    fastpath-supported (today: every strategy); a request outside the
    envelope falls back to ``"object"`` rather than failing, so sweeps that
    mix configurations keep working.  Fallbacks for reasons this predicate
    cannot see (e.g. a graph embedded in an unsupported metric space) are
    handled — and warned about — by
    :func:`repro.experiments.runner.route_pairs_with_engine`.

    Raises
    ------
    ValueError
        If ``engine`` is not one of :data:`ENGINES`.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "fastpath" and supports_recovery(recovery):
        return "fastpath"
    return "object"

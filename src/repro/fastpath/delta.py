"""Incremental snapshot deltas: churn without full recompiles.

The batch engine (PRs 1/3/4) routes over frozen :class:`FastpathSnapshot`
arrays, so every maintenance or churn experiment used to pay a full O(n)
Python recompile per event batch — exactly the cost the paper argues random
overlays avoid ("most random structures require less work to maintain their
much weaker invariants").  This module makes the *repair path* array-native:

* :class:`SnapshotDelta` — an ordered batch of overlay mutations
  (join/leave/crash/repair expressed as node, liveness, ring-pointer, and
  long-link operations);
* :class:`DeltaRecorder` — an observer attached to an
  :class:`~repro.core.graph.OverlayGraph` that captures every mutation the
  construction heuristic, failure models, and maintenance daemon perform;
* :class:`DeltaSnapshot` — a mutable, array-backed mirror of the overlay
  that applies deltas with slack-capacity CSR slabs (edge insertions land in
  per-node spare slots; periodic compaction reclaims orphaned rows), flips
  liveness as mask updates, rewrites ring pointers as vectorized scatters,
  and :meth:`~DeltaSnapshot.snapshot`\\ s back into a frozen
  :class:`FastpathSnapshot` on demand.

Parity contract
---------------
After applying any recorded event sequence, ``delta.snapshot()`` is
**field-identical** to a fresh ``compile_snapshot(graph)`` of the mutated
object graph: same labels, same alive mask, same CSR arrays entry for entry
(the per-row section order — short links, long links in creation order, then
deduplicated incoming links — is maintained incrementally).  The contract is
property-tested across randomized join/leave/crash/repair sequences in
``tests/property/test_property_delta.py``, for the paper's own overlay and —
via the liveness tier — for every baseline Overlay protocol.

Two tiers
---------
* **Structural tier** (:meth:`DeltaSnapshot.from_graph`) — for
  :class:`~repro.core.graph.OverlayGraph`-backed overlays in one-dimensional
  spaces (the paper's networks): supports the full event vocabulary.
* **Liveness tier** (:meth:`DeltaSnapshot.from_snapshot` /
  :meth:`DeltaSnapshot.from_overlay`) — for *any* compiled snapshot,
  including the baseline protocol overlays (Chord, CAN, Kleinberg,
  Plaxton): crash/revive flips, per-edge liveness flips
  (``OP_LINK_FAIL``/``OP_LINK_REVIVE`` applied as mask scatters onto the
  CSR validity arrays), and — when constructed :meth:`from_overlay` — bulk
  table rebuilds (``OP_REBUILD``, e.g. Chord's ``stabilize``) expressed as
  one recompile delta op instead of an out-of-band recompile.

Per-*link* failure flips (``LinkFailureModel``, fault schedules) are part of
the vocabulary since PR 8: the structural tier tracks every link's alive
flag in its slabs, and the liveness tier scatters them onto an
``edge_alive`` mask, so link-failure experiments batch exactly like node
churn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.core.graph import OverlayGraph
from repro.core.metric import LineMetric, RingMetric
from repro.fastpath.dtypes import label_dtype, narrow_indptr, narrow_labels
from repro.fastpath.snapshot import FastpathSnapshot
from repro.telemetry.core import current as telemetry_current

__all__ = [
    "SnapshotDelta",
    "DeltaRecorder",
    "DeltaSnapshot",
    "assert_snapshots_identical",
]


def assert_snapshots_identical(
    actual: FastpathSnapshot, expected: FastpathSnapshot, context: str = ""
) -> None:
    """Assert the delta layer's parity contract: field identity.

    Every scalar field and every array of ``actual`` must equal the
    corresponding field of ``expected`` (values *and* dtypes).  Used by the
    property tests, the churn benchmark, and the CI smoke job to pin
    delta-updated snapshots against fresh compiles.
    """
    prefix = f"{context}: " if context else ""
    if actual.kind != expected.kind:
        raise AssertionError(f"{prefix}kind {actual.kind!r} != {expected.kind!r}")
    if actual.space_size != expected.space_size:
        raise AssertionError(
            f"{prefix}space_size {actual.space_size} != {expected.space_size}"
        )
    if actual.symmetric_neighbors != expected.symmetric_neighbors:
        raise AssertionError(f"{prefix}symmetric_neighbors flags differ")
    if actual.policy != expected.policy:
        raise AssertionError(f"{prefix}policies differ")
    for name in ("labels", "alive", "neighbor_indptr", "neighbor_indices"):
        left = getattr(actual, name)
        right = getattr(expected, name)
        if left.dtype != right.dtype:
            raise AssertionError(
                f"{prefix}{name} dtype {left.dtype} != {right.dtype}"
            )
        if not np.array_equal(left, right):
            raise AssertionError(f"{prefix}{name} arrays differ")
    if (expected.edge_class is None) != (actual.edge_class is None) or (
        expected.edge_class is not None
        and not np.array_equal(actual.edge_class, expected.edge_class)
    ):
        raise AssertionError(f"{prefix}edge_class differs")
    if (expected.edge_alive is None) != (actual.edge_alive is None) or (
        expected.edge_alive is not None
        and (
            actual.edge_alive.dtype != expected.edge_alive.dtype
            or not np.array_equal(actual.edge_alive, expected.edge_alive)
        )
    ):
        raise AssertionError(f"{prefix}edge_alive differs")


# Op codes (first tuple element of every recorded operation).
OP_ADD_NODE = 0  # (op, label)
OP_REMOVE_NODE = 1  # (op, label)
OP_FAIL = 2  # (op, label)
OP_REVIVE = 3  # (op, label)
OP_SET_RING = 4  # (op, label, left, right)   (-1 encodes None)
OP_ADD_LINK = 5  # (op, source, target)
OP_REMOVE_LINK = 6  # (op, source, target)
OP_REDIRECT_LINK = 7  # (op, source, old_target, new_target)
OP_LINK_FAIL = 8  # (op, holder, target)
OP_LINK_REVIVE = 9  # (op, holder, target)
OP_REBUILD = 10  # (op,)   — bulk table rebuild (e.g. Chord stabilize)

_LIVENESS_OPS = frozenset({OP_FAIL, OP_REVIVE})

_OP_NAMES = {
    OP_ADD_NODE: "add_node",
    OP_REMOVE_NODE: "remove_node",
    OP_FAIL: "fail",
    OP_REVIVE: "revive",
    OP_SET_RING: "set_ring",
    OP_ADD_LINK: "add_link",
    OP_REMOVE_LINK: "remove_link",
    OP_REDIRECT_LINK: "redirect_link",
    OP_LINK_FAIL: "link_fail",
    OP_LINK_REVIVE: "link_revive",
    OP_REBUILD: "rebuild",
}


@dataclass
class SnapshotDelta:
    """An ordered batch of overlay mutations.

    Operations are plain tuples (op code first) in the exact order the object
    graph performed them — order matters when one row is touched repeatedly
    within a batch.  A delta whose every op is a liveness flip
    (:attr:`liveness_only`) can be applied to a snapshot without touching the
    adjacency arrays at all, which is what lets the batch router keep its
    dense matrices across crash-only rounds.
    """

    ops: list[tuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    @property
    def liveness_only(self) -> bool:
        """Whether the batch contains only crash/revive flips (no structure)."""
        return all(op[0] in _LIVENESS_OPS for op in self.ops)

    def counts(self) -> dict[str, int]:
        """Per-kind op counts, for logs and benchmark reports."""
        summary: dict[str, int] = {}
        for op in self.ops:
            name = _OP_NAMES[op[0]]
            summary[name] = summary.get(name, 0) + 1
        return summary


class DeltaRecorder:
    """Observer that turns :class:`OverlayGraph` mutations into a delta.

    Attach with :meth:`attach` *before* the events you want to capture;
    every construction, failure-injection, and maintenance call that goes
    through the graph's mutator methods is recorded.  :meth:`drain` hands
    back the accumulated :class:`SnapshotDelta` and starts a fresh batch, so
    a churn loop records one delta per round.
    """

    def __init__(self, graph: OverlayGraph) -> None:
        self.graph = graph
        self._ops: list[tuple] = []

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def attach(cls, graph: OverlayGraph) -> "DeltaRecorder":
        """Create a recorder and register it as the graph's observer.

        Raises
        ------
        ValueError
            If the graph already has an observer attached.
        """
        recorder = cls(graph)
        graph.set_observer(recorder)
        return recorder

    def detach(self) -> None:
        """Unregister from the graph (recorded ops are kept until drained)."""
        if self.graph.observer is self:
            self.graph.set_observer(None)

    def drain(self) -> SnapshotDelta:
        """Return the mutations recorded since the last drain, then reset."""
        delta = SnapshotDelta(ops=self._ops)
        self._ops = []
        return delta

    def __len__(self) -> int:
        return len(self._ops)

    # -- observer interface (called by OverlayGraph mutators) ----------------

    def on_add_node(self, label: int) -> None:
        self._ops.append((OP_ADD_NODE, label))

    def on_remove_node(self, label: int) -> None:
        self._ops.append((OP_REMOVE_NODE, label))

    def on_fail_node(self, label: int) -> None:
        self._ops.append((OP_FAIL, label))

    def on_revive_node(self, label: int) -> None:
        self._ops.append((OP_REVIVE, label))

    def on_set_immediate_neighbors(
        self, label: int, left: int | None, right: int | None
    ) -> None:
        self._ops.append(
            (OP_SET_RING, label, -1 if left is None else left, -1 if right is None else right)
        )

    def on_add_long_link(self, source: int, target: int) -> None:
        self._ops.append((OP_ADD_LINK, source, target))

    def on_remove_long_link(self, source: int, target: int, alive: bool) -> None:
        self._ops.append((OP_REMOVE_LINK, source, target))

    def on_redirect_long_link(self, source: int, old_target: int, new_target: int) -> None:
        self._ops.append((OP_REDIRECT_LINK, source, old_target, new_target))

    def on_fail_long_link(self, source: int, target: int) -> None:
        self._ops.append((OP_LINK_FAIL, source, target))

    def on_revive_long_link(self, source: int, target: int) -> None:
        self._ops.append((OP_LINK_REVIVE, source, target))


class _Slab:
    """Per-node variable-length integer rows with slack capacity.

    A CSR-with-spare-slots store: row ``i`` owns ``caps[i]`` contiguous slots
    of ``data`` starting at ``offsets[i]``, of which the first ``counts[i]``
    are live.  Appends land in the spare slots; a full row is relocated to
    the tail with doubled capacity (the old slots become garbage), and when
    garbage exceeds half the live payload the slab compacts itself — the
    "periodic compaction" half of the insertion strategy.

    Every entry carries a parallel boolean *flag* — the link's alive bit.
    Rows keep dead entries in place (so link revival restores the original
    slot order); :meth:`gather` filters to flag-``True`` entries, which is
    what makes the materialized rows match a fresh compile's
    live-links-only adjacency.

    The bookkeeping vectors are plain Python lists: the slab's mutation path
    is executed once per recorded op, and list indexing is several times
    cheaper than NumPy scalar access; only the payload lives in flat NumPy
    arrays, which is what the vectorized materialization gathers from.
    """

    __slots__ = ("offsets", "counts", "caps", "data", "flags", "_tail", "_orphaned")

    #: Spare slots granted to every row at build/compaction time.
    SLACK = 4

    def __init__(
        self,
        rows: list[list[int]],
        row_flags: list[list[bool]] | None = None,
        dtype: np.dtype | type = np.int64,
    ) -> None:
        n = len(rows)
        counts = [len(row) for row in rows]
        caps = [count + self.SLACK for count in counts]
        offsets = [0] * n
        running = 0
        for i in range(n):
            offsets[i] = running
            running += caps[i]
        # The payload dtype is the caller's contract (label_dtype for mirror
        # slabs); relocation and compaction inherit it instead of silently
        # re-widening to int64.
        data = np.zeros(running + max(64, running // 4), dtype=dtype)
        flags = np.ones(data.size, dtype=bool)
        for i, row in enumerate(rows):
            if row:
                data[offsets[i] : offsets[i] + len(row)] = row
                if row_flags is not None:
                    flags[offsets[i] : offsets[i] + len(row)] = row_flags[i]
        self.offsets = offsets
        self.counts = counts
        self.caps = caps
        self.data = data
        self.flags = flags
        self._tail = running
        self._orphaned = 0

    # -- queries -------------------------------------------------------------

    def row(self, i: int) -> np.ndarray:
        """All entries of row ``i``, dead included (a view; do not mutate)."""
        off = self.offsets[i]
        return self.data[off : off + self.counts[i]]

    def row_flags(self, i: int) -> np.ndarray:
        """The alive flags of row ``i``, parallel to :meth:`row`."""
        off = self.offsets[i]
        return self.flags[off : off + self.counts[i]]

    def total_count(self) -> int:
        """Total number of entries (dead included) across all rows."""
        return sum(self.counts)

    def gather(self, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten the *live* rows of ``labels`` into (values, flat row ids, counts).

        Dead-flagged entries are skipped, so the gathered rows equal what
        ``compile_snapshot`` emits for the mirrored overlay.
        """
        counts = np.fromiter(
            (self.counts[label] for label in labels), dtype=np.int64, count=labels.size
        )
        offsets = np.fromiter(
            (self.offsets[label] for label in labels), dtype=np.int64, count=labels.size
        )
        rows = np.repeat(np.arange(labels.size, dtype=np.int64), counts)
        positions = np.repeat(offsets, counts) + _within(counts)
        live = self.flags[positions]
        rows = rows[live]
        counts = np.bincount(rows, minlength=labels.size).astype(np.int64)
        return self.data[positions[live]], rows, counts

    # -- mutations -----------------------------------------------------------

    def append(self, i: int, value: int, alive: bool = True) -> None:
        """Append ``value`` to row ``i``, relocating the row when full."""
        count = self.counts[i]
        if count == self.caps[i]:
            self._relocate(i, count)
        slot = self.offsets[i] + count
        self.data[slot] = value
        self.flags[slot] = alive
        self.counts[i] = count + 1

    def remove_first(self, i: int, value: int, want: bool | None = None) -> bool:
        """Remove the first occurrence of ``value`` from row ``i``; return its flag.

        ``want`` restricts the match to entries whose flag equals it
        (``None`` matches any flag) — link removal must drop the entry in the
        same liveness state on both slab sides to keep them paired.

        Raises
        ------
        ValueError
            If no matching entry is present — the mirror has diverged from
            the graph, which is always a bug worth failing loudly on.
        """
        off = self.offsets[i]
        count = self.counts[i]
        seg = self.data[off : off + count]
        fseg = self.flags[off : off + count]
        pos = self._find(seg, fseg, value, want, i)
        flag = bool(fseg[pos])
        seg[pos : count - 1] = seg[pos + 1 : count]
        fseg[pos : count - 1] = fseg[pos + 1 : count]
        self.counts[i] = count - 1
        return flag

    def remove_all(self, i: int, value: int) -> int:
        """Remove every occurrence of ``value`` from row ``i``; return the count."""
        off = self.offsets[i]
        count = self.counts[i]
        seg = self.data[off : off + count]
        keep = seg != value
        kept = seg[keep]
        removed = count - kept.size
        if removed:
            self.data[off : off + kept.size] = kept
            self.flags[off : off + kept.size] = self.flags[off : off + count][keep]
            self.counts[i] = int(kept.size)
        return removed

    def replace_first(self, i: int, old: int, new: int) -> None:
        """Replace the first *live* occurrence of ``old`` in row ``i`` with ``new``."""
        off = self.offsets[i]
        count = self.counts[i]
        seg = self.data[off : off + count]
        fseg = self.flags[off : off + count]
        pos = self._find(seg, fseg, old, True, i)
        seg[pos] = new

    def set_flag_first(self, i: int, value: int, want: bool, new: bool) -> None:
        """Flip the flag of the first occurrence of ``value`` with flag ``want``."""
        off = self.offsets[i]
        count = self.counts[i]
        seg = self.data[off : off + count]
        fseg = self.flags[off : off + count]
        pos = self._find(seg, fseg, value, want, i)
        fseg[pos] = new

    def clear_row(self, i: int) -> None:
        """Empty row ``i`` (its capacity stays reserved for reuse)."""
        self.counts[i] = 0

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _find(
        seg: np.ndarray, fseg: np.ndarray, value: int, want: bool | None, i: int
    ) -> int:
        """First position of ``value`` (with flag ``want`` unless ``None``)."""
        if want is None:
            hits = np.flatnonzero(seg == value)
        else:
            hits = np.flatnonzero((seg == value) & (fseg == want))
        if not hits.size:
            raise ValueError(
                f"slab row {i} has no entry {value}"
                f"{'' if want is None else f' with alive={want}'}; "
                "delta mirror diverged"
            )
        return int(hits[0])

    def _relocate(self, i: int, count: int) -> None:
        """Move a full row to the tail with doubled capacity."""
        new_cap = max(2 * count, count + self.SLACK)
        if self._tail + new_cap > self.data.size:
            size = max(2 * self.data.size, self._tail + new_cap + 64)
            grown = np.zeros(size, dtype=self.data.dtype)
            grown[: self._tail] = self.data[: self._tail]
            grown_flags = np.ones(size, dtype=bool)
            grown_flags[: self._tail] = self.flags[: self._tail]
            self.data = grown
            self.flags = grown_flags
        old_off = self.offsets[i]
        self.data[self._tail : self._tail + count] = self.data[old_off : old_off + count]
        self.flags[self._tail : self._tail + count] = self.flags[old_off : old_off + count]
        self.offsets[i] = self._tail
        self._orphaned += self.caps[i]
        self.caps[i] = new_cap
        self._tail += new_cap
        if self._orphaned * 2 > self._tail - self._orphaned:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the slab contiguously with fresh slack everywhere."""
        # repro: allow[RPR005] — rare compaction; _Slab wants list-of-lists
        rows = [self.row(i).tolist() for i in range(len(self.counts))]
        # repro: allow[RPR005] — rare compaction; _Slab wants list-of-lists
        row_flags = [self.row_flags(i).tolist() for i in range(len(self.counts))]
        rebuilt = _Slab(rows, row_flags, dtype=self.data.dtype)
        self.offsets = rebuilt.offsets
        self.counts = rebuilt.counts
        self.caps = rebuilt.caps
        self.data = rebuilt.data
        self.flags = rebuilt.flags
        self._tail = rebuilt._tail
        self._orphaned = 0


class DeltaSnapshot:
    """A mutable, array-backed overlay mirror that snapshots on demand.

    Create with :meth:`from_graph` (structural tier: full churn vocabulary)
    or :meth:`from_snapshot` (liveness tier: crash/revive on any compiled
    overlay).  Apply recorded :class:`SnapshotDelta` batches with
    :meth:`apply`, then call :meth:`snapshot` for a frozen
    :class:`FastpathSnapshot` field-identical to a fresh compile of the
    mutated overlay.

    Lifecycle (the intended churn loop)::

        recorder = DeltaRecorder.attach(network.graph)
        mirror = DeltaSnapshot.from_graph(network.graph)
        router = BatchGreedyRouter(mirror.snapshot())
        for round in rounds:
            ...joins / leaves / crashes / daemon.repair_all_batched()...
            mirror.apply(recorder.drain())
            router.rebase(mirror.snapshot())   # per-delta cache invalidation
            router.route_pairs(pairs)

    Liveness-only deltas (pure crash rounds) re-use the previously
    materialized adjacency via
    :meth:`FastpathSnapshot.with_alive`, so the router's dense matrices
    survive them untouched.
    """

    def __init__(self) -> None:
        # Liveness tier state.
        self._base: FastpathSnapshot | None = None
        self._mask_alive: np.ndarray | None = None
        # Per-edge liveness mask aligned with the base CSR (lazily created on
        # the first link flip; None means every edge is alive).
        self._mask_edge_alive: np.ndarray | None = None
        # The overlay behind a liveness-tier mirror (set by from_overlay);
        # OP_REBUILD recompiles it in place of an out-of-band recompile.
        self._source = None
        # Structural tier state (label-indexed arrays of size space_size).
        self.kind = ""
        self.space_size = 0
        self.symmetric_neighbors = True
        self._occupied: np.ndarray | None = None
        self._alive: np.ndarray | None = None
        self._left: np.ndarray | None = None
        self._right: np.ndarray | None = None
        self._long: _Slab | None = None
        self._incoming: _Slab | None = None
        # Materialization cache: re-used verbatim (modulo the alive mask)
        # until a structural op lands.  ``_dirty`` tracks the labels whose
        # compiled row may have changed since the last materialization, so
        # the next one can splice unchanged rows straight out of the
        # previous arrays instead of re-deduplicating every row.
        self._cached: FastpathSnapshot | None = None
        self._structure_dirty = True
        self._dirty: set[int] = set()
        self._pending_clears: set[int] = set()
        # Previous materialization, label-addressed (for row splicing).
        self._prev_flat: np.ndarray | None = None
        self._prev_start: np.ndarray | None = None
        self._prev_count: np.ndarray | None = None
        self._prev_present: np.ndarray | None = None
        # Which materialization strategy the last snapshot() call took
        # (reported to telemetry as refresh.strategy.<name>).
        self._last_strategy = "full_rebuild"

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(
        cls, graph: OverlayGraph, symmetric_neighbors: bool = True
    ) -> "DeltaSnapshot":
        """Mirror an :class:`OverlayGraph` for full structural churn.

        The one-time cost equals a snapshot compile (one pass over the object
        graph); every subsequent event batch is an incremental
        :meth:`apply`.  Dead-flagged long links are mirrored with their
        liveness flags and excluded from materialized rows, exactly as
        :func:`~repro.fastpath.snapshot.compile_snapshot` excludes them.
        """
        space = graph.space
        if isinstance(space, RingMetric):
            kind = "ring"
        elif isinstance(space, LineMetric):
            kind = "line"
        else:
            raise NotImplementedError(
                "structural snapshot deltas require a one-dimensional space "
                f"(RingMetric or LineMetric), got {type(space).__name__}"
            )
        mirror = cls()
        mirror.kind = kind
        mirror.space_size = space.size()
        mirror.symmetric_neighbors = symmetric_neighbors
        n = mirror.space_size
        pointer_dtype = label_dtype(n)
        mirror._occupied = np.zeros(n, dtype=bool)
        mirror._alive = np.zeros(n, dtype=bool)
        mirror._left = np.full(n, -1, dtype=pointer_dtype)
        mirror._right = np.full(n, -1, dtype=pointer_dtype)
        long_rows: list[list[int]] = [[] for _ in range(n)]
        long_flags: list[list[bool]] = [[] for _ in range(n)]
        incoming_rows: list[list[int]] = [[] for _ in range(n)]
        incoming_flags: list[list[bool]] = [[] for _ in range(n)]
        for node in graph.nodes():
            label = node.label
            mirror._occupied[label] = True
            mirror._alive[label] = node.alive
            if node.left is not None:
                mirror._left[label] = node.left
            if node.right is not None:
                mirror._right[label] = node.right
            long_rows[label] = [link.target for link in node.long_links]
            long_flags[label] = [link.alive for link in node.long_links]
            # The incoming slab replicates the graph's reverse-index *order*
            # (link creation order), which is the compiled row order.
            entries = graph.incoming_entries(label)
            incoming_rows[label] = [source for source, _alive in entries]
            incoming_flags[label] = [alive for _source, alive in entries]
        mirror._long = _Slab(long_rows, long_flags, dtype=pointer_dtype)
        mirror._incoming = _Slab(incoming_rows, incoming_flags, dtype=pointer_dtype)
        return mirror

    @classmethod
    def from_snapshot(cls, snapshot: FastpathSnapshot) -> "DeltaSnapshot":
        """Mirror any compiled snapshot for liveness deltas.

        Works for every Overlay protocol (the baselines included): crash and
        revive events flip the alive mask, link fail/revive events flip the
        per-edge mask; other structural events raise (use
        :meth:`from_overlay` when the overlay also rebuilds its tables).
        """
        mirror = cls()
        mirror._base = snapshot
        mirror._mask_alive = snapshot.alive.copy()
        mirror.kind = snapshot.kind
        mirror.space_size = snapshot.space_size
        mirror.symmetric_neighbors = snapshot.symmetric_neighbors
        mirror._structure_dirty = False
        if snapshot.edge_alive is not None:
            mirror._mask_edge_alive = snapshot.edge_alive.copy()
        return mirror

    @classmethod
    def from_overlay(cls, overlay: Any) -> "DeltaSnapshot":
        """Mirror a table-based Overlay (liveness tier + ``OP_REBUILD``).

        Like :meth:`from_snapshot` of ``overlay.compile_snapshot()``, but the
        mirror keeps a handle on the overlay so ``OP_REBUILD`` deltas (bulk
        table rebuilds such as Chord's ``stabilize``) can recompile it as
        part of :meth:`apply` instead of forcing an out-of-band recompile.
        """
        mirror = cls.from_snapshot(overlay.compile_snapshot())
        mirror._source = overlay
        return mirror

    @property
    def structural(self) -> bool:
        """Whether this mirror supports the full join/leave/crash vocabulary."""
        return self._base is None

    # ------------------------------------------------------------------ #
    # Delta application
    # ------------------------------------------------------------------ #

    def apply(self, delta: SnapshotDelta) -> None:
        """Apply one recorded mutation batch, in recorded order.

        Cost scales with the batch, not the overlay: liveness flips are mask
        writes, link edits touch only their slab rows (into spare slots),
        ring rewrites are pointer stores, and the per-label dirty set feeds
        the splicing materialization.  Pointer invalidation for departed
        vertices is deferred and flushed as one vectorized pass at the end
        of the batch.
        """
        tel = telemetry_current()
        if tel is not None and delta.ops:
            for kind, count in delta.counts().items():
                # The link-liveness kinds are registered as literal names (the
                # registry's placeholder segments never match literals).
                if kind == "link_fail":
                    tel.count("refresh.ops.link_fail", count)
                elif kind == "link_revive":
                    tel.count("refresh.ops.link_revive", count)
                else:
                    tel.count(f"refresh.ops.{kind}", count)
        if not self.structural:
            self._apply_mask(delta)
            return
        occupied = self._occupied
        alive = self._alive
        left = self._left
        right = self._right
        long_slab = self._long
        in_slab = self._incoming
        dirty = self._dirty
        dirty_add = dirty.add
        long_append, long_remove = long_slab.append, long_slab.remove_first
        in_append, in_remove = in_slab.append, in_slab.remove_first
        structural = False
        for op in delta.ops:
            code = op[0]
            if code == OP_FAIL:
                alive[op[1]] = False
            elif code == OP_REVIVE:
                alive[op[1]] = True
            elif code == OP_SET_RING:
                left[op[1]] = op[2]
                right[op[1]] = op[3]
                dirty_add(op[1])
                structural = True
            elif code == OP_ADD_LINK:
                long_append(op[1], op[2])
                in_append(op[2], op[1])
                dirty_add(op[1])
                dirty_add(op[2])
                structural = True
            elif code == OP_REMOVE_LINK:
                # Drop the entry in whatever liveness state it is in, and the
                # paired incoming entry in the *same* state, so parallel
                # links of mixed liveness stay correctly paired.
                flag = long_remove(op[1], op[2], None)
                in_remove(op[2], op[1], flag)
                dirty_add(op[1])
                dirty_add(op[2])
                structural = True
            elif code == OP_REDIRECT_LINK:
                long_slab.replace_first(op[1], op[2], op[3])
                in_remove(op[2], op[1], True)
                in_append(op[3], op[1])
                dirty_add(op[1])
                dirty_add(op[2])
                dirty_add(op[3])
                structural = True
            elif code == OP_LINK_FAIL:
                long_slab.set_flag_first(op[1], op[2], True, False)
                in_slab.set_flag_first(op[2], op[1], True, False)
                dirty_add(op[1])
                dirty_add(op[2])
                structural = True
            elif code == OP_LINK_REVIVE:
                long_slab.set_flag_first(op[1], op[2], False, True)
                in_slab.set_flag_first(op[2], op[1], False, True)
                dirty_add(op[1])
                dirty_add(op[2])
                structural = True
            elif code == OP_ADD_NODE:
                label = op[1]
                if label in self._pending_clears:
                    # The label departed earlier in this very batch; clear
                    # the stale pointers at it before it is reborn so the
                    # deferred bulk flush cannot wipe its new ring wiring.
                    self._flush_pointer_clears({label})
                    self._pending_clears.discard(label)
                occupied[label] = True
                alive[label] = True
                left[label] = -1
                right[label] = -1
                long_slab.clear_row(label)
                in_slab.clear_row(label)
                dirty.add(label)
                structural = True
            elif code == OP_REMOVE_NODE:
                self._remove_node(op[1])
                structural = True
            elif code == OP_REBUILD:
                raise NotImplementedError(
                    "structural-tier DeltaSnapshot has no table rebuild; "
                    "OP_REBUILD applies to Overlay-backed liveness mirrors"
                )
            else:  # pragma: no cover - recorder and apply share the op set
                raise ValueError(f"unknown delta op code {code!r}")
        if self._pending_clears:
            self._flush_pointer_clears(self._pending_clears)
            self._pending_clears = set()
        if structural:
            self._structure_dirty = True

    def _apply_mask(self, delta: SnapshotDelta) -> None:
        """Liveness-tier application: node flips, edge flips, and rebuilds.

        Crash/revive flip the node mask; ``OP_LINK_FAIL``/``OP_LINK_REVIVE``
        scatter onto a per-edge mask aligned with the base CSR (every
        ``holder -> target`` entry flips — parallel links share their fate,
        matching the table-based overlays' per-pair edge state);
        ``OP_REBUILD`` recompiles the source overlay (``from_overlay``
        mirrors only).  Other structural ops still require a recompile.
        """
        for op in delta.ops:
            code = op[0]
            if code == OP_FAIL:
                self._mask_alive[self._base.indices_of([op[1]])[0]] = False
            elif code == OP_REVIVE:
                self._mask_alive[self._base.indices_of([op[1]])[0]] = True
            elif code == OP_LINK_FAIL or code == OP_LINK_REVIVE:
                holder, target = self._base.indices_of([op[1], op[2]])
                indptr = self._base.neighbor_indptr
                start, stop = int(indptr[holder]), int(indptr[holder + 1])
                hits = np.flatnonzero(
                    self._base.neighbor_indices[start:stop] == target
                )
                if not hits.size:
                    raise ValueError(
                        f"snapshot row {op[1]} has no edge to {op[2]}; "
                        "delta mirror diverged"
                    )
                self._edge_mask()[start + hits] = code == OP_LINK_REVIVE
            elif code == OP_REBUILD:
                if self._source is None:
                    raise NotImplementedError(
                        "OP_REBUILD needs an overlay-backed mirror; construct "
                        "with DeltaSnapshot.from_overlay(overlay)"
                    )
                self._base = self._source.compile_snapshot()
                self._mask_alive = self._base.alive.copy()
                self._mask_edge_alive = (
                    None
                    if self._base.edge_alive is None
                    else self._base.edge_alive.copy()
                )
            else:
                raise NotImplementedError(
                    f"liveness-tier DeltaSnapshot cannot apply {_OP_NAMES[op[0]]!r}; "
                    "recompile the overlay for structural changes"
                )

    def _edge_mask(self) -> np.ndarray:
        """The per-edge alive mask, created on first use (liveness tier)."""
        if self._mask_edge_alive is None:
            base = self._base.edge_alive
            if base is not None:
                self._mask_edge_alive = base.copy()
            else:
                self._mask_edge_alive = np.ones(
                    self._base.neighbor_indices.shape[0], dtype=bool
                )
        return self._mask_edge_alive

    def crash(self, labels: Iterable[int] | np.ndarray) -> None:
        """Convenience bulk crash (both tiers): flip the labels' alive bits off.

        Mirrors ``overlay.fail_node`` calls made *without* a recorder; do not
        combine with recorded deltas for the same events.
        """
        if self.structural:
            self._alive[np.asarray(labels, dtype=np.int64)] = False
        else:
            self._mask_alive[self._base.indices_of(np.asarray(labels))] = False

    def revive(self, labels: Iterable[int] | np.ndarray) -> None:
        """Convenience bulk revive (both tiers): flip the labels' alive bits on."""
        if self.structural:
            self._alive[np.asarray(labels, dtype=np.int64)] = True
        else:
            self._mask_alive[self._base.indices_of(np.asarray(labels))] = True

    def _remove_node(self, label: int) -> None:
        """Replay :meth:`OverlayGraph.remove_node` against the mirror."""
        long_slab = self._long
        in_slab = self._incoming
        dirty = self._dirty
        # Drop the departing node's outgoing links from the reverse index,
        # each paired with its own liveness state.
        # repro: allow[RPR005] — paired value/flag walk over one slab row
        pairs = zip(long_slab.row(label).tolist(), long_slab.row_flags(label).tolist())
        for target, flag in pairs:
            in_slab.remove_first(target, label, flag)
            dirty.add(target)
        # Drop every link that pointed at the departed node.
        for source in set(in_slab.row(label).tolist()):
            long_slab.remove_all(source, label)
            dirty.add(source)
        long_slab.clear_row(label)
        in_slab.clear_row(label)
        self._occupied[label] = False
        self._alive[label] = False
        dirty.add(label)
        # Stale ring pointers at the departed vertex are cleared exactly as
        # the object graph clears them, but in one vectorized pass at the
        # end of the batch (see apply) rather than per departure.
        self._pending_clears.add(label)

    def _flush_pointer_clears(self, departed: set[int]) -> None:
        """Clear every ring pointer at a departed label (vectorized scan)."""
        targets = np.fromiter(departed, dtype=np.int64, count=len(departed))
        stale_left = np.isin(self._left, targets)
        stale_right = np.isin(self._right, targets)
        self._left[stale_left] = -1
        self._right[stale_right] = -1
        # repro: allow[RPR005] — the dirty set stores Python ints by contract
        self._dirty.update(np.flatnonzero(stale_left | stale_right).tolist())

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #

    def snapshot(self) -> FastpathSnapshot:
        """Freeze the current state into a :class:`FastpathSnapshot`.

        Field-identical to compiling the mirrored overlay from scratch, at a
        cost that scales with what the deltas touched:

        * no structural change since the last call — the cached snapshot is
          re-used via :meth:`FastpathSnapshot.with_alive` (the batch
          router's dense matrices stay warm);
        * a small dirty set — only the touched rows are re-deduplicated;
          every other row is spliced verbatim out of the previous
          materialization's arrays;
        * a large dirty set (or the first call) — one fully vectorized
          rebuild of all rows.

        With telemetry enabled, each call records a ``refresh`` span, the
        strategy taken (``refresh.strategy.liveness_reuse`` /
        ``row_splice`` / ``full_rebuild``), and a ``refresh.ms`` histogram
        sample.
        """
        tel = telemetry_current()
        if tel is None:
            return self._snapshot_impl()
        # repro: allow[RPR001] — timing only reachable with telemetry on
        started = time.perf_counter()
        with tel.span("refresh"):
            snapshot = self._snapshot_impl()
        tel.count(f"refresh.strategy.{self._last_strategy}")
        # repro: allow[RPR001] — timing only reachable with telemetry on
        tel.observe("refresh.ms", (time.perf_counter() - started) * 1e3)
        return snapshot

    def _snapshot_impl(self) -> FastpathSnapshot:
        if not self.structural:
            self._last_strategy = "liveness_reuse"
            snapshot = self._base.with_alive(self._mask_alive)
            if self._mask_edge_alive is not None:
                snapshot = snapshot.with_edge_alive(self._mask_edge_alive)
            return snapshot
        if self._cached is not None and not self._structure_dirty:
            self._last_strategy = "liveness_reuse"
            return self._cached.with_alive(self._alive[self._cached.labels])
        snapshot = self._materialize()
        self._cached = snapshot
        self._structure_dirty = False
        self._dirty = set()
        return snapshot

    def _materialize(self) -> FastpathSnapshot:
        labels = np.flatnonzero(self._occupied).astype(np.int64)
        n = labels.size

        # Splice whenever rebuilding only the dirty rows is cheaper than
        # re-deduplicating everything; the unchanged-row block copy is cheap,
        # so splicing wins until roughly two thirds of the rows are dirty.
        splice = (
            self._prev_present is not None
            and len(self._dirty) * 3 < 2 * n
        )
        self._last_strategy = "row_splice" if splice else "full_rebuild"
        if splice:
            values, counts = self._spliced_rows(labels)
        else:
            values, counts = self._rows_for(labels)
            if values.size and not self._occupied[values].all():
                bad = values[~self._occupied[values]]
                raise ValueError(
                    f"delta mirror links point at non-vertex labels "
                    f"{bad[:5].tolist()}; the mirror diverged from the overlay"
                )

        # Label-addressed copy of this materialization, for the next splice.
        starts = np.zeros(n, dtype=np.int64)
        if n:
            np.cumsum(counts[:-1], out=starts[1:])
        prev_start = np.zeros(self.space_size, dtype=np.int64)
        prev_count = np.zeros(self.space_size, dtype=np.int64)
        prev_start[labels] = starts
        prev_count[labels] = counts
        self._prev_flat = values
        self._prev_start = prev_start
        self._prev_count = prev_count
        self._prev_present = self._occupied.copy()

        # Translate neighbour labels to vertex indices by direct addressing
        # (every value is an occupied label, checked above / by splicing).
        position = np.cumsum(self._occupied, dtype=np.int32)
        position -= 1
        indices = position[values]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])

        # Materialization arithmetic stays int64 (cumsum offsets, direct
        # addressing); storage narrows to the contract dtypes at the boundary,
        # matching compile_snapshot so the parity contract covers dtypes too.
        return FastpathSnapshot(
            kind=self.kind,
            space_size=self.space_size,
            labels=narrow_labels(labels, self.space_size),
            alive=self._alive[labels],
            neighbor_indptr=narrow_indptr(indptr),
            neighbor_indices=indices,
            symmetric_neighbors=self.symmetric_neighbors,
        )

    def _spliced_rows(self, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Merge rebuilt dirty rows with unchanged rows of the previous pass."""
        occupied = self._occupied
        dirty_mask = np.zeros(self.space_size, dtype=bool)
        if self._dirty:
            dirty_mask[np.fromiter(self._dirty, dtype=np.int64, count=len(self._dirty))] = True
        # Labels that appeared since the previous materialization are always
        # rebuilt, whatever the dirty set says.
        dirty_mask |= occupied & ~self._prev_present
        dirty_mask &= occupied

        dirty_labels = np.flatnonzero(dirty_mask).astype(np.int64)
        dirty_values, dirty_counts = self._rows_for(dirty_labels)
        if dirty_values.size and not occupied[dirty_values].all():
            bad = dirty_values[~occupied[dirty_values]]
            raise ValueError(
                f"delta mirror links point at non-vertex labels "
                f"{bad[:5].tolist()}; the mirror diverged from the overlay"
            )

        is_dirty = dirty_mask[labels]
        counts = np.empty(labels.size, dtype=np.int64)
        counts[is_dirty] = dirty_counts
        clean_labels = labels[~is_dirty]
        clean_counts = self._prev_count[clean_labels]
        counts[~is_dirty] = clean_counts

        starts = np.zeros(labels.size, dtype=np.int64)
        if labels.size:
            np.cumsum(counts[:-1], out=starts[1:])
        values = np.empty(int(counts.sum()), dtype=np.int32)

        # Dirty rows: scatter the rebuilt entries to their final positions.
        dirty_rows = np.flatnonzero(is_dirty)
        positions = np.repeat(starts[dirty_rows], dirty_counts) + _within(dirty_counts)
        values[positions] = dirty_values
        # Clean rows: block-copy straight out of the previous flat array.
        # Source and destination positions share one running index; only the
        # per-row shifts differ, so each needs a single expansion.
        clean_rows = np.flatnonzero(~is_dirty)
        prev_starts = self._prev_start[clean_labels]
        clean_total = int(clean_counts.sum())
        clean_row_starts = np.cumsum(clean_counts) - clean_counts
        running = np.arange(clean_total, dtype=np.int32)
        sources = running + np.repeat(
            (prev_starts - clean_row_starts).astype(np.int32), clean_counts
        )
        positions = running + np.repeat(
            (starts[clean_rows] - clean_row_starts).astype(np.int32), clean_counts
        )
        values[positions] = self._prev_flat[sources]
        return values, counts

    def _rows_for(self, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Compile the rows of ``labels``: per-row S + L + deduplicated I.

        Returns the flattened neighbour *labels* and the per-row counts.
        Fully vectorized; the incoming dedup uses two stable integer
        argsorts (radix sorts in NumPy) instead of a general lexsort.
        """
        n = labels.size
        row_ids = np.arange(n, dtype=np.int64)

        # Section S: the short links, left first then right (right skipped
        # when it duplicates left), built as a masked (n, 2) matrix so the
        # row-major flatten preserves per-row order.
        lefts = self._left[labels]
        rights = self._right[labels]
        short_matrix = np.stack([lefts, rights], axis=1)
        short_mask = np.stack([lefts >= 0, (rights >= 0) & (rights != lefts)], axis=1)
        s_counts = short_mask.sum(axis=1)
        s_values = short_matrix[short_mask]
        s_rows = np.repeat(row_ids, s_counts)

        # Sections L and I: gathered straight out of the slack slabs.
        l_values, l_rows, l_counts = self._long.gather(labels)
        if self.symmetric_neighbors:
            i_values, i_rows, i_counts = self._incoming.gather(labels)
        else:
            i_values = np.empty(0, dtype=np.int64)
            i_rows = np.empty(0, dtype=np.int64)
            i_counts = np.zeros(n, dtype=np.int64)

        # Stitch the sections into per-row S + L + I order by scattering each
        # entry to its final position (no sort needed: sections are built in
        # row order already).
        total_counts = s_counts + l_counts + i_counts
        row_starts = np.zeros(n, dtype=np.int64)
        if n:
            np.cumsum(total_counts[:-1], out=row_starts[1:])
        total = int(total_counts.sum())
        # Flat values are labels, which fit int32 for every practical space;
        # the narrower dtype halves the memory traffic of the dedup gathers
        # and of the splice block copies that re-use these arrays.
        values = np.empty(total, dtype=np.int32)
        rows = np.empty(total, dtype=np.int64)
        section = np.empty(total, dtype=np.int8)

        def scatter(sec_rows, sec_values, sec_offset_within, sec_code):
            positions = row_starts[sec_rows] + sec_offset_within
            values[positions] = sec_values
            rows[positions] = sec_rows
            section[positions] = sec_code

        scatter(s_rows, s_values, _within(s_counts), 0)
        scatter(l_rows, l_values, s_counts[l_rows] + _within(l_counts), 1)
        scatter(i_rows, i_values, (s_counts + l_counts)[i_rows] + _within(i_counts), 2)

        # Incoming dedup: an incoming entry survives only when its value has
        # not already appeared earlier in the row (any section) and is not
        # the row's own label — compile_snapshot's ``seen`` set, vectorized.
        # Stable integer argsorts (radix sorts in NumPy) order entries by
        # (row, value, flat position); each (row, value) group's first
        # occurrence comes first, so every later group member is a
        # duplicate.  When (row, value) packs into 31 bits — every small and
        # medium overlay — one packed radix sort replaces the two passes.
        if n * self.space_size < (1 << 31):
            # repro: allow[RPA101] rows stays int64 for fancy indexing; the widened product is guarded to fit and narrowed here
            packed = (rows * self.space_size + values).astype(np.int32)
            order = np.argsort(packed, kind="stable")
        else:
            value_order = np.argsort(values, kind="stable")
            order = value_order[np.argsort(rows[value_order], kind="stable")]
        dup_sorted = np.zeros(total, dtype=bool)
        if total > 1:
            dup_sorted[1:] = (rows[order][1:] == rows[order][:-1]) & (
                values[order][1:] == values[order][:-1]
            )
        duplicate = np.zeros(total, dtype=bool)
        duplicate[order] = dup_sorted
        keep = (section != 2) | (~duplicate & (values != labels[rows]))

        kept_rows = rows[keep]
        counts = np.bincount(kept_rows, minlength=n).astype(np.int64)
        return values[keep], counts


def _within(counts: np.ndarray) -> np.ndarray:
    """0-based position of each flattened entry within its row."""
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)

"""Declared dtype contracts for the fastpath array layout.

The ROADMAP's million-node target is gated on dtype discipline: one silent
upcast (a bare ``np.arange``, an ``int64``-promoting reduction, a mixed
``concatenate``) doubles the footprint the planned shared-memory sweep slabs
would ship to workers.  This module is the **single source of truth** for
what dtype every snapshot / delta-mirror array field carries:

* the snapshot constructors (``compile_snapshot``, ``build_snapshot``, the
  delta materializer, ``OverlayMixin.compile_snapshot``) call
  :func:`narrow_labels` / :func:`narrow_indptr` so labels and row pointers
  land in ``int32`` whenever the space and the total degree fit;
* the static analyzer (``repro analyze``, :mod:`repro.devtools.analyze`)
  checks inferred dtypes against :data:`SNAPSHOT_CONTRACT` (check RPA102);
* the README's dtype-contract table is generated from
  :data:`SNAPSHOT_CONTRACT` via :func:`render_contract`, mirroring the
  telemetry counter glossary (``python -m repro.fastpath.dtypes --write
  README.md`` refreshes it in place).

Why ``2**30`` is the label cutoff
---------------------------------
Labels are grid points in ``[0, space_size)``.  The ring arithmetic the
policies and the batch router execute keeps every intermediate bounded by
``2 * space_size - 1`` (shorter-arc displacement adds ``space_size`` once),
and ``MetricGreedyPolicy``'s blocked sentinel is ``space_size + 1`` — so
``space_size <= 2**30`` guarantees every intermediate fits ``int32``.  This
is the same cutoff ``FastpathSnapshot.labels_compact`` has always used, so
the routing arithmetic on narrowed labels is already parity-proven.
``ChordGreedyPolicy`` keys reach ``2 * size + 3`` and therefore widens its
own arithmetic back to ``int64`` above ``2**29`` internally; that is a key
computation detail, not a storage contract.

Internal *build* arithmetic intentionally stays ``int64``: the direct
builder packs reciprocal-link keys as ``source * n + target`` (up to
``n**2``, i.e. ``2**34`` at paper scale), so narrowing happens only at the
:class:`~repro.fastpath.snapshot.FastpathSnapshot` construction boundary.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "INT32_SPACE_CUTOFF",
    "INT32_COUNT_CUTOFF",
    "INDEX_DTYPE",
    "EDGE_CLASS_DTYPE",
    "MASK_DTYPE",
    "label_dtype",
    "indptr_dtype",
    "narrow_labels",
    "narrow_indptr",
    "expected_snapshot_dtypes",
    "snapshot_nbytes",
    "FieldContract",
    "SNAPSHOT_CONTRACT",
    "render_contract",
    "update_contract_block",
]

#: Largest ``space_size`` whose labels (and every ring-arithmetic
#: intermediate, bounded by ``2 * space_size - 1``) fit ``int32``.
INT32_SPACE_CUTOFF = 1 << 30

#: Largest CSR entry count (``indptr[-1]``) representable in ``int32``.
INT32_COUNT_CUTOFF = (1 << 31) - 1

#: Dtype of ``neighbor_indices`` (positions into ``labels``): node counts
#: beyond ``int32`` would overflow the dense routing matrices long before
#: this, so the index dtype is fixed rather than parametric.
INDEX_DTYPE = np.dtype(np.int32)

#: Dtype of per-edge class codes (Chord's finger/successor tiers).
EDGE_CLASS_DTYPE = np.dtype(np.int8)

#: Dtype of every liveness mask (node and edge).
MASK_DTYPE = np.dtype(np.bool_)


def label_dtype(space_size: int) -> np.dtype:
    """The policy dtype for label arrays of a ``space_size``-point space.

    ``int32`` when every label *and* every ring-arithmetic intermediate fits
    (``space_size <= 2**30``), else ``int64``.
    """
    return np.dtype(np.int32) if space_size <= INT32_SPACE_CUTOFF else np.dtype(np.int64)


def indptr_dtype(total_degree: int) -> np.dtype:
    """The policy dtype for CSR row pointers holding ``total_degree`` entries."""
    return np.dtype(np.int32) if total_degree <= INT32_COUNT_CUTOFF else np.dtype(np.int64)


def narrow_labels(labels: np.ndarray, space_size: int) -> np.ndarray:
    """Cast a label array to its policy dtype (no copy when already there)."""
    return labels.astype(label_dtype(space_size), copy=False)


def narrow_indptr(indptr: np.ndarray) -> np.ndarray:
    """Cast a CSR row-pointer array to its policy dtype (no copy if exact)."""
    total = int(indptr[-1]) if indptr.size else 0
    return indptr.astype(indptr_dtype(total), copy=False)


def expected_snapshot_dtypes(space_size: int, total_degree: int) -> dict[str, np.dtype]:
    """Map each ``FastpathSnapshot`` array field to its contract dtype.

    The golden dtype-map tests compare freshly built snapshots against this;
    ``edge_class`` / ``edge_alive`` entries give the dtype the field carries
    *when present* (both are ``None`` on untiered, fully live snapshots).
    """
    return {
        "labels": label_dtype(space_size),
        "alive": MASK_DTYPE,
        "neighbor_indptr": indptr_dtype(total_degree),
        "neighbor_indices": INDEX_DTYPE,
        "edge_class": EDGE_CLASS_DTYPE,
        "edge_alive": MASK_DTYPE,
    }


def snapshot_nbytes(snapshot: Any) -> int:
    """Total bytes of a snapshot's array fields (the shippable footprint).

    Counts the CSR arrays and masks a worker would need — not the lazily
    built dense caches — so it measures exactly what narrowing saves.
    """
    total = (
        snapshot.labels.nbytes
        + snapshot.alive.nbytes
        + snapshot.neighbor_indptr.nbytes
        + snapshot.neighbor_indices.nbytes
    )
    if snapshot.edge_class is not None:
        total += snapshot.edge_class.nbytes
    if snapshot.edge_alive is not None:
        total += snapshot.edge_alive.nbytes
    return int(total)


@dataclass(frozen=True)
class FieldContract:
    """One array field's dtype policy (a row of the README contract table)."""

    owner: str  #: Owning structure ("FastpathSnapshot", "DeltaSnapshot", "_Slab").
    field: str  #: Attribute name.
    policy: str  #: Human-readable policy expression.
    dtypes: tuple[str, ...]  #: Admissible dtype names, in preference order.
    description: str  #: What the field holds and why the policy is safe.


#: Every governed array field, keyed for the analyzer (RPA102), the golden
#: dtype-map tests, and the generated README table.
SNAPSHOT_CONTRACT: tuple[FieldContract, ...] = (
    FieldContract(
        "FastpathSnapshot",
        "labels",
        "label_dtype(space_size)",
        ("int32", "int64"),
        "Sorted vertex labels; int32 iff space_size <= 2**30 (every ring "
        "intermediate is bounded by 2*space_size - 1).",
    ),
    FieldContract(
        "FastpathSnapshot",
        "alive",
        "bool",
        ("bool",),
        "Node liveness mask aligned with labels.",
    ),
    FieldContract(
        "FastpathSnapshot",
        "neighbor_indptr",
        "indptr_dtype(total_degree)",
        ("int32", "int64"),
        "CSR row pointers; int32 iff the entry count fits 2**31 - 1.",
    ),
    FieldContract(
        "FastpathSnapshot",
        "neighbor_indices",
        "int32 (INDEX_DTYPE)",
        ("int32",),
        "Neighbour positions into labels; node counts past int32 would "
        "overflow the dense routing matrices first.",
    ),
    FieldContract(
        "FastpathSnapshot",
        "edge_class",
        "int8 (EDGE_CLASS_DTYPE) | None",
        ("int8",),
        "Per-edge class codes (Chord finger/successor tiers); None when "
        "all edges are equal.",
    ),
    FieldContract(
        "FastpathSnapshot",
        "edge_alive",
        "bool | None",
        ("bool",),
        "Per-edge liveness mask; None means every compiled edge is usable.",
    ),
    FieldContract(
        "DeltaSnapshot",
        "_occupied",
        "bool",
        ("bool",),
        "Label-indexed membership mask of the structural mirror.",
    ),
    FieldContract(
        "DeltaSnapshot",
        "_alive",
        "bool",
        ("bool",),
        "Label-indexed node liveness of the structural mirror.",
    ),
    FieldContract(
        "DeltaSnapshot",
        "_left",
        "label_dtype(space_size)",
        ("int32", "int64"),
        "Ring predecessor pointers (-1 encodes None); labels fit by the "
        "same cutoff as snapshot labels.",
    ),
    FieldContract(
        "DeltaSnapshot",
        "_right",
        "label_dtype(space_size)",
        ("int32", "int64"),
        "Ring successor pointers (-1 encodes None).",
    ),
    FieldContract(
        "_Slab",
        "data",
        "label_dtype(space_size)",
        ("int32", "int64"),
        "Flat payload of the slack-capacity CSR rows (link target labels); "
        "relocation and compaction inherit this dtype.",
    ),
    FieldContract(
        "_Slab",
        "flags",
        "bool",
        ("bool",),
        "Per-entry link-alive flags, parallel to data.",
    ),
)


def contract_for(owner: str, field_name: str) -> FieldContract | None:
    """Look up one field's contract (None when the field is not governed)."""
    for entry in SNAPSHOT_CONTRACT:
        if entry.owner == owner and entry.field == field_name:
            return entry
    return None


# --------------------------------------------------------------------------- #
# README table generation (mirrors repro.telemetry.names' glossary block)
# --------------------------------------------------------------------------- #

CONTRACT_BEGIN = "<!-- dtype-contract:begin (generated from repro/fastpath/dtypes.py) -->"
CONTRACT_END = "<!-- dtype-contract:end -->"


def render_contract() -> str:
    """The dtype-contract table as a markdown fragment (marker to marker)."""
    lines = [
        CONTRACT_BEGIN,
        "| structure | field | dtype policy | meaning |",
        "|---|---|---|---|",
    ]
    for entry in SNAPSHOT_CONTRACT:
        lines.append(
            f"| `{entry.owner}` | `{entry.field}` | `{entry.policy}` "
            f"| {entry.description} |"
        )
    lines.append(CONTRACT_END)
    return "\n".join(lines)


def update_contract_block(text: str) -> str:
    """Replace the marker-delimited contract block inside ``text``.

    Raises
    ------
    ValueError
        If either marker is missing — the README must carry the block.
    """
    begin = text.find(CONTRACT_BEGIN)
    end = text.find(CONTRACT_END)
    if begin < 0 or end < 0:
        raise ValueError(
            "dtype-contract markers not found; add the begin/end comments "
            "before regenerating"
        )
    return text[:begin] + render_contract() + text[end + len(CONTRACT_END) :]


def main(argv: list[str] | None = None) -> int:
    """CLI: print the table, or rewrite a file's contract block in place."""
    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--write",
        metavar="PATH",
        default=None,
        help="rewrite the contract block of PATH in place (default: print)",
    )
    options = parser.parse_args(argv)
    if options.write is None:
        print(render_contract())
        return 0
    path = Path(options.write)
    path.write_text(update_contract_block(path.read_text()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared-memory snapshot slabs: one segment, many read-only mappers.

A :class:`~repro.fastpath.snapshot.FastpathSnapshot` is immutable by
contract, which makes it the perfect candidate for OS-level sharing: a sweep
worker or a service-driver process only ever *reads* the CSR arrays.  Before
this module every worker either rebuilt the topology from its seed or
received a pickled copy of the arrays — at the million-node scale the ROADMAP
targets (~170 MB of CSR per snapshot) both options dominate worker start-up
and multiply resident memory by the worker count.

:class:`SnapshotArena` packs all of a snapshot's array fields into **one**
``multiprocessing.shared_memory`` segment:

* :meth:`SnapshotArena.create` copies the arrays in (64-byte aligned slabs)
  and returns the owning handle; :attr:`SnapshotArena.spec` is a small
  picklable :class:`ArenaSpec` describing the layout;
* :meth:`SnapshotArena.attach` (in any process) maps the same segment and
  rebuilds a field-identical, **read-only** ``FastpathSnapshot`` whose
  arrays are zero-copy views into the mapping — property-tested against the
  heap-backed original in ``tests/property/test_property_shm.py``;
* the lifecycle is explicit: :meth:`close` drops this process's mapping,
  :meth:`unlink` (owner) removes the segment from the OS.  The handle is a
  context manager — ``with SnapshotArena.create(snapshot) as arena: ...``
  closes and (for the owner) unlinks even when the body raises, so an
  exception mid-run never leaks a segment.

Only the declared array fields travel through the segment (exactly the
:func:`~repro.fastpath.dtypes.snapshot_nbytes` footprint); the dense routing
matrices stay lazy per-process caches, bounded by ``max_degree`` — sharing
the CSR is what removes the O(workers x snapshot) memory term.

Python 3.8–3.12 wart: a process that merely *attaches* a segment still
registers it with the ``resource_tracker``.  Fork and spawn children share
the owner's tracker process, whose per-name cache is a set — every such
registration collapses into the owner's single entry, which the owner's
:meth:`unlink` removes.  Attachers therefore leave the tracker alone
(unregistering would erase the owner's entry); attaching from a process
that does not share the owner's tracker is outside this module's contract,
and every consumer in this repository (sweep workers, the service-benchmark
pool) is a child of the owner.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from types import TracebackType

import numpy as np

from repro.fastpath.snapshot import FastpathSnapshot
from repro.overlay.policy import GreedyPolicy
from repro.telemetry.core import current as telemetry_current

__all__ = ["ArenaSpec", "SnapshotArena"]

#: Slab alignment inside the segment; generous enough for any vector ISA.
_ALIGN = 64

#: Array fields shipped through the segment, in layout order.  The optional
#: fields (``edge_class`` / ``edge_alive``) are simply absent from a spec's
#: manifest when the snapshot carries ``None``.
_ARRAY_FIELDS = (
    "labels",
    "alive",
    "neighbor_indptr",
    "neighbor_indices",
    "edge_class",
    "edge_alive",
)


def _align(offset: int) -> int:
    """Round ``offset`` up to the next :data:`_ALIGN` boundary."""
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable description of one arena: segment name + slab manifest.

    This is what crosses process boundaries instead of the arrays
    themselves: a worker calls :meth:`SnapshotArena.attach` with it and maps
    the segment the parent created.  ``fields`` holds one
    ``(field, dtype, length, offset)`` entry per shipped array, in layout
    order; the scalar snapshot attributes ride along verbatim (the policy is
    a small frozen dataclass, picklable by design).
    """

    name: str
    nbytes: int
    kind: str
    space_size: int
    symmetric_neighbors: bool
    policy: GreedyPolicy | None
    fields: tuple[tuple[str, str, int, int], ...]


def _pack_manifest(snapshot: FastpathSnapshot) -> tuple[tuple[tuple[str, str, int, int], ...], int]:
    """Lay the snapshot's arrays out in the segment; return (manifest, size)."""
    manifest: list[tuple[str, str, int, int]] = []
    offset = 0
    for name in _ARRAY_FIELDS:
        array = getattr(snapshot, name)
        if array is None:
            continue
        offset = _align(offset)
        manifest.append((name, array.dtype.str, int(array.shape[0]), offset))
        offset += int(array.nbytes)
    return tuple(manifest), max(offset, 1)


class SnapshotArena:
    """A shared-memory segment holding one snapshot's array fields.

    Construct through :meth:`create` (owner) or :meth:`attach` (mapper);
    :meth:`snapshot` hands out the arena-backed read-only
    :class:`~repro.fastpath.snapshot.FastpathSnapshot`.  See the module
    docstring for the lifecycle contract.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, spec: ArenaSpec, owner: bool
    ) -> None:
        self._shm: shared_memory.SharedMemory = shm
        self.spec: ArenaSpec = spec
        self.owner: bool = owner
        self._closed: bool = False
        self._unlinked: bool = False
        self._snapshot: FastpathSnapshot | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls, snapshot: FastpathSnapshot, name: str | None = None
    ) -> "SnapshotArena":
        """Copy ``snapshot``'s arrays into a fresh segment; return the owner.

        The owner's :meth:`snapshot` is itself arena-backed, so the creating
        process and every attacher share the same physical pages.  ``name``
        picks the segment name explicitly (tests); the default lets the OS
        choose a fresh one.
        """
        manifest, total = _pack_manifest(snapshot)
        shm = shared_memory.SharedMemory(create=True, size=total, name=name)
        for field_name, dtype, length, offset in manifest:
            view: np.ndarray = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            view[:] = getattr(snapshot, field_name)
        spec = ArenaSpec(
            name=shm.name,
            nbytes=total,
            kind=snapshot.kind,
            space_size=snapshot.space_size,
            symmetric_neighbors=snapshot.symmetric_neighbors,
            policy=snapshot.policy,
            fields=manifest,
        )
        arena = cls(shm, spec, owner=True)
        tel = telemetry_current()
        if tel is not None:
            tel.count("arena.created")
            tel.gauge("arena.snapshot_nbytes", float(total))
        return arena

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SnapshotArena":
        """Map an existing segment described by ``spec`` (any process).

        Raises
        ------
        FileNotFoundError
            If the segment was already unlinked — the owner controls the
            segment's life, attachers only borrow it.
        """
        shm = shared_memory.SharedMemory(name=spec.name)
        # Python's resource tracker registers *every* SharedMemory handle
        # (attachers included, 3.8–3.12; 3.13 grew track=False).  Fork and
        # spawn children both inherit the parent's tracker process, whose
        # per-name cache is a *set* — all those registrations collapse into
        # the owner's single entry, and the owner's ``unlink`` removes it.
        # So an attacher must NOT unregister (it would erase the owner's
        # entry and make unlink's bookkeeping complain); it simply leaves
        # the shared entry alone.  Attaching from a process that does not
        # share the owner's tracker is outside this module's contract.
        arena = cls(shm, spec, owner=False)
        tel = telemetry_current()
        if tel is not None:
            tel.count("arena.attached")
        return arena

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def snapshot(self) -> FastpathSnapshot:
        """The arena-backed snapshot: read-only zero-copy views, cached.

        The returned snapshot's array fields alias the shared mapping and
        are marked non-writeable; it must not outlive :meth:`close`.
        """
        if self._closed:
            raise ValueError("arena is closed")
        if self._snapshot is None:
            arrays: dict[str, np.ndarray] = {}
            for field_name, dtype, length, offset in self.spec.fields:
                view: np.ndarray = np.ndarray(
                    (length,), dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
                )
                view.flags.writeable = False
                arrays[field_name] = view
            self._snapshot = FastpathSnapshot(
                kind=self.spec.kind,
                space_size=self.spec.space_size,
                labels=arrays["labels"],
                alive=arrays["alive"],
                neighbor_indptr=arrays["neighbor_indptr"],
                neighbor_indices=arrays["neighbor_indices"],
                symmetric_neighbors=self.spec.symmetric_neighbors,
                policy=self.spec.policy,
                edge_class=arrays.get("edge_class"),
                edge_alive=arrays.get("edge_alive"),
            )
        return self._snapshot

    @property
    def nbytes(self) -> int:
        """Segment payload size — the shipped ``snapshot_nbytes`` footprint."""
        return self.spec.nbytes

    @property
    def name(self) -> str:
        """The OS-level segment name (what :meth:`attach` maps)."""
        return self.spec.name

    @property
    def closed(self) -> bool:
        """Whether this process's mapping has been dropped."""
        return self._closed

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        The arena's own snapshot reference is released first; if the caller
        still holds views into the mapping the unmap is deferred to their
        collection rather than failing — the *segment* is governed solely by
        :meth:`unlink`.
        """
        if self._closed:
            return
        self._closed = True
        self._snapshot = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - depends on caller's refs
            # Live views exported from snapshot() pin the mapping; the OS
            # releases it when they are garbage-collected or at process exit.
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (idempotent; owner's duty).

        After this, new :meth:`attach` calls raise ``FileNotFoundError``;
        existing mappings keep working until their processes close them.
        """
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def __enter__(self) -> "SnapshotArena":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
        if self.owner:
            self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "mapper"
        state = "closed" if self._closed else "open"
        return (
            f"SnapshotArena({self.spec.name!r}, {self.spec.nbytes} bytes, "
            f"{role}, {state})"
        )

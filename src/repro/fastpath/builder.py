"""Direct-to-CSR network builds: sample a snapshot without object graphs.

The object build path (:func:`repro.core.builder.build_ideal_network` followed
by :func:`repro.fastpath.snapshot.compile_snapshot`) materialises an
:class:`~repro.core.graph.OverlayGraph` — one ``OverlayNode`` plus a
``LongLink`` record per sampled link — only to flatten it straight back into
arrays.  At paper scale (2^17 nodes, 17 links each) that detour through ~2.4
million Python objects dominates experiment start-up.

:func:`build_snapshot` skips it entirely: all long links for all nodes are
drawn in **one batched inverse-CDF sample**
(:meth:`~repro.core.distributions.InversePowerLawDistribution.sample_neighbors_batch`)
and the CSR adjacency is assembled with bulk NumPy scatter/gather, emitting a
:class:`~repro.fastpath.snapshot.FastpathSnapshot` directly.

Equivalence contract
--------------------
``build_snapshot(n, l, seed)`` is **bit-identical** to
``compile_snapshot(build_ideal_network(n, l, seed).graph)`` — same labels,
same CSR row pointers, same neighbour order per vertex.  That holds because
the object builder consumes the *same* batched draw from the same derived
stream (``spawn_rng(seed, "links")``) in the same row-major order, and the
CSR assembly reproduces ``compile_snapshot``'s neighbour order exactly: short
links first, then deduplicated long links in draw order, then (when
``symmetric_neighbors``) incoming long links in source-creation order,
skipping sources already present in the row.
``tests/property/test_property_fastpath.py`` asserts the equivalence across
random sizes, link counts, and seeds.

Only the fully populated ring is supported — the configuration of every
Figure-6/7 and Table-1 scaling run.  Binomially placed nodes
(``presence_probability < 1``) condition each node's link distribution on the
presence mask, which breaks the shift invariance batched sampling relies on;
build those through the object path.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import InversePowerLawDistribution
from repro.fastpath.dtypes import narrow_indptr, narrow_labels
from repro.fastpath.snapshot import FastpathSnapshot
from repro.telemetry.core import spanned as telemetry_spanned
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_positive

__all__ = ["build_snapshot"]


@telemetry_spanned("build")
def build_snapshot(
    n: int,
    links_per_node: int | None = None,
    seed: int = 0,
    exponent: float = 1.0,
    symmetric_neighbors: bool = True,
) -> FastpathSnapshot:
    """Build the paper's standard ring network straight into a snapshot.

    Mirrors :func:`repro.core.builder.build_ideal_network` (fully populated
    ring, inverse power-law long links, ``ceil(lg n)`` links per node by
    default) but never touches the object layer; see the module docstring for
    the equivalence contract with the object build path.

    Parameters
    ----------
    n:
        Ring size; every point hosts a node, so this is also the node count.
    links_per_node:
        Long links per node (default ``ceil(lg n)``, the paper's Section-6
        choice).
    seed:
        Base seed; the long-link stream is ``spawn_rng(seed, "links")``,
        exactly as in :class:`~repro.core.builder.RandomGraphBuilder`.
    exponent:
        Power-law exponent of the link distribution (default 1).
    symmetric_neighbors:
        Fold incoming long links into each vertex's neighbour row (the
        handshake model the scalar router defaults to).
    """
    ensure_positive(n, "n")
    if links_per_node is None:
        links_per_node = max(1, int(np.ceil(np.log2(n))))

    labels = np.arange(n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Long links: one batched draw for every (node, link slot), then a
    # stable first-occurrence dedup per row (the builder collapses repeated
    # samples of the same target; the paper samples with replacement).
    # ------------------------------------------------------------------ #
    if n >= 2 and links_per_node > 0:
        distribution = InversePowerLawDistribution(n, exponent=exponent)
        link_rng = spawn_rng(seed, "links")
        targets = distribution.sample_neighbors_batch(labels, links_per_node, link_rng)
        order = np.argsort(targets, axis=1, kind="stable")
        sorted_targets = np.take_along_axis(targets, order, axis=1)
        duplicate = np.zeros_like(sorted_targets, dtype=bool)
        duplicate[:, 1:] = sorted_targets[:, 1:] == sorted_targets[:, :-1]
        keep = np.ones_like(duplicate)
        np.put_along_axis(keep, order, ~duplicate, axis=1)
    else:
        targets = np.empty((n, 0), dtype=np.int64)
        keep = np.empty((n, 0), dtype=bool)

    out_count = keep.sum(axis=1).astype(np.int64)
    flat_keep = keep.ravel()
    edge_source = np.repeat(labels, targets.shape[1])[flat_keep]
    edge_target = targets.ravel()[flat_keep]

    # ------------------------------------------------------------------ #
    # Short links: the sorted ring of immediate neighbours.
    # ------------------------------------------------------------------ #
    if n == 1:
        short_count = 0
        left = right = np.empty(0, dtype=np.int64)
    elif n == 2:
        # Both ring directions reach the single other node; the compiled row
        # stores it once (``right`` equals ``left``).
        short_count = 1
        left = right = (labels + 1) % 2
    else:
        short_count = 2
        left = (labels - 1) % n
        right = (labels + 1) % n

    # ------------------------------------------------------------------ #
    # Incoming long links (symmetric neighbour knowledge): group the kept
    # edges by target, preserving source-creation order, and drop sources
    # already present in the row (a short neighbour, or a reciprocal long
    # link) — the same dedup ``compile_snapshot`` applies.
    # ------------------------------------------------------------------ #
    if symmetric_neighbors and edge_source.size:
        by_target = np.argsort(edge_target, kind="stable")
        in_source = edge_source[by_target]
        in_target = edge_target[by_target]
        already = (in_source == left[in_target]) | (in_source == right[in_target])
        # Reciprocal long link: the row of ``in_target`` already contains
        # ``in_source`` iff the kept edge (in_target -> in_source) exists.
        edge_keys = np.sort(edge_source * n + edge_target)
        reverse_keys = in_target * n + in_source
        position = np.searchsorted(edge_keys, reverse_keys)
        position_clipped = np.minimum(position, edge_keys.size - 1)
        already |= (position < edge_keys.size) & (
            edge_keys[position_clipped] == reverse_keys
        )
        in_source = in_source[~already]
        in_target = in_target[~already]
        in_count = np.bincount(in_target, minlength=n).astype(np.int64)
    else:
        in_source = in_target = np.empty(0, dtype=np.int64)
        in_count = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # CSR assembly: shorts, then kept long links, then incoming links.
    # Labels equal vertex indices on the fully populated ring, so targets
    # scatter straight into the index array.
    # ------------------------------------------------------------------ #
    degrees = short_count + out_count + in_count
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int32)
    base = indptr[:-1]
    if short_count >= 1:
        indices[base] = left
    if short_count == 2:
        indices[base + 1] = right
    if edge_source.size:
        rank = keep.cumsum(axis=1, dtype=np.int64) - 1
        long_positions = (base[:, None] + short_count + rank).ravel()[flat_keep]
        indices[long_positions] = edge_target
    if in_source.size:
        group_start = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_count, out=group_start[1:])
        rank_in = np.arange(in_source.size, dtype=np.int64) - group_start[in_target]
        indices[base[in_target] + short_count + out_count[in_target] + rank_in] = (
            in_source
        )

    # Assembly arithmetic above must stay int64 (the reciprocal-link keys
    # pack source * n + target, up to n**2); storage narrows to the contract
    # dtypes only here, at the snapshot boundary.
    return FastpathSnapshot(
        kind="ring",
        space_size=n,
        labels=narrow_labels(labels, n),
        alive=np.ones(n, dtype=bool),
        neighbor_indptr=narrow_indptr(indptr),
        neighbor_indices=indices,
        symmetric_neighbors=symmetric_neighbors,
    )

"""Per-process snapshot cache for sweep workers and service drivers.

``Sweep`` fans cells out over a long-lived ``ProcessPoolExecutor``; each
worker executes many cells back to back, and every immutable-topology cell
pays a fresh :func:`~repro.fastpath.builder.build_snapshot` even when the
worker just built the exact same arrays.  The same shape recurs in the
multi-worker service driver, where every routing task re-attaches the same
:class:`~repro.fastpath.shm.SnapshotArena` segment.

This module is that per-worker memo, with two entry points:

* :func:`cached_build_snapshot` — :func:`build_snapshot` keyed on its **full**
  argument tuple (including the seed).  Keying on the whole tuple rather than
  just the topology shape is what keeps the cache unconditionally correct:
  two cells whose derived seeds differ *must* rebuild, and the deterministic
  per-cell seeding (`derive_seed(master, "sweep", scenario, cell_key)`) makes
  seed equality exactly topology identity.
* :func:`cached_attach` — :meth:`~repro.fastpath.shm.SnapshotArena.attach`
  keyed on the segment name, so a worker maps each arena once per process
  however many tasks it executes against it.

Both report ``sweep.snapshot_cache.hits`` / ``sweep.snapshot_cache.misses``
into the active telemetry session.  Sharing cached snapshots is safe because
:class:`~repro.fastpath.snapshot.FastpathSnapshot` is immutable — failure
experiments derive mask copies (``with_alive``), never mutate — and the lazy
dense-matrix cache is a pure function of the CSR arrays.

The cache is a small FIFO (:data:`CACHE_CAPACITY` entries): million-node
snapshots are ~170 MB, so unbounded growth across a heterogeneous sweep
would trade the rebuild cost for memory exhaustion.  Evicted arenas are
closed (the mapping, never the segment — the owner unlinks).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Union

from repro.fastpath.builder import build_snapshot
from repro.fastpath.shm import ArenaSpec, SnapshotArena
from repro.fastpath.snapshot import FastpathSnapshot
from repro.telemetry.core import current as telemetry_current

__all__ = [
    "CACHE_CAPACITY",
    "cached_build_snapshot",
    "cached_attach",
    "snapshot_cache_clear",
    "snapshot_cache_stats",
]

#: Maximum cached entries (snapshots + arenas combined) per process.
CACHE_CAPACITY = 4

_CacheKey = tuple[str, tuple[object, ...]]
_CacheValue = Union[FastpathSnapshot, SnapshotArena]

_CACHE: "OrderedDict[_CacheKey, _CacheValue]" = OrderedDict()
_STATS = {"hits": 0, "misses": 0}


def _record_hit() -> None:
    _STATS["hits"] += 1
    tel = telemetry_current()
    if tel is not None:
        tel.count("sweep.snapshot_cache.hits")


def _record_miss() -> None:
    _STATS["misses"] += 1
    tel = telemetry_current()
    if tel is not None:
        tel.count("sweep.snapshot_cache.misses")


def _evict_to_capacity() -> None:
    while len(_CACHE) > CACHE_CAPACITY:
        _key, value = _CACHE.popitem(last=False)
        if isinstance(value, SnapshotArena):
            value.close()


def _lookup(key: _CacheKey) -> _CacheValue | None:
    value = _CACHE.get(key)
    if value is not None:
        _CACHE.move_to_end(key)
        _record_hit()
    return value


def _store(key: _CacheKey, value: _CacheValue) -> None:
    _record_miss()
    _CACHE[key] = value
    _evict_to_capacity()


def cached_build_snapshot(
    n: int,
    links_per_node: int | None = None,
    seed: int = 0,
    exponent: float = 1.0,
    symmetric_neighbors: bool = True,
) -> FastpathSnapshot:
    """:func:`~repro.fastpath.builder.build_snapshot`, memoized per process.

    Bit-identical to an uncached build (it returns the same pure function's
    result); only the redundant recomputation is skipped.
    """
    key: _CacheKey = ("build", (n, links_per_node, seed, exponent, symmetric_neighbors))
    cached = _lookup(key)
    if cached is not None:
        assert isinstance(cached, FastpathSnapshot)
        return cached
    snapshot = build_snapshot(
        n,
        links_per_node=links_per_node,
        seed=seed,
        exponent=exponent,
        symmetric_neighbors=symmetric_neighbors,
    )
    _store(key, snapshot)
    return snapshot


def cached_attach(spec: ArenaSpec) -> SnapshotArena:
    """:meth:`SnapshotArena.attach`, memoized on the segment name.

    A worker process maps each arena once; later tasks against the same
    segment reuse the existing mapping.  A cached arena that was closed
    (evicted elsewhere, or by :func:`snapshot_cache_clear`) is re-attached.
    """
    key: _CacheKey = ("arena", (spec.name,))
    cached = _lookup(key)
    if cached is not None:
        assert isinstance(cached, SnapshotArena)
        if not cached.closed:
            return cached
        del _CACHE[key]
    arena = SnapshotArena.attach(spec)
    _store(key, arena)
    return arena


def snapshot_cache_clear() -> None:
    """Drop every cached entry, closing cached arena mappings."""
    while _CACHE:
        _key, value = _CACHE.popitem(last=False)
        if isinstance(value, SnapshotArena):
            value.close()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


def snapshot_cache_stats() -> dict[str, int]:
    """This process's lifetime cache counters (also emitted as telemetry)."""
    return dict(_STATS)

"""The lint driver: walk files, run rules, apply suppressions, report.

The engine is deliberately rule-agnostic: it parses each file once, hands
the module to every selected rule, runs cross-file ``finalize`` passes, then
applies ``# repro: allow[...]`` suppressions and reports the stale ones.
Rule instances are created fresh per run (cross-file rules accumulate state
in ``check_module``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.findings import LINT_SCHEMA, UNUSED_SUPPRESSION_ID, Finding
from repro.devtools.rules import ALL_RULES, LintModule, LintProject, Rule
from repro.devtools.suppressions import Suppression, parse_suppressions

__all__ = ["LintEngine", "LintResult", "discover_root"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".claude"}
_DEFAULT_TARGETS = ("src", "tests", "benchmarks")


def discover_root(start: Path | None = None) -> Path:
    """The nearest ancestor of ``start`` (default: cwd) holding pyproject.toml."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "schema": LINT_SCHEMA,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.findings],
        }


@dataclass
class LintEngine:
    """One configured lint run over a project tree."""

    root: Path
    select: Sequence[str] | None = None
    ignore: Sequence[str] = ()
    _suppressions: dict[str, list[Suppression]] = field(default_factory=dict, repr=False)

    def selected_rules(self) -> list[Rule]:
        """Fresh instances of every rule the select/ignore filters keep.

        Raises
        ------
        KeyError
            If a select/ignore id names no known rule (RPR000 is accepted —
            it filters the unused-suppression pseudo-findings).
        """
        known = {rule.id for rule in ALL_RULES} | {UNUSED_SUPPRESSION_ID}
        requested = {rule_id.upper() for rule_id in (self.select or [])}
        ignored = {rule_id.upper() for rule_id in self.ignore}
        for rule_id in requested | ignored:
            if rule_id not in known:
                raise KeyError(
                    f"unknown lint rule {rule_id!r}; known: {', '.join(sorted(known))}"
                )
        return [
            type(rule)()
            for rule in ALL_RULES
            if (not requested or rule.id in requested) and rule.id not in ignored
        ]

    def _unused_suppressions_selected(self) -> bool:
        requested = {rule_id.upper() for rule_id in (self.select or [])}
        ignored = {rule_id.upper() for rule_id in self.ignore}
        if UNUSED_SUPPRESSION_ID in ignored:
            return False
        return not requested or UNUSED_SUPPRESSION_ID in requested

    # -- file walking --------------------------------------------------------

    def walk(self, paths: Sequence[str | Path] = ()) -> list[Path]:
        """Every ``.py`` file under the given paths (default: src/tests/benchmarks)."""
        targets: list[Path] = []
        if paths:
            targets = [Path(path) for path in paths]
        else:
            targets = [self.root / name for name in _DEFAULT_TARGETS]
        files: list[Path] = []
        for target in targets:
            target = target if target.is_absolute() else self.root / target
            if target.is_file() and target.suffix == ".py":
                files.append(target)
            elif target.is_dir():
                for candidate in sorted(target.rglob("*.py")):
                    if not any(part in _SKIP_DIRS for part in candidate.parts):
                        files.append(candidate)
        unique: dict[Path, None] = {}
        for file in files:
            unique.setdefault(file.resolve(), None)
        return list(unique)

    # -- the run -------------------------------------------------------------

    def run(self, paths: Sequence[str | Path] = ()) -> LintResult:
        rules = self.selected_rules()
        modules: list[LintModule] = []
        raw_findings: list[Finding] = []
        self._suppressions = {}

        for abs_path in self.walk(paths):
            try:
                relative = abs_path.relative_to(self.root).as_posix()
            except ValueError:
                relative = abs_path.as_posix()
            source = abs_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(abs_path))
            except SyntaxError as error:
                raw_findings.append(
                    Finding(
                        path=relative,
                        line=error.lineno or 1,
                        col=(error.offset or 0) + 1,
                        rule="SYNTAX",
                        message=f"cannot parse: {error.msg}",
                    )
                )
                continue
            module = LintModule(path=relative, abs_path=abs_path, source=source, tree=tree)
            modules.append(module)
            self._suppressions[relative] = parse_suppressions(source)
            for rule in rules:
                if rule.applies_to(module):
                    raw_findings.extend(rule.check_module(module))

        project = LintProject(root=self.root, modules=modules)
        for rule in rules:
            raw_findings.extend(rule.finalize(project))

        findings = self._apply_suppressions(raw_findings)
        if self._unused_suppressions_selected():
            findings.extend(self._unused_suppression_findings())
        findings.sort()
        return LintResult(
            findings=findings,
            files_checked=len(modules),
            rules_run=tuple(rule.id for rule in rules),
        )

    def _apply_suppressions(self, findings: Iterable[Finding]) -> list[Finding]:
        kept: list[Finding] = []
        for finding in findings:
            suppressed = False
            for suppression in self._suppressions.get(finding.path, []):
                if suppression.matches(finding.rule, finding.line):
                    suppression.used = True
                    suppressed = True
            if not suppressed:
                kept.append(finding)
        return kept

    def _unused_suppression_findings(self) -> list[Finding]:
        unused: list[Finding] = []
        active = {rule.id for rule in self.selected_rules()}
        for path, suppressions in self._suppressions.items():
            for suppression in suppressions:
                if suppression.used:
                    continue
                # Only call a suppression stale when every rule it names
                # actually ran — otherwise we cannot know it is unused.
                if not suppression.rules <= active:
                    continue
                unused.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        col=1,
                        rule=UNUSED_SUPPRESSION_ID,
                        message=(
                            "unused suppression: `# repro: allow["
                            + ",".join(sorted(suppression.rules))
                            + "]` matched no finding — remove it"
                        ),
                    )
                )
        return unused

"""The ``repro lint`` subcommand.

Usage::

    repro lint                              # src/ tests/ benchmarks/ from the repo root
    repro lint --format json                # machine-readable report (repro.lint/v1)
    repro lint --select RPR001 --select RPR003
    repro lint --ignore RPR000 src/repro/fastpath
    repro lint --list-rules                 # the rule catalog, one line per rule

Exit codes: **0** clean, **1** at least one finding, **2** usage error
(argparse errors and unknown ``--select``/``--ignore`` rule ids).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.engine import LintEngine, discover_root
from repro.devtools.reporters import render_json, render_text
from repro.devtools.rules import ALL_RULES

__all__ = ["add_lint_arguments", "run_lint"]

USAGE_EXIT_CODE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` options to an argparse subparser."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATHS",
        help="files or directories to lint (default: src tests benchmarks at the repo root)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report encoding (default: file:line:col text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rule ids (repeatable); RPR000 selects unused-suppression checks",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="project root (default: nearest ancestor with a pyproject.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit 0",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code (0/1/2)."""
    if args.list_rules:
        width = max(len(rule.id) for rule in ALL_RULES)
        for rule in ALL_RULES:
            print(f"{rule.id.ljust(width)}  {rule.name}: {rule.description}")
        return 0
    root = Path(args.root).resolve() if args.root else discover_root()
    engine = LintEngine(root=root, select=args.select or None, ignore=args.ignore)
    try:
        result = engine.run(args.paths)
    except KeyError as error:
        print(f"repro lint: {error.args[0]}", file=sys.stderr)
        return USAGE_EXIT_CODE
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover - thin shim
    """Standalone entry point (``python -m repro.devtools.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro lint", description="AST-based invariant linter for this repository."
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Lint output encodings: ``file:line:col`` text and a schema-stamped JSON."""

from __future__ import annotations

import json

from repro.devtools.engine import LintResult
from repro.devtools.findings import Finding, LINT_SCHEMA

__all__ = ["render_text", "render_json", "parse_json_report"]


def render_text(result: LintResult) -> str:
    """One ``path:line:col: RULE message`` line per finding, plus a summary."""
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in result.findings
    ]
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"repro lint: {len(result.findings)} {noun} "
        f"({result.files_checked} files, rules: {', '.join(result.rules_run)})"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The JSON report envelope (schema ``repro.lint/v1``)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def parse_json_report(text: str) -> LintResult:
    """Round-trip a JSON report back into a :class:`LintResult`.

    Raises
    ------
    ValueError
        If the payload does not carry the ``repro.lint/v1`` schema stamp.
    """
    data = json.loads(text)
    if data.get("schema") != LINT_SCHEMA:
        raise ValueError(
            f"not a repro lint report: schema={data.get('schema')!r}, "
            f"expected {LINT_SCHEMA!r}"
        )
    return LintResult(
        findings=[Finding.from_dict(entry) for entry in data["findings"]],
        files_checked=int(data["files_checked"]),
        rules_run=tuple(data["rules_run"]),
    )

"""RPR004 — the scenario registry and the README scenario catalog must agree.

The CLI derives ``repro list`` / ``repro run`` from ``@register_scenario``
decorators at runtime, so the only thing that can drift is the
*documentation*: the README's scenario catalog (the table between the
``<!-- scenario-catalog:begin/end -->`` markers).  This rule statically
enumerates every ``@register_scenario("name", ...)`` decorator in ``src/``
and cross-checks the catalog both ways:

* a registered scenario missing from the catalog — undocumented surface;
* a catalog row naming an unregistered scenario — stale documentation;
* duplicate registrations of the same name (the runtime registry rejects
  them with an exception, but the linter catches it before anything runs).

This replaces the CI shell guard that asserted a hard-coded name list
against ``repro list`` output: the catalog is now the committed claim, and
lint fails the moment code and claim disagree.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.devtools.findings import Finding
from repro.devtools.rules import LintModule, LintProject, Rule

__all__ = ["RegistryDriftRule", "CATALOG_BEGIN", "CATALOG_END"]

CATALOG_BEGIN = "<!-- scenario-catalog:begin (checked by repro lint RPR004) -->"
CATALOG_END = "<!-- scenario-catalog:end -->"

#: A catalog table row: the first cell holds the backticked scenario name.
_CATALOG_ROW = re.compile(r"^\|\s*`([a-z0-9-]+)`")


class RegistryDriftRule(Rule):
    id = "RPR004"
    name = "registry-drift"
    description = (
        "@register_scenario decorators and the README scenario catalog must "
        "name exactly the same scenarios (two-way drift check, replaces the "
        "CI shell guard)"
    )

    def __init__(self) -> None:
        #: name -> (path, line) of each registration site.
        self._registered: dict[str, tuple[str, int]] = {}
        self._duplicates: list[Finding] = []

    def applies_to(self, module: LintModule) -> bool:
        return module.in_dir("src")

    def check_module(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                func = decorator.func
                name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
                if name != "register_scenario":
                    continue
                if not decorator.args:
                    continue
                first = decorator.args[0]
                if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                    yield module.finding(
                        self.id,
                        decorator,
                        "@register_scenario name is not a string literal; the "
                        "registry cannot be checked statically",
                    )
                    continue
                scenario = first.value
                if scenario in self._registered:
                    previous_path, previous_line = self._registered[scenario]
                    self._duplicates.append(
                        module.finding(
                            self.id,
                            decorator,
                            f"scenario `{scenario}` is registered twice (first at "
                            f"{previous_path}:{previous_line}) — the runtime "
                            "registry will reject the second registration",
                        )
                    )
                else:
                    self._registered[scenario] = (module.path, decorator.lineno)
        return ()

    def finalize(self, project: LintProject) -> Iterable[Finding]:
        yield from self._duplicates
        readme = project.read_text("README.md")
        if readme is None:
            # Nothing to cross-check against (fixture projects without docs).
            return
        begin = readme.find(CATALOG_BEGIN)
        end = readme.find(CATALOG_END)
        if begin < 0 or end < 0 or end < begin:
            if self._registered:
                yield Finding(
                    path="README.md",
                    line=1,
                    col=1,
                    rule=self.id,
                    message=(
                        "README.md has no scenario-catalog block "
                        f"({CATALOG_BEGIN!r} ... {CATALOG_END!r}); add the catalog "
                        "table so registered scenarios are documented"
                    ),
                )
            return
        block = readme[begin:end]
        block_start_line = readme[:begin].count("\n") + 1
        documented: dict[str, int] = {}
        for offset, line in enumerate(block.splitlines()):
            match = _CATALOG_ROW.match(line.strip())
            if match:
                documented.setdefault(match.group(1), block_start_line + offset)
        for scenario, line in sorted(documented.items()):
            if scenario not in self._registered:
                yield Finding(
                    path="README.md",
                    line=line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"README scenario catalog lists `{scenario}` but no "
                        "@register_scenario decorator registers it — stale docs"
                    ),
                )
        for scenario, (path, line) in sorted(self._registered.items()):
            if scenario not in documented:
                yield Finding(
                    path=path,
                    line=line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"scenario `{scenario}` is registered here but missing "
                        "from the README scenario catalog — document it in the "
                        "catalog table"
                    ),
                )

"""RPR002 — every telemetry metric name must be declared in the registry.

:mod:`repro.telemetry.names` is the single source of truth for counter /
gauge / histogram names (it also generates the README glossary).  This rule
statically extracts the name string of every telemetry call in ``src/`` and
``benchmarks/`` — method calls on a session object (``tel.count(...)``,
``tel.observe(...)``, ...) and direct ``Counter(...)`` / ``Gauge(...)`` /
``Histogram(...)`` constructions — and checks it against the registry.

F-strings are matched structurally: ``f"refresh.ops.{kind}"`` becomes the
pattern ``refresh.ops.*`` and must match a registered name with a
``<placeholder>`` in exactly that segment, so dynamic names cannot bypass
the registry.  The finalize pass reports registry entries no call site
emits — a glossary row describing a metric that no longer exists is drift
in the other direction.

Tests are deliberately out of scope: they construct synthetic metrics to
exercise the telemetry layer itself.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.findings import Finding
from repro.devtools.rules import ImportMap, LintModule, LintProject, Rule, dotted_name, iter_calls
from repro.telemetry.names import METRIC_NAMES, metric_is_registered

__all__ = ["TelemetryNamesRule"]

#: Telemetry session methods whose first argument is a metric name.
_RECORD_METHODS = frozenset({"count", "gauge", "observe", "observe_many", "histogram"})
#: Telemetry metric constructors (resolved through imports).
_CONSTRUCTORS = {
    "repro.telemetry.Counter",
    "repro.telemetry.Gauge",
    "repro.telemetry.Histogram",
    "repro.telemetry.core.Counter",
    "repro.telemetry.core.Gauge",
    "repro.telemetry.core.Histogram",
}
#: Calls whose result is a telemetry session object.
_SESSION_SOURCES = {
    "repro.telemetry.current",
    "repro.telemetry.enable",
    "repro.telemetry.session",
    "repro.telemetry.core.current",
    "repro.telemetry.core.enable",
    "repro.telemetry.core.session",
}


def _metric_pattern(node: ast.expr) -> str | None:
    """The metric-name pattern of a call's first argument, if extractable.

    A plain string constant is itself; an f-string contributes ``*`` for
    each formatted field (dots inside constant parts keep their segment
    structure).  Anything else — a variable, a concatenation — returns
    ``None`` and is reported as unverifiable.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


class TelemetryNamesRule(Rule):
    id = "RPR002"
    name = "telemetry-name-registry"
    description = (
        "every metric name passed to a telemetry call must be declared in "
        "repro/telemetry/names.py (the registry that generates the README glossary)"
    )

    def __init__(self) -> None:
        self._names_module_seen = False
        self._emitted_patterns: set[str] = set()

    def applies_to(self, module: LintModule) -> bool:
        if module.path == "src/repro/telemetry/names.py":
            self._names_module_seen = True
            return False
        # telemetry/core.py forwards caller-supplied names by variable; tests
        # construct synthetic metrics on purpose.
        return (module.in_dir("src") or module.in_dir("benchmarks")) and not module.in_dir(
            "src/repro/telemetry"
        )

    def _session_names(self, module: LintModule, imports: ImportMap) -> set[str]:
        """Names bound to a telemetry session anywhere in the module.

        Collected from ``x = current()`` / ``x = enable()`` assignments and
        ``with session(...) as x`` bindings, across all scopes; method calls
        on any such name are treated as telemetry records.
        """
        names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                resolved = imports.resolve_call(node.value)
                if resolved in _SESSION_SOURCES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and imports.resolve_call(item.context_expr) in _SESSION_SOURCES
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        names.add(item.optional_vars.id)
        return names

    def check_module(self, module: LintModule) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        session_names = self._session_names(module, imports)

        for call in iter_calls(module.tree):
            kind: str | None = None
            if isinstance(call.func, ast.Attribute) and call.func.attr in _RECORD_METHODS:
                receiver = call.func.value
                receiver_is_session = (
                    isinstance(receiver, ast.Name) and receiver.id in session_names
                ) or (
                    isinstance(receiver, ast.Call)
                    and imports.resolve_call(receiver) in _SESSION_SOURCES
                )
                # Session objects passed as function parameters (the
                # benchmark helpers do this) are conventionally named `tel`.
                receiver_is_session = receiver_is_session or (
                    isinstance(receiver, ast.Name) and receiver.id == "tel"
                )
                if receiver_is_session:
                    kind = call.func.attr
            else:
                resolved = imports.resolve_call(call)
                if resolved in _CONSTRUCTORS:
                    kind = resolved.rsplit(".", 1)[-1].lower()
            if kind is None:
                continue
            if not call.args:
                continue
            pattern = _metric_pattern(call.args[0])
            if pattern is None:
                yield module.finding(
                    self.id,
                    call,
                    f"metric name passed to `{kind}` is not a literal; use a string "
                    "or f-string so it can be checked against repro/telemetry/names.py",
                )
                continue
            self._emitted_patterns.add(pattern)
            if not metric_is_registered(pattern):
                yield module.finding(
                    self.id,
                    call,
                    f"metric name `{pattern}` is not declared in "
                    "repro/telemetry/names.py — register it (dynamic segments as "
                    "`<placeholder>`) so the glossary stays the single source of truth",
                )

    def finalize(self, project: LintProject) -> Iterable[Finding]:
        if not self._names_module_seen:
            return
        from repro.telemetry.names import _segments_match  # shared matcher

        names_path = "src/repro/telemetry/names.py"
        source = project.read_text(names_path) or ""
        lines = source.splitlines()
        for entry in METRIC_NAMES:
            emitted = any(
                _segments_match(entry.segments(), pattern.split("."))
                for pattern in self._emitted_patterns
            )
            if emitted:
                continue
            line = next(
                (
                    index + 1
                    for index, text in enumerate(lines)
                    if f'"{entry.name}"' in text
                ),
                1,
            )
            yield Finding(
                path=names_path,
                line=line,
                col=1,
                rule=self.id,
                message=(
                    f"registered metric `{entry.name}` is never emitted by any "
                    "telemetry call in src/ or benchmarks/ — remove the stale "
                    "registry entry (and its glossary row)"
                ),
            )

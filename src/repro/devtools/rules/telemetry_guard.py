"""RPR003 — hot-path telemetry must use the single-``current()``-fetch guard.

The telemetry design rule is *disabled is the default and costs nothing
measurable*: hot code fetches the active context once
(``tel = telemetry.current()``) and guards every record with a plain
``None`` check.  In the hot modules (``fastpath/`` and ``core/``) this rule
flags:

* record/span calls made directly on an attribute chain
  (``telemetry.current().count(...)`` — a second fetch per record);
* record/span calls on a fetched session variable that are not dominated by
  a ``None`` guard — either an enclosing ``if tel is not None:`` /
  ``if tel:`` (including ``and``-conjunctions), a guarding conditional
  expression, or an earlier ``if tel is None: return/raise/continue/break``
  early exit in the same statement block.

The property suite proves results are bit-identical with telemetry on or
off; this rule pins the *cost* side of that contract at the source level.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.findings import Finding
from repro.devtools.rules import ImportMap, LintModule, Rule

__all__ = ["TelemetryGuardRule"]

_RECORD_METHODS = frozenset(
    {"count", "gauge", "observe", "observe_many", "histogram", "span"}
)
_FETCH_CALLS = {
    "repro.telemetry.current",
    "repro.telemetry.core.current",
}


def _is_terminating(statements: list[ast.stmt]) -> bool:
    """Whether a block always leaves the enclosing scope/loop iteration."""
    return bool(statements) and isinstance(
        statements[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _test_narrows(test: ast.expr, name: str) -> bool:
    """Whether ``test`` being true implies ``name`` is not None."""
    if isinstance(test, ast.Name) and test.id == name:
        return True
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, (op,), (right,) = test.left, test.ops, test.comparators
        if isinstance(op, ast.IsNot):
            if isinstance(left, ast.Name) and left.id == name:
                return isinstance(right, ast.Constant) and right.value is None
            if isinstance(right, ast.Name) and right.id == name:
                return isinstance(left, ast.Constant) and left.value is None
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_test_narrows(value, name) for value in test.values)
    return False


def _test_is_none(test: ast.expr, name: str) -> bool:
    """Whether ``test`` is exactly ``name is None``."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, (op,), (right,) = test.left, test.ops, test.comparators
        if isinstance(op, ast.Is):
            if isinstance(left, ast.Name) and left.id == name:
                return isinstance(right, ast.Constant) and right.value is None
            if isinstance(right, ast.Name) and right.id == name:
                return isinstance(left, ast.Constant) and left.value is None
    return False


class TelemetryGuardRule(Rule):
    id = "RPR003"
    name = "zero-overhead-guard"
    description = (
        "telemetry records in fastpath/ and core/ hot modules must go through "
        "one current() fetch guarded by a truthiness/None check — no repeated "
        "current() attribute chains, no unguarded records"
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.in_dir("src/repro/fastpath") or module.in_dir("src/repro/core")

    def check_module(self, module: LintModule) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        fetch_aliases = {
            alias
            for alias, target in imports.aliases.items()
            if target in _FETCH_CALLS
        }

        def is_fetch(call: ast.AST) -> bool:
            return isinstance(call, ast.Call) and (
                imports.resolve_call(call) in _FETCH_CALLS
                or (isinstance(call.func, ast.Name) and call.func.id in fetch_aliases)
            )

        # Session variables: every name ever assigned from a current() fetch.
        session_names: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and is_fetch(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        session_names.add(target.id)

        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RECORD_METHODS
            ):
                continue
            receiver = node.func.value
            if is_fetch(receiver):
                yield module.finding(
                    self.id,
                    node,
                    f"telemetry `{node.func.attr}` called directly on a current() "
                    "fetch — hot paths fetch the session once into a local and "
                    "guard records with `if tel is not None`",
                )
                continue
            if not (isinstance(receiver, ast.Name) and receiver.id in session_names):
                continue
            if not self._is_guarded(module, node, receiver.id):
                yield module.finding(
                    self.id,
                    node,
                    f"telemetry `{node.func.attr}` on `{receiver.id}` is not "
                    "dominated by a None guard — wrap it in `if "
                    f"{receiver.id} is not None:` (or an `if {receiver.id} is "
                    "None: return` early exit) so the disabled path costs one "
                    "truthiness check",
                )

    def _is_guarded(self, module: LintModule, call: ast.Call, name: str) -> bool:
        parents = module.parents()
        # (a) an enclosing `if` whose taken branch narrows the name, or a
        # guarding conditional expression.
        child: ast.AST = call
        for ancestor in module.ancestors(call):
            if isinstance(ancestor, ast.If) and _test_narrows(ancestor.test, name):
                if child in ancestor.body or any(
                    self._contains(statement, child) for statement in ancestor.body
                ):
                    return True
            if isinstance(ancestor, ast.IfExp) and _test_narrows(ancestor.test, name):
                if child is ancestor.body or self._contains(ancestor.body, child):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            child = ancestor
        # (b) an earlier `if name is None: <leave scope>` in any enclosing
        # statement block before the call's statement.
        statement: ast.AST = call
        while statement in parents and not isinstance(statement, ast.stmt):
            statement = parents[statement]
        current: ast.AST = statement
        while isinstance(current, ast.stmt) or current is statement:
            parent = parents.get(current)
            if parent is None:
                break
            for block in ("body", "orelse", "finalbody"):
                siblings = getattr(parent, block, None)
                if not isinstance(siblings, list) or current not in siblings:
                    continue
                for earlier in siblings[: siblings.index(current)]:
                    if (
                        isinstance(earlier, ast.If)
                        and _test_is_none(earlier.test, name)
                        and _is_terminating(earlier.body)
                    ):
                        return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                break
            current = parent
        return False

    @staticmethod
    def _contains(root: ast.AST, node: ast.AST) -> bool:
        return any(candidate is node for candidate in ast.walk(root))

"""RPR006 — Overlay implementations must define the full protocol statically.

``isinstance(obj, Overlay)`` (a runtime-checkable Protocol) only checks
member *presence at runtime*, and only when something actually performs the
check — a topology missing ``fail_fraction`` routes fine until the first
failure sweep touches it.  This rule closes that gap statically:

* the required surface is parsed from the ``Overlay`` Protocol class in
  ``src/repro/overlay/protocol.py`` (single source of truth; a baked-in
  fallback list keeps the rule usable on fixture projects);
* any class that exposes ``compile_snapshot`` — by defining it or
  inheriting it from a repo base such as ``OverlayMixin`` — is claiming to
  be an Overlay, and must resolve every protocol member through its own
  body (methods, class attributes, properties, or ``self.x = ...``
  assignments) or its repo-local base classes.

The partial bases themselves (``repro/overlay/``) are exempt: the mixin
deliberately leaves ``space`` and the neighbour table to each protocol.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.devtools.findings import Finding
from repro.devtools.rules import LintModule, LintProject, Rule

__all__ = ["OverlayConformanceRule"]

#: Fallback protocol surface, used when overlay/protocol.py is not in the
#: linted tree (kept in sync by the unit tests against the parsed form).
FALLBACK_MEMBERS = (
    "space",
    "labels",
    "is_alive",
    "neighbors_of",
    "fail_node",
    "fail_fraction",
    "repair",
    "route",
    "compile_snapshot",
)

_PROTOCOL_PATH = "src/repro/overlay/protocol.py"


@dataclass
class _ClassInfo:
    name: str
    path: str
    line: int
    bases: tuple[str, ...]
    members: set[str] = field(default_factory=set)


def _class_members(node: ast.ClassDef) -> set[str]:
    """Every member a class body defines, including ``self.x = ...``."""
    members: set[str] = set()
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            members.add(statement.name)
            for inner in ast.walk(statement):
                if isinstance(inner, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        inner.targets if isinstance(inner, ast.Assign) else [inner.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            members.add(target.attr)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    members.add(target.id)
        elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            members.add(statement.target.id)
    return members


class OverlayConformanceRule(Rule):
    id = "RPR006"
    name = "overlay-conformance"
    description = (
        "classes used as Overlay (anything exposing compile_snapshot) must "
        "statically define the full protocol surface instead of relying on "
        "runtime isinstance checks"
    )

    def __init__(self) -> None:
        self._classes: dict[str, _ClassInfo] = {}
        self._protocol_members: tuple[str, ...] | None = None

    def applies_to(self, module: LintModule) -> bool:
        return module.in_dir("src")

    def check_module(self, module: LintModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
                for base in node.bases
            )
            info = _ClassInfo(
                name=node.name,
                path=module.path,
                line=node.lineno,
                bases=bases,
                members=_class_members(node),
            )
            # Simple-name keying: last definition wins, which is fine for a
            # repo that keeps class names unique (and errs towards silence).
            self._classes[node.name] = info
            if module.path == _PROTOCOL_PATH and node.name == "Overlay":
                self._protocol_members = tuple(
                    member for member in sorted(info.members) if not member.startswith("_")
                )
        return ()

    def _resolved_members(self, info: _ClassInfo, seen: set[str]) -> set[str]:
        members = set(info.members)
        for base in info.bases:
            if base in seen:
                continue
            seen.add(base)
            base_info = self._classes.get(base)
            if base_info is not None:
                members |= self._resolved_members(base_info, seen)
        return members

    def finalize(self, project: LintProject) -> Iterable[Finding]:
        required = self._protocol_members or FALLBACK_MEMBERS
        for info in self._classes.values():
            if info.path.startswith("src/repro/overlay/"):
                continue  # the protocol and the partial mixin bases themselves
            if "Protocol" in info.bases:
                continue
            resolved = self._resolved_members(info, {info.name})
            if "compile_snapshot" not in resolved:
                continue
            missing = [member for member in required if member not in resolved]
            if missing:
                yield Finding(
                    path=info.path,
                    line=info.line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"class `{info.name}` exposes compile_snapshot (claims the "
                        "Overlay protocol) but does not statically define: "
                        + ", ".join(missing)
                        + " — define them (or inherit a repo base that does) "
                        "rather than relying on runtime isinstance checks"
                    ),
                )

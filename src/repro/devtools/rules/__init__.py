"""The lint rule catalog and the shared AST toolkit rules build on.

Each rule is a subclass of :class:`Rule` with a stable id (``RPR001`` ...),
a per-module visitor (:meth:`Rule.check_module`), and — for cross-file
invariants like registry drift — a :meth:`Rule.finalize` pass over the whole
project.  ``ALL_RULES`` is the ordered catalog the engine and the CLI share.

Adding a rule: subclass :class:`Rule` in a new module here, give it the next
``RPRnnn`` id, append an instance to ``ALL_RULES``, document it in the README
rule catalog, and add violating/clean/suppressed fixtures to
``tests/unit/test_devtools_rules.py`` — the self-check test will hold the
repo to it immediately.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.findings import Finding

__all__ = [
    "ALL_RULES",
    "ImportMap",
    "LintModule",
    "LintProject",
    "Rule",
    "dotted_name",
    "get_rule",
    "iter_calls",
    "rule_ids",
]


# ---------------------------------------------------------------------------
# What rules see: one parsed module, and the whole project
# ---------------------------------------------------------------------------


@dataclass
class LintModule:
    """One parsed source file under lint."""

    path: str  # repo-relative, posix separators
    abs_path: Path
    source: str
    tree: ast.Module
    _parents: dict[ast.AST, ast.AST] | None = field(default=None, repr=False)

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(self.path.split("/"))

    def in_dir(self, prefix: str) -> bool:
        """Whether the module lives under ``prefix`` (posix, repo-relative)."""
        prefix_parts = tuple(prefix.split("/"))
        return self.parts[: len(prefix_parts)] == prefix_parts

    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent map over the module AST (built on first use)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestor chain, innermost first."""
        parents = self.parents()
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The innermost function/async-function definition containing ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


@dataclass
class LintProject:
    """Everything a cross-file rule needs in :meth:`Rule.finalize`."""

    root: Path
    modules: list[LintModule]

    def read_text(self, relative: str) -> str | None:
        """Read a repo-relative non-Python file (e.g. README.md), if present."""
        path = self.root / relative
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None


class Rule:
    """Base class: one invariant, one stable id."""

    id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, module: LintModule) -> bool:
        """Path scope; rules narrow this to the layers their invariant covers."""
        return True

    def check_module(self, module: LintModule) -> Iterable[Finding]:
        """Per-module pass; yield findings (or collect state for finalize)."""
        return ()

    def finalize(self, project: LintProject) -> Iterable[Finding]:
        """Cross-file pass, run once after every module was checked."""
        return ()


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


class ImportMap:
    """Module-level import aliases, for resolving call targets.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Only top-level
    and function-level imports are collected (the whole tree is walked, so
    late imports inside functions resolve too).
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of ``dotted`` to its imported target."""
        head, _, rest = dotted.partition(".")
        target = self.aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_call(self, call: ast.Call) -> str | None:
        name = dotted_name(call.func)
        return self.resolve(name) if name else None


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------

from repro.devtools.rules.determinism import DeterminismRule  # noqa: E402
from repro.devtools.rules.telemetry_names import TelemetryNamesRule  # noqa: E402
from repro.devtools.rules.telemetry_guard import TelemetryGuardRule  # noqa: E402
from repro.devtools.rules.registry_drift import RegistryDriftRule  # noqa: E402
from repro.devtools.rules.array_hygiene import ArrayHygieneRule  # noqa: E402
from repro.devtools.rules.overlay_conformance import OverlayConformanceRule  # noqa: E402

#: The ordered rule catalog; ids are stable and never reused.
ALL_RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    TelemetryNamesRule(),
    TelemetryGuardRule(),
    RegistryDriftRule(),
    ArrayHygieneRule(),
    OverlayConformanceRule(),
)


def rule_ids() -> tuple[str, ...]:
    return tuple(rule.id for rule in ALL_RULES)


def get_rule(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id.upper():
            return rule
    raise KeyError(f"unknown lint rule {rule_id!r}; known: {', '.join(rule_ids())}")

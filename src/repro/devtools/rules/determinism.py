"""RPR001 — randomness and wall clocks must not leak into deterministic code.

Every guarantee the reproduction makes (engine parity, sweep byte-identity,
telemetry on/off identity) is a statement about *reproducible* executions,
so all randomness must flow through :mod:`repro.util.rng` seed derivation
and results must never depend on a wall clock:

* calls into the stdlib ``random`` module or the legacy global
  ``numpy.random.*`` API are flagged everywhere (the seeded
  ``np.random.Generator`` objects handed out by ``util.rng`` are fine —
  the rule flags the *global* entry points, not generator methods;
  ``np.random.default_rng(seed)`` with an explicit seed argument is
  deterministic and allowed, the zero-argument form is not);
* clock reads (``time.time`` / ``perf_counter`` / ``monotonic`` /
  ``process_time`` and their ``_ns`` variants, ``datetime.now`` /
  ``utcnow``) are flagged outside the telemetry layer, ``benchmarks/``,
  and the explicitly timing-opt-in modules listed in ``TIMING_OPT_IN``.

Clock reads that are only reachable with telemetry enabled (inside a
``tel is not None`` guard) are still flagged — suppress them with a
justified ``# repro: allow[RPR001]`` so the opt-in is visible in the diff.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.findings import Finding
from repro.devtools.rules import ImportMap, LintModule, Rule, iter_calls

__all__ = ["DeterminismRule"]

#: Fully-qualified call prefixes that produce unseeded randomness.
_RANDOM_PREFIXES = ("random.", "numpy.random.")
#: Fully-qualified clock-reading callables.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Modules that measure wall-clock time as an explicit, documented feature
#: (RunResult.seconds, the sweep timings side table, route-bench throughput).
#: Timing there is opt-in output, never an input to any computed result.
TIMING_OPT_IN = (
    "src/repro/scenarios/run.py",
    "src/repro/scenarios/sweep.py",
    "src/repro/experiments/cli.py",
)


class DeterminismRule(Rule):
    id = "RPR001"
    name = "determinism"
    description = (
        "no unseeded random.*/np.random.* calls, no wall-clock reads outside "
        "telemetry/benchmarks/timing-opt-in modules; randomness flows through "
        "util.rng seed derivation"
    )

    def applies_to(self, module: LintModule) -> bool:
        # util/rng.py is the one sanctioned np.random entry point.
        return module.path != "src/repro/util/rng.py"

    def _clocks_exempt(self, module: LintModule) -> bool:
        return (
            module.in_dir("benchmarks")
            or module.in_dir("src/repro/telemetry")
            or module.path in TIMING_OPT_IN
        )

    def check_module(self, module: LintModule) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        clocks_exempt = self._clocks_exempt(module)
        for call in iter_calls(module.tree):
            resolved = imports.resolve_call(call)
            if resolved is None:
                continue
            if resolved.startswith(_RANDOM_PREFIXES) or resolved == "random":
                if resolved == "numpy.random.default_rng" and (call.args or call.keywords):
                    # An explicitly seeded generator is deterministic.
                    continue
                yield module.finding(
                    self.id,
                    call,
                    f"unseeded randomness: `{resolved}` — draw through "
                    "repro.util.rng (derive_seed/spawn_rng/RandomSource) instead",
                )
            elif resolved in _CLOCK_CALLS and not clocks_exempt:
                yield module.finding(
                    self.id,
                    call,
                    f"wall-clock read: `{resolved}` outside telemetry/benchmarks/"
                    "timing-opt-in modules — results must not depend on the clock",
                )

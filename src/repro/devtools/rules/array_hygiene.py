"""RPR005 — array hygiene in the fastpath hot modules.

The fastpath's whole value proposition is staying vectorized; these are the
patterns that quietly give it back:

* ``np.append(...)`` anywhere — it copies the whole array per call; grow
  into a preallocated buffer or collect then concatenate once;
* accumulation via ``x = np.concatenate([... x ...])`` (also ``hstack`` /
  ``vstack``) — the classic quadratic append loop in disguise;
* a Python ``for`` loop (or comprehension) iterating an ndarray — directly
  over an ``np.*`` call, or over a local assigned from one; iterating an
  ndarray boxes every element into a NumPy scalar.  Iterating
  ``arr.tolist()`` is the sanctioned fast form and is exempt;
* ``.tolist()`` anywhere else on the hot path — an O(n) conversion that
  usually marks scalar code about to happen.  Exempt inside f-strings and
  ``raise`` statements (error messages are cold by definition); justified
  remaining uses carry a ``# repro: allow[RPR005]`` with their reason.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.findings import Finding
from repro.devtools.rules import ImportMap, LintModule, Rule, iter_calls

__all__ = ["ArrayHygieneRule"]

_CONCAT_FUNCS = frozenset({"numpy.concatenate", "numpy.hstack", "numpy.vstack"})


def _unwrap_iterable(node: ast.expr) -> ast.expr:
    """See through set()/sorted()/list()/tuple() wrappers around an iterable."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "sorted", "list", "tuple"}
        and node.args
    ):
        node = node.args[0]
    return node


def _is_tolist(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "tolist"
    )


def _names_in(node: ast.AST) -> set[str]:
    return {child.id for child in ast.walk(node) if isinstance(child, ast.Name)}


class ArrayHygieneRule(Rule):
    id = "RPR005"
    name = "array-hygiene"
    description = (
        "fastpath hot modules: no np.append, no concatenate-accumulation, no "
        "Python loops over ndarrays, no hot-path .tolist() (error messages "
        "and tolist-to-iterate are exempt)"
    )

    def applies_to(self, module: LintModule) -> bool:
        return module.in_dir("src/repro/fastpath")

    def check_module(self, module: LintModule) -> Iterable[Finding]:
        imports = ImportMap(module.tree)

        def resolved_np(call: ast.Call) -> str | None:
            name = imports.resolve_call(call)
            if name and name.startswith("numpy."):
                return name
            return None

        # Locals assigned from np.* calls, per enclosing function — the
        # cheap dataflow that catches `rows = np.flatnonzero(...); for r in rows:`.
        array_locals: dict[ast.AST | None, set[str]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if resolved_np(node.value):
                    scope = module.enclosing_function(node)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            array_locals.setdefault(scope, set()).add(target.id)

        exempt_tolist: set[ast.Call] = set()
        for node in ast.walk(module.tree):
            # tolist-to-iterate: `for x in arr.tolist():` (possibly wrapped
            # in set()/sorted()) is the sanctioned fast iteration form.
            iterables: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(generator.iter for generator in node.generators)
            for iterable in iterables:
                unwrapped = _unwrap_iterable(iterable)
                if _is_tolist(unwrapped):
                    exempt_tolist.add(unwrapped)
            # Cold contexts: f-strings and raise statements.
            if isinstance(node, (ast.JoinedStr, ast.Raise)):
                for child in ast.walk(node):
                    if isinstance(child, ast.Call) and _is_tolist(child):
                        exempt_tolist.add(child)

        for call in iter_calls(module.tree):
            resolved = resolved_np(call)
            if resolved == "numpy.append":
                yield module.finding(
                    self.id,
                    call,
                    "np.append copies the whole array per call — preallocate or "
                    "collect parts and concatenate once",
                )
            elif resolved in _CONCAT_FUNCS:
                assign = module.parents().get(call)
                while isinstance(assign, (ast.Call, ast.expr)):
                    assign = module.parents().get(assign)
                if isinstance(assign, (ast.Assign, ast.AugAssign)):
                    targets = (
                        assign.targets if isinstance(assign, ast.Assign) else [assign.target]
                    )
                    target_names = {
                        target.id for target in targets if isinstance(target, ast.Name)
                    }
                    if isinstance(assign, ast.AugAssign) or (
                        target_names & _names_in(call)
                    ):
                        short = resolved.rsplit(".", 1)[-1]
                        yield module.finding(
                            self.id,
                            call,
                            f"quadratic accumulation: reassigning a name with "
                            f"np.{short} of itself copies everything each "
                            "iteration — collect parts and concatenate once",
                        )
            elif _is_tolist(call) and call not in exempt_tolist:
                yield module.finding(
                    self.id,
                    call,
                    ".tolist() on the hot path is an O(n) conversion — keep the "
                    "computation vectorized (f-string/raise error messages and "
                    "tolist-to-iterate loops are exempt)",
                )

        for node in ast.walk(module.tree):
            iterables = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(generator.iter for generator in node.generators)
            for iterable in iterables:
                unwrapped = _unwrap_iterable(iterable)
                if isinstance(unwrapped, ast.Call) and resolved_np(unwrapped):
                    yield module.finding(
                        self.id,
                        unwrapped,
                        f"Python loop over `{resolved_np(unwrapped)}` result iterates an "
                        "ndarray element by element — vectorize, or iterate "
                        "`.tolist()` if a scalar loop is unavoidable",
                    )
                elif isinstance(unwrapped, ast.Name):
                    scope = module.enclosing_function(node)
                    if unwrapped.id in array_locals.get(scope, set()):
                        yield module.finding(
                            self.id,
                            unwrapped,
                            f"Python loop over ndarray `{unwrapped.id}` iterates it "
                            "element by element — vectorize, or iterate "
                            "`.tolist()` if a scalar loop is unavoidable",
                        )

"""Project-specific static analysis: ``repro lint`` and ``repro analyze``.

The repository's guarantees — engine parity, serial==parallel sweep
byte-identity, telemetry on/off result identity, the snapshot dtype
contract — are *determinism contracts*.  Property tests enforce them
dynamically; this package enforces their source-level preconditions
statically, so a violation is caught at lint time instead of waiting for a
seed (or a million-node space) to hit it.

Layout:

* :mod:`repro.devtools.findings` — the :class:`Finding` record and the JSON
  report schema;
* :mod:`repro.devtools.suppressions` — ``# repro: allow[RULE-ID]`` inline
  suppression parsing and unused-suppression detection;
* :mod:`repro.devtools.engine` — the file walker / rule driver;
* :mod:`repro.devtools.rules` — the rule catalog (RPR001..RPR006);
* :mod:`repro.devtools.reporters` — ``file:line`` text and JSON output;
* :mod:`repro.devtools.cli` — the ``repro lint`` subcommand;
* :mod:`repro.devtools.analyze` — the ``repro analyze`` dtype/shape dataflow
  analyzer (check family RPA101..RPA104) enforcing the snapshot dtype
  contract from :mod:`repro.fastpath.dtypes`.

Run them as ``repro lint`` / ``repro analyze`` with the shared option
surface ``[--format text|json] [--select/--ignore ID] [PATHS]``; exit code
0 means clean, 1 means findings, 2 means usage error.
"""

from repro.devtools.engine import LintEngine, LintResult
from repro.devtools.findings import LINT_SCHEMA, Finding
from repro.devtools.rules import ALL_RULES, Rule, get_rule, rule_ids
from repro.devtools.suppressions import Suppression, parse_suppressions

__all__ = [
    "ALL_RULES",
    "Finding",
    "LINT_SCHEMA",
    "LintEngine",
    "LintResult",
    "Rule",
    "Suppression",
    "get_rule",
    "parse_suppressions",
    "rule_ids",
]

"""The :class:`Finding` record every lint rule emits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["LINT_SCHEMA", "UNUSED_SUPPRESSION_ID", "Finding"]

#: Schema version stamped into the JSON report envelope.
LINT_SCHEMA = "repro.lint/v1"

#: Pseudo-rule id for suppression comments that matched no finding.  It is
#: reported like any rule (and honours ``--select`` / ``--ignore``) but can
#: never itself be suppressed — a suppression of a suppression is noise.
UNUSED_SUPPRESSION_ID = "RPR000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a repo-relative ``path:line``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule=str(data["rule"]),
            message=str(data["message"]),
        )

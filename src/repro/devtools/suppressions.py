"""Inline ``# repro: allow[RULE-ID]`` suppressions.

Syntax (comma-separated ids, optional free-text justification after the
bracket)::

    graph.mutate()  # repro: allow[RPR001] wall clock is compared cross-process
    # repro: allow[RPR005] list.index on a tiny segment beats flatnonzero
    seg.tolist().index(value)

A suppression applies to the physical line it sits on; a *standalone*
suppression comment (nothing but the comment on its line) also covers the
next line, so multi-clause statements can carry their justification above
rather than as an end-of-line tail.  Suppressions that match no finding are
themselves reported (``RPR000``) — a stale ``allow`` silently rotting in the
tree is exactly the drift this linter exists to catch.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "parse_suppressions"]

_ALLOW = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]")


@dataclass
class Suppression:
    """One parsed ``allow`` comment and the lines it covers."""

    line: int
    rules: frozenset[str]
    #: Physical lines this suppression applies to (its own, plus the next
    #: line when the comment stands alone).
    covers: frozenset[int]
    used: bool = field(default=False, compare=False)

    def matches(self, rule: str, line: int) -> bool:
        return rule in self.rules and line in self.covers


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every ``# repro: allow[...]`` comment via the tokenizer.

    Tokenizing (rather than regexing raw lines) means an ``allow`` spelled
    inside a string literal is *not* a suppression — fixture snippets in
    tests can mention the syntax without disarming the linter.
    """
    suppressions: list[Suppression] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW.search(token.string)
            if not match:
                continue
            rules = frozenset(
                part.strip().upper() for part in match.group(1).split(",") if part.strip()
            )
            if not rules:
                continue
            line = token.start[0]
            standalone = token.line[: token.start[1]].strip() == ""
            covers = frozenset({line, line + 1}) if standalone else frozenset({line})
            suppressions.append(Suppression(line=line, rules=rules, covers=covers))
    except tokenize.TokenError:
        # Unterminated constructs: keep whatever was parsed before the error;
        # the engine reports the syntax problem separately.
        pass
    return suppressions

"""The ``repro analyze`` check catalog (the RPA1xx family).

Unlike the lint rules (independent AST visitors), every analyze check is a
probe the one dataflow interpreter fires while walking a module; this module
holds their stable ids, the catalog the CLI lists, and the dtype contract
the RPA102 check enforces — imported straight from
:mod:`repro.fastpath.dtypes`, so the analyzer and the runtime share a single
source of truth.

Adding a check: give it the next ``RPAnnn`` id here, emit it from the
interpreter (:mod:`repro.devtools.analyze.interp`), document it in the
README check catalog, and add violating/clean/suppressed fixtures to
``tests/unit/test_devtools_analyze.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fastpath.dtypes import SNAPSHOT_CONTRACT

__all__ = [
    "ALL_CHECKS",
    "ANALYZE_UNUSED_SUPPRESSION_ID",
    "Check",
    "SILENT_UPCAST",
    "CONTRACT_MISMATCH",
    "DEFAULT_DTYPE",
    "MIXED_CONCAT",
    "check_ids",
    "get_check",
    "snapshot_field_contract",
    "mirror_field_contract",
]

#: Pseudo-check id for ``# repro: allow[RPA...]`` comments that matched no
#: finding; mirrors the linter's RPR000 and is equally unsuppressable.
ANALYZE_UNUSED_SUPPRESSION_ID = "RPA000"

SILENT_UPCAST = "RPA101"
CONTRACT_MISMATCH = "RPA102"
DEFAULT_DTYPE = "RPA103"
MIXED_CONCAT = "RPA104"


@dataclass(frozen=True)
class Check:
    """One analyzer check: a stable id, a short name, what it catches."""

    id: str
    name: str
    description: str


#: The ordered check catalog; ids are stable and never reused.
ALL_CHECKS: tuple[Check, ...] = (
    Check(
        SILENT_UPCAST,
        "silent-upcast",
        "integer arrays of definitely different widths combine (the narrow "
        "side is silently widened), or an int8/int16/int32 sum/cumsum "
        "without dtype=/out= promotes to the platform intp",
    ),
    Check(
        CONTRACT_MISMATCH,
        "contract-mismatch",
        "a snapshot or mirror array field is built with a dtype outside its "
        "declared contract in repro/fastpath/dtypes.py",
    ),
    Check(
        DEFAULT_DTYPE,
        "default-dtype-constructor",
        "an array constructor without dtype= takes a platform-dependent "
        "default (zeros/ones/empty/full/arange, or array/asarray of a "
        "non-array operand)",
    ),
    Check(
        MIXED_CONCAT,
        "mixed-dtype-concatenate",
        "concatenate/stack/where over operands of definitely different "
        "integer widths silently promotes every element to the widest",
    ),
)


def check_ids() -> tuple[str, ...]:
    return tuple(check.id for check in ALL_CHECKS)


def get_check(check_id: str) -> Check:
    for check in ALL_CHECKS:
        if check.id == check_id.upper():
            return check
    raise KeyError(
        f"unknown analyze check {check_id!r}; known: {', '.join(check_ids())}"
    )


def snapshot_field_contract() -> dict[str, frozenset]:
    """``FastpathSnapshot`` constructor-kwarg name -> admissible dtype names."""
    return {
        entry.field: frozenset(entry.dtypes)
        for entry in SNAPSHOT_CONTRACT
        if entry.owner == "FastpathSnapshot"
    }


def mirror_field_contract() -> dict[str, frozenset]:
    """Mirror attribute name -> admissible dtype names (DeltaSnapshot/_Slab).

    Keyed by bare attribute name: the mirror fields are distinctive
    (``_left``, ``_right``, ``data``, ``flags``, ...) and only assigned in
    ``repro/fastpath/delta.py``, so attribute-store checks match on the
    name alone.
    """
    return {
        entry.field: frozenset(entry.dtypes)
        for entry in SNAPSHOT_CONTRACT
        if entry.owner in ("DeltaSnapshot", "_Slab")
    }

"""``repro analyze`` — NumPy dtype/shape dataflow analysis for the repo.

The linter (:mod:`repro.devtools.rules`) checks *syntactic* invariants; this
package checks a *semantic* one: every array the fastpath, faults, and
overlay packages build carries the dtype the snapshot contract in
:mod:`repro.fastpath.dtypes` declares.  An abstract interpreter
(:mod:`~repro.devtools.analyze.interp`) walks each module's AST with
per-binding dtype lattice values and intraprocedural call summaries, and
fires the RPA1xx checks (:mod:`~repro.devtools.analyze.checks`) where a
violation is definite.  Findings flow through the same
:class:`~repro.devtools.findings.Finding` / reporter / ``# repro:
allow[...]`` suppression machinery as ``repro lint``.
"""

from repro.devtools.analyze.checks import (
    ALL_CHECKS,
    ANALYZE_UNUSED_SUPPRESSION_ID,
    Check,
    check_ids,
    get_check,
)
from repro.devtools.analyze.engine import ANALYZE_SCHEMA, AnalysisResult, AnalyzeEngine
from repro.devtools.analyze.values import AbstractValue, definitely_widens, join, promote_sets

__all__ = [
    "ALL_CHECKS",
    "ANALYZE_SCHEMA",
    "ANALYZE_UNUSED_SUPPRESSION_ID",
    "AbstractValue",
    "AnalysisResult",
    "AnalyzeEngine",
    "Check",
    "check_ids",
    "definitely_widens",
    "get_check",
    "join",
    "promote_sets",
]

"""The dataflow interpreter behind ``repro analyze``.

One abstract interpreter walks each module's AST (the same parse the lint
engine takes), tracking an :class:`~repro.devtools.analyze.values.AbstractValue`
per binding and firing the RPA1xx checks at the expressions where dtype
facts become definite.  The design rules:

* **Intraprocedural with call summaries** — each function body is analyzed
  with its parameters unknown; its joined return value is recorded under
  the function's dotted name and re-used at call sites (two global passes
  reach the fixed point the repo's import graph needs).  Methods are also
  published under their bare name when it is unique across every analyzed
  class (``labels_compact``, ``gather``, ...), which resolves
  ``snapshot.labels_compact()``-style calls without type inference.
* **Branches join, loops run twice** — ``if`` analyzes both arms and joins;
  loops analyze their body twice (enough for the joins to stabilise over
  the lattice's one level of dtype-set growth) and duplicate findings are
  deduplicated by the engine.
* **Checks fire only on definite facts** — unknown kinds and empty dtype
  sets never produce findings, so coarse summaries cost recall, never
  precision.

NumPy semantics modeled: constructor ``dtype=`` kwargs, ``astype``,
``asarray`` pass-through, NEP 50 binary-op promotion (weak Python scalars
never widen arrays), platform-default constructors, ``searchsorted`` /
``nonzero`` / ``argsort`` / ``cumsum`` result dtypes (``intp``), reductions'
``dtype=``/``out=`` escapes, and indexing/slicing rank changes.
"""

from __future__ import annotations

import ast
from typing import Iterable

import numpy as np

from repro.devtools.analyze.checks import (
    CONTRACT_MISMATCH,
    DEFAULT_DTYPE,
    MIXED_CONCAT,
    SILENT_UPCAST,
    mirror_field_contract,
    snapshot_field_contract,
)
from repro.devtools.analyze.values import (
    ARRAY,
    DTYPE,
    PYLIST,
    SCALAR,
    SELF,
    UNKNOWN,
    WEAK_SCALAR,
    AbstractValue,
    array_of,
    definitely_widens,
    dtype_of,
    join,
    narrow_int_only,
    promote_sets,
    pylist,
    scalar_of,
    self_value,
)
from repro.devtools.findings import Finding
from repro.devtools.rules import ImportMap, LintModule, dotted_name

__all__ = ["SharedAnalysisState", "ModuleAnalyzer", "module_name_for"]

#: Sentinel for bare method names defined by more than one analyzed class.
_AMBIGUOUS = object()

#: numpy attribute -> canonical dtype name (``np.intp`` et al. normalise to
#: the CI platform's 64-bit layout; the analyzer targets the repo's CI, not
#: arbitrary ABIs, and flags reliance on these via RPA101/RPA103 anyway).
_NUMPY_DTYPE_ATTRS = {
    "bool_": "bool",
    "int8": "int8",
    "int16": "int16",
    "int32": "int32",
    "int64": "int64",
    "uint8": "uint8",
    "uint16": "uint16",
    "uint32": "uint32",
    "uint64": "uint64",
    "intp": "int64",
    "int_": "int64",
    "intc": "int32",
    "longlong": "int64",
    "float16": "float16",
    "float32": "float32",
    "float64": "float64",
    "single": "float32",
    "double": "float64",
}

_BUILTIN_DTYPE_NAMES = {"bool": "bool", "int": "int64", "float": "float64"}

#: Constructors whose missing ``dtype=`` is always platform-dependent.
_DEFAULT_CONSTRUCTORS = {"zeros", "ones", "empty", "full", "arange"}
#: ``*_like`` constructors inherit their operand's dtype when ``dtype=`` is absent.
_LIKE_CONSTRUCTORS = {"zeros_like", "ones_like", "empty_like", "full_like"}
#: Conversion constructors: pass arrays through, flag non-array operands.
_ARRAY_CONSTRUCTORS = {"array", "asarray", "asanyarray", "ascontiguousarray", "asfortranarray"}
#: Functions whose result is the platform ``intp`` by definition (modeled,
#: not flagged — positions/counts are what intp is for).
_INTP_FUNCS = {
    "searchsorted", "argsort", "argmin", "argmax", "flatnonzero",
    "count_nonzero", "bincount", "digitize",
}
#: First-operand dtype pass-through functions.
_SAME_DTYPE_FUNCS = {
    "diff", "repeat", "take", "sort", "unique", "flip", "roll", "copy",
    "abs", "absolute", "negative", "clip", "tile", "squeeze", "ravel",
    "reshape", "transpose", "atleast_1d", "take_along_axis", "broadcast_to",
    "expand_dims", "ediff1d",
}
#: Element-wise two-operand functions that promote like a binary operator.
_BINOP_FUNCS = {"minimum", "maximum", "fmin", "fmax", "add", "subtract",
                "multiply", "floor_divide", "mod", "remainder"}
#: Boolean-result functions.
_BOOL_FUNCS = {"isin", "logical_and", "logical_or", "logical_not",
               "logical_xor", "isnan", "isfinite", "equal", "not_equal",
               "less", "less_equal", "greater", "greater_equal"}
#: Float64-result functions (mean-like reductions and transcendentals).
_FLOAT_FUNCS = {"mean", "std", "var", "sqrt", "log", "log2", "log10", "exp",
                "ceil", "floor"}
_REDUCTIONS = {"sum", "cumsum", "prod", "cumprod"}
_CONCAT_FUNCS = {"concatenate", "stack", "hstack", "vstack", "column_stack", "dstack"}

_SAME_DTYPE_METHODS = {
    "copy", "ravel", "flatten", "reshape", "transpose", "squeeze", "clip",
    "round", "repeat", "take", "min", "max", "byteswap",
}
_INTP_METHODS = {"argmin", "argmax", "argsort", "searchsorted", "nonzero"}


def module_name_for(path: str) -> str:
    """Dotted module name of a repo-relative posix path (src/ stripped)."""
    parts = list(path.split("/"))
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class SharedAnalysisState:
    """Summaries and globals shared across every module of one run."""

    def __init__(self) -> None:
        #: dotted function name -> joined return value.
        self.summaries: dict[str, AbstractValue] = {}
        #: module-level binding name (dotted) -> value.
        self.globals: dict[str, AbstractValue] = {}
        #: bare method name -> summary, or _AMBIGUOUS when classes collide.
        self.methods: dict[str, object] = {}
        self._method_owner: dict[str, str] = {}

    def record_method(self, owner: str, name: str, summary: AbstractValue) -> None:
        previous = self._method_owner.get(name)
        if previous is None or previous == owner:
            self._method_owner[name] = owner
            self.methods[name] = summary
        else:
            self.methods[name] = _AMBIGUOUS

    def method_summary(self, name: str) -> AbstractValue | None:
        summary = self.methods.get(name)
        if summary is None or summary is _AMBIGUOUS:
            return None
        return summary  # type: ignore[return-value]


class ModuleAnalyzer:
    """Analyze one parsed module: collect summaries and (optionally) report."""

    def __init__(
        self,
        module: LintModule,
        shared: SharedAnalysisState,
        report: bool = False,
    ) -> None:
        self.module = module
        self.shared = shared
        self.report = report
        self.module_name = module_name_for(module.path)
        self.imports = ImportMap(module.tree)
        self.findings: list[Finding] = []
        self._returns: list[AbstractValue] = []
        self._self_class: str | None = None
        self._snapshot_contract = snapshot_field_contract()
        self._mirror_contract = mirror_field_contract()

    # -- entry point ---------------------------------------------------------

    def run(self) -> list[Finding]:
        env: dict[str, AbstractValue] = {}
        self._exec_body(
            [stmt for stmt in self.module.tree.body
             if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))],
            env,
        )
        for name, value in env.items():
            self.shared.globals[f"{self.module_name}.{name}"] = value
        for stmt in self.module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary = self._analyze_function(stmt, env, self_class=None)
                self.shared.summaries[f"{self.module_name}.{stmt.name}"] = summary
            elif isinstance(stmt, ast.ClassDef):
                owner = f"{self.module_name}.{stmt.name}"
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        summary = self._analyze_function(sub, env, self_class=stmt.name)
                        self.shared.summaries[f"{owner}.{sub.name}"] = summary
                        self.shared.record_method(owner, sub.name, summary)
        return self.findings

    def _analyze_function(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, module_env: dict, self_class: str | None
    ) -> AbstractValue:
        env = dict(module_env)
        args = fn.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for index, param in enumerate(params):
            if index == 0 and self_class is not None and param.arg == "self":
                env[param.arg] = self_value()
            else:
                env[param.arg] = UNKNOWN
        if args.vararg:
            env[args.vararg.arg] = UNKNOWN
        if args.kwarg:
            env[args.kwarg.arg] = UNKNOWN
        previous_class = self._self_class
        previous_returns = self._returns
        self._self_class = self_class
        self._returns = []
        try:
            self._exec_body(fn.body, env)
            returns = self._returns
        finally:
            self._self_class = previous_class
            self._returns = previous_returns
        if not returns:
            return UNKNOWN
        summary = returns[0]
        for value in returns[1:]:
            summary = join(summary, value)
        return summary

    # -- findings ------------------------------------------------------------

    def _emit(self, check: str, node: ast.AST, message: str) -> None:
        if self.report:
            self.findings.append(self.module.finding(check, node, message))

    # -- statements ----------------------------------------------------------

    def _exec_body(self, body: Iterable[ast.stmt], env: dict) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: dict) -> None:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval(stmt.target, env) if isinstance(stmt.target, (ast.Name, ast.Attribute, ast.Subscript)) else UNKNOWN
            operand = self.eval(stmt.value, env)
            result = self._binop_result(stmt, current, operand)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = result
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
            else:
                value = UNKNOWN
            if stmt.value is not None and value.kind == UNKNOWN.kind:
                value = self._value_from_annotation(stmt.annotation, value)
            if stmt.value is not None:
                self._bind(stmt.target, value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self._exec_body(stmt.body, then_env)
            self._exec_body(stmt.orelse, else_env)
            self._merge(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            before = dict(env)
            self._bind(stmt.target, UNKNOWN, env)
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.orelse, env)
            self._merge_loop(env, before)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            before = dict(env)
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.body, env)
            self._exec_body(stmt.orelse, env)
            self._merge_loop(env, before)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN, env)
            self._exec_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body, env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name:
                    handler_env[handler.name] = UNKNOWN
                self._exec_body(handler.body, handler_env)
                self._merge(env, env, handler_env)
            self._exec_body(stmt.orelse, env)
            self._exec_body(stmt.finalbody, env)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, env) if stmt.value is not None else UNKNOWN
            returns = getattr(self, "_returns", None)
            if returns is not None:
                returns.append(value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            if stmt.msg is not None:
                self.eval(stmt.msg, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs (e.g. local scatter helpers) only close over state
            # already checked in this scope; their bodies are not re-analyzed.
            env[stmt.name] = UNKNOWN
        elif isinstance(stmt, ast.ClassDef):
            env[stmt.name] = UNKNOWN
        # Pass/Break/Continue/Import/Global/Nonlocal: no dataflow effect
        # (imports are pre-resolved by the module-wide ImportMap).

    def _merge(self, env: dict, left: dict, right: dict) -> None:
        merged: dict[str, AbstractValue] = {}
        for key in set(left) | set(right):
            a = left.get(key)
            b = right.get(key)
            if a is None:
                merged[key] = b  # type: ignore[assignment]
            elif b is None:
                merged[key] = a
            else:
                merged[key] = join(a, b)
        env.clear()
        env.update(merged)

    def _merge_loop(self, env: dict, before: dict) -> None:
        for key, value in before.items():
            if key in env:
                env[key] = join(env[key], value)

    def _bind(self, target: ast.expr, value: AbstractValue, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, UNKNOWN, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN, env)
        elif isinstance(target, ast.Attribute):
            self._check_mirror_store(target, value)
        elif isinstance(target, ast.Subscript):
            self.eval(target.value, env)
            self.eval(target.slice, env)

    def _check_mirror_store(self, target: ast.Attribute, value: AbstractValue) -> None:
        allowed = self._mirror_contract.get(target.attr)
        if allowed is None or not value.is_definite_array:
            return
        if value.dtypes & allowed:
            return
        self._emit(
            CONTRACT_MISMATCH,
            target,
            f"mirror field `{target.attr}` assigned dtype "
            f"{'|'.join(sorted(value.dtypes))}, contract allows "
            f"{'|'.join(sorted(allowed))} (repro/fastpath/dtypes.py)",
        )

    def _value_from_annotation(self, annotation: ast.expr, fallback: AbstractValue) -> AbstractValue:
        text = ast.unparse(annotation) if annotation is not None else ""
        if text.startswith(("list", "List", "tuple", "Tuple", "set", "Set")):
            return pylist()
        return fallback

    # -- expressions ---------------------------------------------------------

    def eval(self, node: ast.expr | None, env: dict) -> AbstractValue:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (bool, int, float, complex)):
                return WEAK_SCALAR
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return self._resolve_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self._binop_result(node, left, right)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.Not):
                return WEAK_SCALAR
            return operand
        if isinstance(node, ast.BoolOp):
            values = [self.eval(value, env) for value in node.values]
            if any(value.kind == ARRAY for value in values):
                return array_of("bool")
            return WEAK_SCALAR
        if isinstance(node, ast.Compare):
            left = self.eval(node.left, env)
            rights = [self.eval(comp, env) for comp in node.comparators]
            if left.kind == ARRAY or any(value.kind == ARRAY for value in rights):
                rank = left.rank if left.kind == ARRAY else None
                return array_of("bool", rank=rank)
            return WEAK_SCALAR
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            self.eval(node.slice, env)
            if base.kind == ARRAY:
                rank = base.rank if isinstance(node.slice, ast.Slice) else None
                return AbstractValue(ARRAY, base.dtypes, rank, base.platform_default)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for element in node.elts:
                self.eval(element, env)
            return pylist()
        if isinstance(node, ast.Dict):
            for key in node.keys:
                self.eval(key, env)
            for value in node.values:
                self.eval(value, env)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            return self._eval_comprehension(node, env)
        if isinstance(node, ast.Slice):
            self.eval(node.lower, env)
            self.eval(node.upper, env)
            self.eval(node.step, env)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.eval(value.value, env)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            env[node.target.id] = value
            return value
        return UNKNOWN

    def _eval_comprehension(self, node: ast.expr, env: dict) -> AbstractValue:
        child = dict(env)
        for generator in node.generators:  # type: ignore[attr-defined]
            self.eval(generator.iter, child)
            self._bind(generator.target, UNKNOWN, child)
            for condition in generator.ifs:
                self.eval(condition, child)
        if isinstance(node, ast.DictComp):
            self.eval(node.key, child)
            self.eval(node.value, child)
            return UNKNOWN
        self.eval(node.elt, child)  # type: ignore[attr-defined]
        return pylist() if isinstance(node, ast.ListComp) else UNKNOWN

    # -- names, attributes ---------------------------------------------------

    def _resolve_name(self, name: str) -> AbstractValue:
        resolved = self.imports.resolve(name)
        value = self.shared.globals.get(resolved)
        if value is not None:
            return value
        if resolved == name:
            value = self.shared.globals.get(f"{self.module_name}.{name}")
            if value is not None:
                return value
        return self._numpy_attr_value(resolved)

    def _numpy_attr_value(self, resolved: str) -> AbstractValue:
        if resolved.startswith("numpy."):
            attr = resolved[len("numpy."):]
            canonical = _NUMPY_DTYPE_ATTRS.get(attr)
            if canonical is not None:
                return dtype_of(canonical)
        return UNKNOWN

    def _eval_attribute(self, node: ast.Attribute, env: dict) -> AbstractValue:
        dotted = dotted_name(node)
        if dotted is not None:
            head = dotted.split(".", 1)[0]
            if head not in env:
                resolved = self.imports.resolve(dotted)
                value = self.shared.globals.get(resolved)
                if value is not None:
                    return value
                return self._numpy_attr_value(resolved)
        base = self.eval(node.value, env)
        return self._attr_on_value(base, node.attr)

    def _attr_on_value(self, base: AbstractValue, attr: str) -> AbstractValue:
        if base.kind == SELF:
            contract = None
            if self._self_class == "FastpathSnapshot":
                contract = self._snapshot_contract.get(attr)
            elif self._self_class in ("DeltaSnapshot", "_Slab"):
                contract = self._mirror_contract.get(attr)
            if contract is not None:
                return array_of(*contract)
            return UNKNOWN
        if base.kind == ARRAY:
            if attr == "dtype":
                return dtype_of(*base.dtypes) if base.dtypes else AbstractValue(DTYPE)
            if attr == "T":
                return base
            if attr in ("size", "ndim", "nbytes", "itemsize"):
                return WEAK_SCALAR
        return UNKNOWN

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, call: ast.Call, env: dict) -> AbstractValue:
        arg_values = [self.eval(arg, env) for arg in call.args]
        kwarg_values = {kw.arg: self.eval(kw.value, env) for kw in call.keywords}

        func = call.func
        dotted = dotted_name(func)
        if dotted is not None:
            head = dotted.split(".", 1)[0]
            if head not in env:
                return self._call_resolved(
                    call, self.imports.resolve(dotted), arg_values, kwarg_values, env
                )
        if isinstance(func, ast.Attribute):
            base = self.eval(func.value, env)
            return self._method_call(call, func.attr, base, arg_values, kwarg_values, env)
        # Calls through arbitrary expressions (lambdas, subscripted tables).
        return UNKNOWN

    def _call_resolved(
        self,
        call: ast.Call,
        resolved: str,
        args: list[AbstractValue],
        kwargs: dict,
        env: dict,
    ) -> AbstractValue:
        if resolved.startswith("numpy."):
            return self._numpy_call(call, resolved[len("numpy."):], args, kwargs, env)
        summary = self.shared.summaries.get(resolved)
        if summary is None and "." not in resolved:
            summary = self.shared.summaries.get(f"{self.module_name}.{resolved}")
        tail = resolved.rsplit(".", 1)[-1]
        if tail == "FastpathSnapshot":
            self._check_snapshot_constructor(call, env)
            return UNKNOWN
        if summary is not None:
            return summary
        if tail in ("sorted", "list", "tuple", "set") and resolved == tail:
            return pylist()
        if tail in ("len", "int", "float", "bool", "sum", "max", "min", "abs", "round") and resolved == tail:
            return WEAK_SCALAR
        return UNKNOWN

    def _method_call(
        self,
        call: ast.Call,
        attr: str,
        base: AbstractValue,
        args: list[AbstractValue],
        kwargs: dict,
        env: dict,
    ) -> AbstractValue:
        if base.kind == DTYPE and attr == "type":
            return scalar_of(*base.dtypes)
        if base.kind == SELF and self._self_class is not None:
            summary = self.shared.summaries.get(
                f"{self.module_name}.{self._self_class}.{attr}"
            )
            if summary is not None:
                return summary
        if attr == "astype":
            names = self._dtype_names(call.args[0], env) if call.args else self._dtype_kwarg_names(call, env)
            rank = base.rank if base.kind == ARRAY else None
            return AbstractValue(ARRAY, names, rank)
        if base.kind == ARRAY:
            if attr in _SAME_DTYPE_METHODS:
                return AbstractValue(ARRAY, base.dtypes, None, base.platform_default)
            if attr in _REDUCTIONS:
                return self._reduction_result(call, attr, base, env)
            if attr in _INTP_METHODS:
                return array_of("int64", platform_default=True)
            if attr in ("all", "any"):
                return array_of("bool")
            if attr in ("mean", "std", "var"):
                return array_of("float64")
            if attr in ("tolist", "item"):
                return WEAK_SCALAR if attr == "item" else pylist()
            return UNKNOWN
        method = self.shared.method_summary(attr)
        if method is not None:
            return method
        return UNKNOWN

    def _numpy_call(
        self,
        call: ast.Call,
        name: str,
        args: list[AbstractValue],
        kwargs: dict,
        env: dict,
    ) -> AbstractValue:
        operand = args[0] if args else UNKNOWN
        if name == "dtype":
            return dtype_of(*self._dtype_names(call.args[0], env)) if call.args else AbstractValue(DTYPE)
        canonical = _NUMPY_DTYPE_ATTRS.get(name)
        if canonical is not None:
            return scalar_of(canonical)
        if name in _DEFAULT_CONSTRUCTORS:
            names = self._dtype_kwarg_names(call, env, positional=None)
            if not self._has_dtype_argument(call):
                self._emit(
                    DEFAULT_DTYPE,
                    call,
                    f"np.{name} without dtype= takes a platform-dependent "
                    f"default; state the contract dtype explicitly",
                )
                default = "float64" if name not in ("arange", "full") else "int64"
                return array_of(default, platform_default=True)
            return AbstractValue(ARRAY, names)
        if name in _LIKE_CONSTRUCTORS:
            if self._has_dtype_argument(call):
                return AbstractValue(ARRAY, self._dtype_kwarg_names(call, env))
            return AbstractValue(ARRAY, operand.dtypes, operand.rank, operand.platform_default)
        if name in _ARRAY_CONSTRUCTORS:
            if self._has_dtype_argument(call):
                return AbstractValue(ARRAY, self._dtype_kwarg_names(call, env))
            if operand.kind == ARRAY:
                return operand
            if operand.kind in (PYLIST, SCALAR):
                self._emit(
                    DEFAULT_DTYPE,
                    call,
                    f"np.{name} of a non-array operand without dtype= takes "
                    f"a platform-dependent default",
                )
                return AbstractValue(ARRAY, frozenset(), None, True)
            return AbstractValue(ARRAY)
        if name == "fromiter":
            # dtype is a required positional/keyword argument by signature.
            names = self._dtype_kwarg_names(call, env, positional=1)
            return AbstractValue(ARRAY, names, 1)
        if name in _INTP_FUNCS:
            return array_of("int64", platform_default=True)
        if name == "nonzero":
            return UNKNOWN  # tuple of intp arrays
        if name in _REDUCTIONS:
            return self._reduction_result(call, name, operand, env)
        if name in _SAME_DTYPE_FUNCS:
            return AbstractValue(ARRAY, operand.dtypes, None, operand.platform_default)
        if name in _BINOP_FUNCS:
            right = args[1] if len(args) > 1 else UNKNOWN
            return self._binop_result(call, operand, right)
        if name in _BOOL_FUNCS:
            return array_of("bool")
        if name in _FLOAT_FUNCS:
            return array_of("float64")
        if name in _CONCAT_FUNCS:
            return self._concat_result(call, env)
        if name == "where":
            return self._where_result(call, args)
        if name == "array_equal":
            return WEAK_SCALAR
        return UNKNOWN

    # -- dtype arguments -----------------------------------------------------

    def _has_dtype_argument(self, call: ast.Call) -> bool:
        return any(kw.arg == "dtype" for kw in call.keywords)

    def _dtype_kwarg_names(
        self, call: ast.Call, env: dict, positional: int | None = None
    ) -> frozenset:
        for kw in call.keywords:
            if kw.arg == "dtype":
                return self._dtype_names(kw.value, env)
        if positional is not None and len(call.args) > positional:
            return self._dtype_names(call.args[positional], env)
        return frozenset()

    def _dtype_names(self, node: ast.expr, env: dict) -> frozenset:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                return frozenset({np.dtype(node.value).name})
            except TypeError:
                return frozenset()
        if isinstance(node, ast.Name) and node.id not in env:
            builtin = _BUILTIN_DTYPE_NAMES.get(node.id)
            if builtin is not None:
                return frozenset({builtin})
        value = self.eval(node, env)
        if value.kind == DTYPE:
            return value.dtypes
        return frozenset()

    # -- the checks ----------------------------------------------------------

    def _binop_result(
        self, node: ast.AST, left: AbstractValue, right: AbstractValue
    ) -> AbstractValue:
        if left.kind == ARRAY and right.kind == ARRAY:
            if definitely_widens(left.dtypes, right.dtypes):
                self._emit(
                    SILENT_UPCAST,
                    node,
                    f"combining {'|'.join(sorted(left.dtypes))} with "
                    f"{'|'.join(sorted(right.dtypes))} arrays silently widens "
                    f"the narrow operand; align dtypes or cast explicitly",
                )
            rank = left.rank if left.rank == right.rank else None
            return AbstractValue(
                ARRAY,
                promote_sets(left.dtypes, right.dtypes),
                rank,
                left.platform_default or right.platform_default,
            )
        if left.kind == ARRAY:
            # NEP 50: weak Python scalars adopt the array's dtype; typed
            # scalars promote like a zero-dimensional array.
            if right.kind == SCALAR and right.dtypes:
                return AbstractValue(
                    ARRAY, promote_sets(left.dtypes, right.dtypes), left.rank
                )
            return left
        if right.kind == ARRAY:
            if left.kind == SCALAR and left.dtypes:
                return AbstractValue(
                    ARRAY, promote_sets(left.dtypes, right.dtypes), right.rank
                )
            return right
        if left.kind == SCALAR and right.kind == SCALAR:
            return WEAK_SCALAR if not (left.dtypes or right.dtypes) else AbstractValue(
                SCALAR, promote_sets(left.dtypes, right.dtypes) if left.dtypes and right.dtypes else (left.dtypes | right.dtypes)
            )
        return UNKNOWN

    def _reduction_result(
        self, call: ast.Call, name: str, operand: AbstractValue, env: dict
    ) -> AbstractValue:
        has_out = any(kw.arg == "out" for kw in call.keywords)
        if self._has_dtype_argument(call):
            return AbstractValue(ARRAY, self._dtype_kwarg_names(call, env))
        if has_out:
            return UNKNOWN
        if operand.kind == ARRAY and narrow_int_only(operand.dtypes):
            self._emit(
                SILENT_UPCAST,
                call,
                f"{name} on {'|'.join(sorted(operand.dtypes))} promotes to "
                f"the platform intp; pass dtype= or out= to pin the width",
            )
            return array_of("int64", platform_default=True)
        if operand.kind == ARRAY and operand.dtypes:
            if all(np.dtype(d).kind in "bi" for d in operand.dtypes):
                return array_of("int64", platform_default=True)
            return AbstractValue(ARRAY, operand.dtypes)
        return AbstractValue(ARRAY)

    def _concat_result(self, call: ast.Call, env: dict) -> AbstractValue:
        elements: list[AbstractValue] = []
        if call.args and isinstance(call.args[0], (ast.List, ast.Tuple)):
            elements = [self.eval(element, env) for element in call.args[0].elts]
        definite = [value for value in elements if value.is_definite_array]
        self._check_mixed(call, definite, "concatenating")
        if definite and len(definite) == len(elements):
            combined = definite[0].dtypes
            for value in definite[1:]:
                combined = promote_sets(combined, value.dtypes)
            return AbstractValue(ARRAY, combined)
        return AbstractValue(ARRAY)

    def _where_result(self, call: ast.Call, args: list[AbstractValue]) -> AbstractValue:
        if len(args) != 3:
            return UNKNOWN
        branches = [value for value in args[1:] if value.is_definite_array]
        self._check_mixed(call, branches, "selecting between")
        if len(branches) == 2:
            return AbstractValue(ARRAY, promote_sets(branches[0].dtypes, branches[1].dtypes))
        # A weak scalar branch adopts the array branch's dtype (NEP 50).
        array_branches = [value for value in args[1:] if value.kind == ARRAY]
        if len(array_branches) == 1 and all(
            value.kind == SCALAR and not value.dtypes
            for value in args[1:] if value is not array_branches[0]
        ):
            return array_branches[0]
        return AbstractValue(ARRAY)

    def _check_mixed(self, call: ast.Call, values: list[AbstractValue], verb: str) -> None:
        for index, left in enumerate(values):
            for right in values[index + 1:]:
                if definitely_widens(left.dtypes, right.dtypes):
                    self._emit(
                        MIXED_CONCAT,
                        call,
                        f"{verb} {'|'.join(sorted(left.dtypes))} and "
                        f"{'|'.join(sorted(right.dtypes))} operands promotes "
                        f"every element to the widest dtype",
                    )
                    return

    def _check_snapshot_constructor(self, call: ast.Call, env: dict) -> None:
        for kw in call.keywords:
            allowed = self._snapshot_contract.get(kw.arg or "")
            if allowed is None:
                continue
            value = self.eval(kw.value, env)
            if not value.is_definite_array:
                continue
            if value.dtypes & allowed:
                continue
            self._emit(
                CONTRACT_MISMATCH,
                kw.value,
                f"FastpathSnapshot field `{kw.arg}` built as "
                f"{'|'.join(sorted(value.dtypes))}, contract allows "
                f"{'|'.join(sorted(allowed))} (repro/fastpath/dtypes.py)",
            )

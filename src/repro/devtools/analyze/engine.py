"""The analyze driver: walk governed packages, interpret, report.

Mirrors :class:`repro.devtools.engine.LintEngine` deliberately — same file
walking, same ``# repro: allow[...]`` suppression machinery, same exit-code
contract — but the run itself is different: instead of independent rule
visitors, every module goes through the one dataflow interpreter, **three
times**.  The first two passes only collect function summaries (so call
sites across the import graph resolve regardless of file order); the third
pass re-interprets with reporting enabled.  Loop bodies are executed twice
per pass, so raw findings can repeat — the engine deduplicates before
sorting.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.analyze.checks import (
    ANALYZE_UNUSED_SUPPRESSION_ID,
    check_ids,
)
from repro.devtools.analyze.interp import ModuleAnalyzer, SharedAnalysisState
from repro.devtools.engine import discover_root
from repro.devtools.findings import Finding
from repro.devtools.rules import LintModule
from repro.devtools.suppressions import Suppression, parse_suppressions

__all__ = ["ANALYZE_SCHEMA", "AnalyzeEngine", "AnalysisResult", "discover_root"]

#: Schema version stamped into the JSON report envelope.
ANALYZE_SCHEMA = "repro.analyze/v1"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".claude"}

#: The packages whose dtype discipline the analyzer governs.  Anything the
#: snapshot contract flows through belongs here; tests and benchmarks are
#: exercised by the fixtures instead (they intentionally build odd dtypes).
_GOVERNED_TARGETS = (
    "src/repro/fastpath",
    "src/repro/faults",
    "src/repro/overlay",
)


@dataclass
class AnalysisResult:
    """Everything one analyze run produced."""

    findings: list[Finding]
    files_checked: int
    checks_run: tuple[str, ...]

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_dict(self) -> dict:
        return {
            "schema": ANALYZE_SCHEMA,
            "files_checked": self.files_checked,
            "checks_run": list(self.checks_run),
            "findings": [finding.to_dict() for finding in self.findings],
        }


@dataclass
class AnalyzeEngine:
    """One configured analyze run over the governed packages."""

    root: Path
    select: Sequence[str] | None = None
    ignore: Sequence[str] = ()
    _suppressions: dict[str, list[Suppression]] = field(default_factory=dict, repr=False)

    def selected_checks(self) -> tuple[str, ...]:
        """The check ids the select/ignore filters keep.

        Raises
        ------
        KeyError
            If a select/ignore id names no known check (RPA000 is accepted —
            it filters the unused-suppression pseudo-findings).
        """
        known = set(check_ids()) | {ANALYZE_UNUSED_SUPPRESSION_ID}
        requested = {check_id.upper() for check_id in (self.select or [])}
        ignored = {check_id.upper() for check_id in self.ignore}
        for check_id in requested | ignored:
            if check_id not in known:
                raise KeyError(
                    f"unknown analyze check {check_id!r}; known: {', '.join(sorted(known))}"
                )
        return tuple(
            check_id
            for check_id in check_ids()
            if (not requested or check_id in requested) and check_id not in ignored
        )

    def _unused_suppressions_selected(self) -> bool:
        requested = {check_id.upper() for check_id in (self.select or [])}
        ignored = {check_id.upper() for check_id in self.ignore}
        if ANALYZE_UNUSED_SUPPRESSION_ID in ignored:
            return False
        return not requested or ANALYZE_UNUSED_SUPPRESSION_ID in requested

    # -- file walking --------------------------------------------------------

    def walk(self, paths: Sequence[str | Path] = ()) -> list[Path]:
        """Every ``.py`` file under the given paths (default: governed packages)."""
        targets: list[Path] = []
        if paths:
            targets = [Path(path) for path in paths]
        else:
            targets = [
                self.root / name
                for name in _GOVERNED_TARGETS
                if (self.root / name).is_dir()
            ]
            if not targets:
                targets = [self.root / "src"]
        files: list[Path] = []
        for target in targets:
            target = target if target.is_absolute() else self.root / target
            if target.is_file() and target.suffix == ".py":
                files.append(target)
            elif target.is_dir():
                for candidate in sorted(target.rglob("*.py")):
                    if not any(part in _SKIP_DIRS for part in candidate.parts):
                        files.append(candidate)
        unique: dict[Path, None] = {}
        for file in files:
            unique.setdefault(file.resolve(), None)
        return list(unique)

    # -- the run -------------------------------------------------------------

    def run(self, paths: Sequence[str | Path] = ()) -> AnalysisResult:
        checks = self.selected_checks()
        modules: list[LintModule] = []
        raw_findings: list[Finding] = []
        self._suppressions = {}

        for abs_path in self.walk(paths):
            try:
                relative = abs_path.relative_to(self.root).as_posix()
            except ValueError:
                relative = abs_path.as_posix()
            source = abs_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(abs_path))
            except SyntaxError as error:
                raw_findings.append(
                    Finding(
                        path=relative,
                        line=error.lineno or 1,
                        col=(error.offset or 0) + 1,
                        rule="SYNTAX",
                        message=f"cannot parse: {error.msg}",
                    )
                )
                continue
            module = LintModule(path=relative, abs_path=abs_path, source=source, tree=tree)
            modules.append(module)
            self._suppressions[relative] = parse_suppressions(source)

        shared = SharedAnalysisState()
        # Two summary passes reach the fixed point for the repo's import
        # graph (summaries are one lattice level deep); the third reports.
        for _ in range(2):
            for module in modules:
                ModuleAnalyzer(module, shared, report=False).run()
        for module in modules:
            raw_findings.extend(ModuleAnalyzer(module, shared, report=True).run())

        selected = set(checks) | {"SYNTAX"}
        raw_findings = [f for f in raw_findings if f.rule in selected]
        findings = self._apply_suppressions(sorted(set(raw_findings)))
        if self._unused_suppressions_selected():
            findings.extend(self._unused_suppression_findings())
        findings.sort()
        return AnalysisResult(
            findings=findings,
            files_checked=len(modules),
            checks_run=checks,
        )

    def _apply_suppressions(self, findings: Iterable[Finding]) -> list[Finding]:
        kept: list[Finding] = []
        for finding in findings:
            suppressed = False
            for suppression in self._suppressions.get(finding.path, []):
                if suppression.matches(finding.rule, finding.line):
                    suppression.used = True
                    suppressed = True
            if not suppressed:
                kept.append(finding)
        return kept

    def _unused_suppression_findings(self) -> list[Finding]:
        unused: list[Finding] = []
        active = set(self.selected_checks())
        for path, suppressions in self._suppressions.items():
            for suppression in suppressions:
                if suppression.used:
                    continue
                # Only call a suppression stale when every check it names
                # actually ran — a lint-only `# repro: allow[RPR...]` (or a
                # deselected check) is out of scope for this run.
                if not suppression.rules <= active:
                    continue
                unused.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        col=1,
                        rule=ANALYZE_UNUSED_SUPPRESSION_ID,
                        message=(
                            "unused suppression: `# repro: allow["
                            + ",".join(sorted(suppression.rules))
                            + "]` matched no finding — remove it"
                        ),
                    )
                )
        return unused

"""The ``repro analyze`` subcommand.

Usage::

    repro analyze                             # governed packages from the repo root
    repro analyze --format json               # machine-readable report (repro.analyze/v1)
    repro analyze --select RPA103 src/repro/fastpath/snapshot.py
    repro analyze --ignore RPA000
    repro analyze --list-checks               # the check catalog, one line per check

Exit codes match ``repro lint``: **0** clean, **1** at least one finding,
**2** usage error (argparse errors and unknown ``--select``/``--ignore``
check ids).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.devtools.analyze.checks import ALL_CHECKS
from repro.devtools.analyze.engine import AnalysisResult, AnalyzeEngine, discover_root

__all__ = ["add_analyze_arguments", "run_analyze", "render_text", "render_json"]

USAGE_EXIT_CODE = 2


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro analyze`` options to an argparse subparser."""
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATHS",
        help=(
            "files or directories to analyze (default: src/repro/fastpath, "
            "src/repro/faults, src/repro/overlay at the repo root)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report encoding (default: file:line:col text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CHECK",
        help="run only these check ids (repeatable); RPA000 selects unused-suppression checks",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="CHECK",
        help="skip these check ids (repeatable)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="project root (default: nearest ancestor with a pyproject.toml)",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="print the check catalog and exit 0",
    )


def render_text(result: AnalysisResult) -> str:
    """One ``path:line:col: CHECK message`` line per finding, plus a summary."""
    lines = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in result.findings
    ]
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"repro analyze: {len(result.findings)} {noun} "
        f"({result.files_checked} files, checks: {', '.join(result.checks_run)})"
    )
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """The JSON report envelope (schema ``repro.analyze/v1``)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def run_analyze(args: argparse.Namespace) -> int:
    """Execute ``repro analyze``; returns the process exit code (0/1/2)."""
    if args.list_checks:
        width = max(len(check.id) for check in ALL_CHECKS)
        for check in ALL_CHECKS:
            print(f"{check.id.ljust(width)}  {check.name}: {check.description}")
        return 0
    root = Path(args.root).resolve() if args.root else discover_root()
    engine = AnalyzeEngine(root=root, select=args.select or None, ignore=args.ignore)
    try:
        result = engine.run(args.paths)
    except KeyError as error:
        print(f"repro analyze: {error.args[0]}", file=sys.stderr)
        return USAGE_EXIT_CODE
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover - thin shim
    """Standalone entry point (``python -m repro.devtools.analyze.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="NumPy dtype/shape dataflow analyzer for this repository.",
    )
    add_analyze_arguments(parser)
    return run_analyze(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The abstract value lattice ``repro analyze`` interprets over.

Every binding is summarised as an :class:`AbstractValue`: what *kind* of
thing it is (ndarray, scalar, dtype object, plain Python sequence, ``self``,
or unknown), which NumPy dtypes it may carry, an optional rank, and whether
its dtype came from a platform-dependent default.  The lattice is
deliberately coarse — checks only fire on **definite** facts (non-empty
dtype sets with no overlap, widths that differ for every combination), so
joining to :data:`UNKNOWN` is always sound: it can only hide findings,
never invent them.

Promotion uses NumPy's own :func:`numpy.promote_types` over the cartesian
product of the operand dtype sets, which keeps the model exactly as strong
as the NumPy the repo runs under (NEP 50 semantics: Python scalars are
*weak* — ``dtypes == frozenset()`` — and never widen an array operand).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ARRAY",
    "SCALAR",
    "DTYPE",
    "PYLIST",
    "SELF",
    "UNKNOWN_KIND",
    "AbstractValue",
    "UNKNOWN",
    "WEAK_SCALAR",
    "array_of",
    "scalar_of",
    "dtype_of",
    "pylist",
    "self_value",
    "join",
    "promote_sets",
    "definitely_widens",
    "narrow_int_only",
]

ARRAY = "array"
SCALAR = "scalar"
DTYPE = "dtype"  # a value that *is* a dtype object (np.int32, label_dtype(n))
PYLIST = "pylist"  # a plain Python sequence (list literal, sorted(), list())
SELF = "self"  # the receiver inside a method body
UNKNOWN_KIND = "unknown"


@dataclass(frozen=True)
class AbstractValue:
    """One binding's abstract state; immutable so values share freely."""

    kind: str = UNKNOWN_KIND
    #: Possible dtype names.  Empty set means "dtype unknown" for arrays and
    #: "weak Python scalar" (never promotes an array operand) for scalars.
    dtypes: frozenset = field(default_factory=frozenset)
    rank: int | None = None
    #: Whether the dtype was chosen by a platform-dependent default.
    platform_default: bool = False

    @property
    def is_definite_array(self) -> bool:
        return self.kind == ARRAY and bool(self.dtypes)


UNKNOWN = AbstractValue()
WEAK_SCALAR = AbstractValue(kind=SCALAR)


def array_of(*dtypes: str, rank: int | None = None, platform_default: bool = False) -> AbstractValue:
    return AbstractValue(ARRAY, frozenset(dtypes), rank, platform_default)


def scalar_of(*dtypes: str) -> AbstractValue:
    return AbstractValue(SCALAR, frozenset(dtypes))


def dtype_of(*names: str) -> AbstractValue:
    return AbstractValue(DTYPE, frozenset(names))


def pylist() -> AbstractValue:
    return AbstractValue(PYLIST)


def self_value() -> AbstractValue:
    return AbstractValue(SELF)


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound of two abstract values (control-flow merge)."""
    if a is b:
        return a
    if a.kind != b.kind:
        return UNKNOWN
    dtypes = a.dtypes | b.dtypes
    # One branch knowing the dtype and the other not means we do not know it.
    if (a.dtypes and not b.dtypes) or (b.dtypes and not a.dtypes):
        dtypes = frozenset()
    return AbstractValue(
        kind=a.kind,
        dtypes=dtypes,
        rank=a.rank if a.rank == b.rank else None,
        platform_default=a.platform_default or b.platform_default,
    )


# --------------------------------------------------------------------------- #
# Promotion (delegates to the running NumPy)
# --------------------------------------------------------------------------- #


def _promote_pair(a: str, b: str) -> str | None:
    try:
        return np.promote_types(a, b).name
    except TypeError:
        return None


def promote_sets(a: frozenset, b: frozenset) -> frozenset:
    """All dtypes ``a`` op ``b`` may produce (empty when either is unknown)."""
    if not a or not b:
        return frozenset()
    result = set()
    for x in a:
        for y in b:
            promoted = _promote_pair(x, y)
            if promoted is None:
                return frozenset()
            result.add(promoted)
    return frozenset(result)


def _int_width(name: str) -> int | None:
    """Bit width for signed-integer dtype names; None for anything else."""
    try:
        dtype = np.dtype(name)
    except TypeError:
        return None
    if dtype.kind != "i":
        return None
    return dtype.itemsize * 8


def narrow_int_only(dtypes: frozenset) -> bool:
    """Whether every possible dtype is a signed int narrower than 64 bits.

    ``bool`` operands are excluded on purpose: summing a mask to count
    entries is the idiomatic use of the platform default, not an accident.
    """
    if not dtypes:
        return False
    widths = [_int_width(name) for name in dtypes]
    return all(width is not None and width < 64 for width in widths)


def definitely_widens(a: frozenset, b: frozenset) -> bool:
    """Whether combining the two operand sets *always* widens one operand.

    True only when both sets are known, every dtype on both sides is a
    signed integer, and every cross-pair has differing widths — so whatever
    the runtime dtypes turn out to be, the narrower side is silently upcast.
    Parametric values like ``{int32, int64}`` (the contract dtypes) pair
    with ``int64`` without firing, because the ``int64``/``int64`` combination
    does not widen.
    """
    if not a or not b:
        return False
    widths_a = [_int_width(name) for name in a]
    widths_b = [_int_width(name) for name in b]
    if any(w is None for w in widths_a) or any(w is None for w in widths_b):
        return False
    return all(wa != wb for wa in widths_a for wb in widths_b)

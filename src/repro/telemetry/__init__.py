"""Zero-overhead-when-disabled telemetry: spans, counters, histograms, bench gate.

See :mod:`repro.telemetry.core` for the design; the usual import is::

    from repro import telemetry

    with telemetry.session() as tel:
        ...
        print(tel.render())
"""

from repro.telemetry.bench import (
    BENCH_SCHEMA,
    BenchMetricDiff,
    diff_bench,
    extract_metrics,
    load_bench,
    metric_direction,
    render_bench_diff,
    write_bench_result,
)
from repro.telemetry.names import (
    METRIC_NAMES,
    MetricName,
    find_metric,
    metric_is_registered,
    render_glossary,
    update_glossary_block,
)
from repro.telemetry.core import (
    HOP_BUCKETS,
    MS_BUCKETS,
    POW2_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    SpanNode,
    Telemetry,
    current,
    disable,
    enable,
    session,
    spanned,
    summarize_values,
)
from repro.telemetry.report import render_telemetry

__all__ = [
    "BENCH_SCHEMA",
    "BenchMetricDiff",
    "Counter",
    "Gauge",
    "HOP_BUCKETS",
    "Histogram",
    "METRIC_NAMES",
    "MS_BUCKETS",
    "MetricName",
    "POW2_BUCKETS",
    "SECONDS_BUCKETS",
    "SpanNode",
    "Telemetry",
    "current",
    "diff_bench",
    "disable",
    "enable",
    "extract_metrics",
    "find_metric",
    "load_bench",
    "metric_direction",
    "metric_is_registered",
    "render_bench_diff",
    "render_glossary",
    "render_telemetry",
    "update_glossary_block",
    "session",
    "spanned",
    "summarize_values",
    "write_bench_result",
]

"""The central registry of telemetry metric names — the single source of truth.

Every counter, gauge, and histogram name the instrumentation layer emits is
declared here, once.  Two consumers keep the registry honest:

* the ``RPR002`` lint rule (:mod:`repro.devtools.rules.telemetry_names`)
  statically checks that every name string passed to a telemetry call in
  ``src/`` and ``benchmarks/`` appears here, and that no registered name is
  orphaned (declared but never emitted);
* the README counter glossary is *generated* from this module
  (``python -m repro.telemetry.names --write README.md`` refreshes the block
  between the ``<!-- counter-glossary:begin/end -->`` markers), and a unit
  test asserts the committed README matches :func:`render_glossary`.

Dynamic name components (per-op kinds, worker pids, protocol names) are
declared with ``<placeholder>`` segments, e.g. ``refresh.ops.<kind>``; the
lint rule matches an f-string like ``f"refresh.ops.{kind}"`` against exactly
those placeholder segments, so a dynamic name can never silently bypass the
registry.
"""

from __future__ import annotations

import argparse
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "MetricName",
    "METRIC_NAMES",
    "GLOSSARY_BEGIN",
    "GLOSSARY_END",
    "find_metric",
    "metric_is_registered",
    "render_glossary",
    "update_glossary_block",
]

#: README markers delimiting the generated glossary table.
GLOSSARY_BEGIN = "<!-- counter-glossary:begin (generated from repro/telemetry/names.py) -->"
GLOSSARY_END = "<!-- counter-glossary:end -->"

_PLACEHOLDER = re.compile(r"^<[a-z_]+>$")


@dataclass(frozen=True)
class MetricName:
    """One registered metric: its dotted name, kind, emitter, and meaning."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    emitted_by: str
    description: str

    def segments(self) -> tuple[str, ...]:
        return tuple(self.name.split("."))


#: Every metric name the repository emits, grouped by family.
METRIC_NAMES: tuple[MetricName, ...] = (
    # -- route.* : BatchGreedyRouter ----------------------------------------
    MetricName("route.batches", "counter", "BatchGreedyRouter",
               "batched route calls issued"),
    MetricName("route.queries", "counter", "BatchGreedyRouter",
               "individual source/target queries routed"),
    MetricName("route.rounds", "counter", "BatchGreedyRouter",
               "vectorized frontier-advance rounds executed"),
    MetricName("route.rows_scanned", "counter", "BatchGreedyRouter",
               "active query rows scanned across all rounds"),
    MetricName("route.recovery.reroute", "counter", "BatchGreedyRouter",
               "queries granted a random-reroute detour"),
    MetricName("route.recovery.backtrack", "counter", "BatchGreedyRouter",
               "queries returned to a predecessor by backtracking"),
    MetricName("route.frontier", "histogram", "BatchGreedyRouter",
               "live frontier size per round (power-of-two buckets)"),
    MetricName("route.hops", "histogram", "BatchGreedyRouter",
               "delivered hop counts per successful query"),
    MetricName("route.batch_ms", "histogram", "BatchGreedyRouter",
               "wall-clock milliseconds per routed batch"),
    # -- refresh.* : DeltaSnapshot ------------------------------------------
    MetricName("refresh.ops.link_fail", "counter", "DeltaSnapshot",
               "edge-liveness ops applied: links failed in place"),
    MetricName("refresh.ops.link_revive", "counter", "DeltaSnapshot",
               "edge-liveness ops applied: links revived in place"),
    MetricName("refresh.ops.<kind>", "counter", "DeltaSnapshot",
               "recorded churn mutations applied, per op kind"),
    MetricName("refresh.strategy.<strategy>", "counter", "DeltaSnapshot",
               "materialization strategy taken (liveness_reuse / row_splice / full_rebuild)"),
    MetricName("refresh.ms", "histogram", "DeltaSnapshot",
               "milliseconds per snapshot materialization"),
    # -- repair.* : MaintenanceDaemon ---------------------------------------
    MetricName("repair.passes", "counter", "MaintenanceDaemon",
               "batched repair passes run"),
    MetricName("repair.dead_links_found", "counter", "MaintenanceDaemon",
               "links found pointing at dead nodes"),
    MetricName("repair.links_regenerated", "counter", "MaintenanceDaemon",
               "replacement long links drawn"),
    MetricName("repair.ring_repairs", "counter", "MaintenanceDaemon",
               "ring successor/predecessor pointers re-stitched"),
    MetricName("repair.holders_touched", "counter", "MaintenanceDaemon",
               "distinct nodes whose link lists were repaired"),
    # -- faults.* : FaultDriver ---------------------------------------------
    MetricName("faults.runs", "counter", "FaultDriver",
               "fault schedules replayed end to end"),
    MetricName("faults.events.<kind>", "counter", "FaultDriver",
               "fault events applied, per event kind"),
    # -- service.* : the sustained mixed-traffic service scenario -----------
    MetricName("service.rounds", "counter", "scenarios.service",
               "service rounds completed"),
    MetricName("service.lookups", "counter", "scenarios.service",
               "lookup queries routed across all batches"),
    MetricName("service.refresh_ops", "counter", "scenarios.service",
               "recorded delta ops applied at snapshot refresh points (fastpath)"),
    MetricName("service.lookup_ms", "histogram", "scenarios.service",
               "wall-clock milliseconds per routed lookup batch"),
    MetricName("service.hops", "histogram", "scenarios.service",
               "delivered hop counts per successful lookup (per round and steady-state)"),
    MetricName("service.latency", "histogram", "scenarios.service",
               "simulated per-lookup latency milliseconds (per round and steady-state)"),
    MetricName("service.qps", "gauge", "scenarios.service",
               "steady-state routed lookups per wall-clock second"),
    # -- arena.* : SnapshotArena --------------------------------------------
    MetricName("arena.created", "counter", "SnapshotArena",
               "shared-memory snapshot segments created"),
    MetricName("arena.attached", "counter", "SnapshotArena",
               "shared-memory snapshot segments mapped by attachers"),
    MetricName("arena.snapshot_nbytes", "gauge", "SnapshotArena",
               "payload bytes of the last created segment (snapshot_nbytes)"),
    # -- sweep.* : Sweep.run ------------------------------------------------
    MetricName("sweep.cells_executed", "counter", "Sweep.run",
               "grid cells actually executed this run"),
    MetricName("sweep.cells_reused", "counter", "Sweep.run",
               "grid cells reused from a --resume file"),
    MetricName("sweep.worker.<pid>.cells", "counter", "Sweep.run",
               "cells completed per worker process"),
    MetricName("sweep.snapshot_cache.hits", "counter", "fastpath.snapcache",
               "per-worker snapshot/arena cache lookups served from memory"),
    MetricName("sweep.snapshot_cache.misses", "counter", "fastpath.snapcache",
               "per-worker snapshot/arena cache lookups that built or attached"),
    MetricName("sweep.cell_seconds", "histogram", "Sweep.run",
               "wall-clock seconds per executed cell"),
    MetricName("sweep.queue_wait_s", "histogram", "Sweep.run",
               "seconds a cell sat queued before a worker picked it up"),
    # -- messages_* : simulation MetricsCollector ---------------------------
    MetricName("messages_sent", "counter", "MetricsCollector",
               "simulated protocol messages sent"),
    MetricName("messages_delivered", "counter", "MetricsCollector",
               "simulated protocol messages delivered"),
    MetricName("messages_dropped", "counter", "MetricsCollector",
               "simulated protocol messages dropped"),
    # -- bench.* : benchmark scripts ----------------------------------------
    MetricName("bench.<phase>", "histogram", "benchmark_fastpath.py",
               "measured seconds per comparison phase (object / compile / route)"),
    MetricName("bench.<protocol>.object_seconds", "histogram", "benchmark_baselines.py",
               "scalar routing seconds per protocol"),
    MetricName("bench.<protocol>.fastpath_compile_seconds", "histogram", "benchmark_baselines.py",
               "snapshot compile seconds per protocol"),
    MetricName("bench.<protocol>.fastpath_route_seconds", "histogram", "benchmark_baselines.py",
               "batched routing seconds per protocol"),
    MetricName("bench.delta_refresh_ms", "histogram", "benchmark_churn.py / benchmark_faults.py",
               "per-refresh delta materialization milliseconds"),
    MetricName("bench.recompile_ms", "histogram", "benchmark_churn.py / benchmark_faults.py",
               "per-refresh full recompile milliseconds"),
)


def _segments_match(registered: Sequence[str], observed: Sequence[str]) -> bool:
    """Segment-wise name match.

    A ``<placeholder>`` segment in the registered name matches any single
    observed segment, including the ``*`` a linter substitutes for an
    f-string field; a literal registered segment matches only itself.  An
    observed ``*`` never matches a literal segment — dynamic names must be
    registered with explicit placeholders.
    """
    if len(registered) != len(observed):
        return False
    for registered_segment, observed_segment in zip(registered, observed):
        if _PLACEHOLDER.match(registered_segment):
            continue
        if registered_segment != observed_segment:
            return False
    return True


def find_metric(observed: str) -> MetricName | None:
    """The registry entry matching ``observed`` (``*`` = dynamic segment), if any."""
    observed_segments = observed.split(".")
    for entry in METRIC_NAMES:
        if _segments_match(entry.segments(), observed_segments):
            return entry
    return None


def metric_is_registered(observed: str) -> bool:
    """Whether ``observed`` (possibly with ``*`` dynamic segments) is registered."""
    return find_metric(observed) is not None


# ---------------------------------------------------------------------------
# Glossary generation
# ---------------------------------------------------------------------------


def render_glossary(entries: Iterable[MetricName] = METRIC_NAMES) -> str:
    """The README glossary table, generated from the registry."""
    lines = [
        "| metric | kind | emitted by | meaning |",
        "|--------|------|------------|---------|",
    ]
    for entry in entries:
        lines.append(
            f"| `{entry.name}` | {entry.kind} | `{entry.emitted_by}` | {entry.description} |"
        )
    return "\n".join(lines)


def update_glossary_block(text: str) -> str:
    """Replace the marked glossary block in ``text`` with the generated table.

    Raises
    ------
    ValueError
        If the begin/end markers are missing or out of order.
    """
    begin = text.find(GLOSSARY_BEGIN)
    end = text.find(GLOSSARY_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            f"glossary markers not found: expected {GLOSSARY_BEGIN!r} ... {GLOSSARY_END!r}"
        )
    head = text[: begin + len(GLOSSARY_BEGIN)]
    tail = text[end:]
    return f"{head}\n{render_glossary()}\n{tail}"


def main(argv: Sequence[str] | None = None) -> int:
    """Print the generated glossary, or rewrite a file's marked block in place."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.names",
        description="Render the telemetry counter glossary from the central registry.",
    )
    parser.add_argument(
        "--write",
        default=None,
        metavar="PATH",
        help="rewrite PATH's marked glossary block in place instead of printing",
    )
    args = parser.parse_args(argv)
    if args.write is None:
        print(render_glossary())
        return 0
    path = Path(args.write)
    path.write_text(update_glossary_block(path.read_text(encoding="utf-8")), encoding="utf-8")
    print(f"updated glossary block in {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the unit tests
    raise SystemExit(main())

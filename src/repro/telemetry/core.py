"""Zero-overhead-when-disabled instrumentation primitives.

The repository's only performance signal used to be a single wall-clock
``seconds`` on :class:`~repro.scenarios.run.RunResult`; this module adds the
observability floor underneath it: hierarchical **phase spans** (``build`` /
``compile`` / ``route`` / ``refresh`` / ``repair``), typed **counters** and
**gauges**, and fixed-bucket **histograms** — all behind one module-level
active-:class:`Telemetry` slot.

Design rule: *disabled is the default and costs nothing measurable*.  Hot
paths fetch the active context once (``tel = telemetry.current()``) and
guard every record with a plain truthiness check (``if tel is not None``);
no object is allocated, no dict is touched, and no clock is read unless a
session is active.  The batch router's vectorized loops therefore keep
their benchmark-pinned throughput with telemetry off — property-tested to
be *bit-identical* either way in ``tests/property/test_property_telemetry.py``.

Usage::

    from repro import telemetry

    with telemetry.session() as tel:
        run_workload()
        print(tel.render())          # phase tree + counters + histograms
        data = tel.to_dict()         # JSON-ready raw tree

    # In instrumented code:
    tel = telemetry.current()
    if tel is not None:
        tel.count("route.rounds")
        tel.observe("route.frontier", active.size, buckets=POW2_BUCKETS)
        with tel.span("repair"):
            ...
"""

from __future__ import annotations

import bisect
import functools
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SpanNode",
    "Telemetry",
    "current",
    "enable",
    "disable",
    "session",
    "spanned",
    "summarize_values",
    "MS_BUCKETS",
    "POW2_BUCKETS",
    "HOP_BUCKETS",
    "SECONDS_BUCKETS",
]

TELEMETRY_SCHEMA = "repro.telemetry/v1"

#: Millisecond-scale durations (per-batch route latency, delta-refresh ms).
MS_BUCKETS: tuple[float, ...] = (
    0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
    100.0, 300.0, 1_000.0, 3_000.0, 10_000.0, 30_000.0,
)
#: Second-scale durations (sweep cells, whole benchmark sections).
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0,
)
#: Integer population sizes (live frontier, candidate rows) as powers of two.
POW2_BUCKETS: tuple[float, ...] = tuple(float(1 << p) for p in range(0, 21))
#: Hop counts (greedy delivery times are O(log^2 n): small integers).
HOP_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def incr(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value-wins measurement that also tracks its min/max envelope."""

    __slots__ = ("name", "value", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None
        self.min: float | None = None
        self.max: float | None = None

    def set(self, value: float) -> None:
        """Record the latest value, widening the min/max envelope."""
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_dict(self) -> dict:
        return {"value": self.value, "min": self.min, "max": self.max}


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max sidecars.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything beyond the last edge.
    Bulk recording (:meth:`record_many`) is a single ``np.searchsorted`` +
    ``bincount``, so instrumenting an array-native hot path costs two
    vectorized calls, not a Python loop.

    Quantiles (:meth:`quantile`) interpolate linearly inside the winning
    bucket and clamp to the exact observed min/max — good enough for p50/p99
    reporting; callers that need exact percentiles over raw samples should
    use :func:`summarize_values` instead.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty, got {bounds!r}")
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def record(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def record_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations in two vectorized passes."""
        array = np.asarray(values, dtype=np.float64).ravel()
        if array.size == 0:
            return
        slots = np.searchsorted(self.bounds, array, side="left")
        for slot, slot_count in zip(*np.unique(slots, return_counts=True)):
            self.bucket_counts[int(slot)] += int(slot_count)
        self.count += int(array.size)
        self.total += float(array.sum())
        low = float(array.min())
        high = float(array.max())
        self.min = low if self.min is None else min(self.min, low)
        self.max = high if self.max is None else max(self.max, high)

    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0 < q <= 1) via in-bucket interpolation."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                high = self.bounds[index] if index < len(self.bounds) else self.max
                low = self.bounds[index - 1] if index > 0 else self.min
                low = self.min if low is None else max(low, self.min or low)
                if bucket_count == 0 or high is None or low is None or high <= low:
                    value = high if high is not None else (self.max or 0.0)
                else:
                    fraction = (rank - (cumulative - bucket_count)) / bucket_count
                    value = low + fraction * (high - low)
                return float(min(max(value, self.min or value), self.max or value))
        return float(self.max or 0.0)

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class SpanNode:
    """One node of the hierarchical phase tree.

    ``seconds`` accumulates across all entries of the same span under the
    same parent, and ``count`` is the number of entries — so the tree stays
    bounded however many times a phase re-runs.
    """

    __slots__ = ("name", "count", "seconds", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def to_dict(self) -> dict:
        data: dict = {"count": self.count, "seconds": self.seconds}
        if self.children:
            data["children"] = {
                name: child.to_dict() for name, child in self.children.items()
            }
        return data


class Telemetry:
    """One instrumentation session: a span tree plus flat metric registries.

    Not installed anywhere by itself — :func:`enable` / :func:`session` make
    it the module-level active context that :func:`current` hands to
    instrumented code.  All registries are plain dicts keyed by dotted metric
    name; spans nest through a stack, so ``tel.span("route")`` inside
    ``tel.span("cell")`` lands under the cell.
    """

    def __init__(self) -> None:
        self.root = SpanNode("")
        self._stack: list[SpanNode] = [self.root]
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- spans ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[SpanNode]:
        """Time a named phase; nested calls build the hierarchy."""
        parent = self._stack[-1]
        node = parent.children.get(name)
        if node is None:
            node = parent.children[name] = SpanNode(name)
        node.count += 1
        self._stack.append(node)
        started = time.perf_counter()
        try:
            yield node
        finally:
            node.seconds += time.perf_counter() - started
            self._stack.pop()

    # -- flat metrics --------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the named counter (creating it on first use)."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.incr(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge (creating it on first use)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set(value)

    def histogram(self, name: str, buckets: Sequence[float] = MS_BUCKETS) -> Histogram:
        """Get or create the named histogram (``buckets`` used on creation only)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, buckets)
        return histogram

    def observe(self, name: str, value: float, buckets: Sequence[float] = MS_BUCKETS) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name, buckets).record(value)

    def observe_many(
        self, name: str, values: Iterable[float], buckets: Sequence[float] = MS_BUCKETS
    ) -> None:
        """Record a batch of observations into the named histogram."""
        self.histogram(name, buckets).record_many(values)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable dump of the whole session."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "spans": {
                name: child.to_dict() for name, child in self.root.children.items()
            },
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.to_dict() for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable phase tree + counter/histogram summary."""
        from repro.telemetry.report import render_telemetry

        return render_telemetry(self.to_dict())


# ---------------------------------------------------------------------------
# The module-level active context
# ---------------------------------------------------------------------------

_ACTIVE: Telemetry | None = None


def current() -> Telemetry | None:
    """The active telemetry context, or ``None`` when instrumentation is off.

    This is the only call hot paths make when telemetry is disabled; guard
    every record with ``if tel is not None``.
    """
    return _ACTIVE


def enable(telemetry: Telemetry | None = None) -> Telemetry:
    """Install (and return) the active telemetry context."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def disable() -> None:
    """Remove the active telemetry context (instrumentation goes silent)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def session(telemetry: Telemetry | None = None) -> Iterator[Telemetry]:
    """Enable telemetry for a ``with`` block, restoring the previous context.

    Sessions nest: an inner session shadows the outer one for its duration,
    so e.g. a sweep worker can collect per-cell telemetry without polluting
    a benchmark-level session.
    """
    global _ACTIVE
    previous = _ACTIVE
    installed = enable(telemetry)
    try:
        yield installed
    finally:
        _ACTIVE = previous


def spanned(name: str):
    """Decorator: time every call of the function under the named span.

    When no session is active the wrapper is a single ``current()`` call plus
    a truthiness check — cheap enough for chokepoint functions (snapshot
    compiles, network builds), though per-element hot loops should inline the
    guard instead.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tel = current()
            if tel is None:
                return fn(*args, **kwargs)
            with tel.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# ---------------------------------------------------------------------------
# Exact summaries over raw samples
# ---------------------------------------------------------------------------


def summarize_values(values: Iterable[float], percentiles: Sequence[int] = (50, 95)) -> dict:
    """Exact mean + percentiles of raw samples (NumPy semantics).

    The shared summary kernel behind
    :func:`repro.simulation.metrics.summarize_searches` and the benchmark
    reports: unlike :meth:`Histogram.quantile` this is exact, because it
    keeps the raw samples.  Returns ``{"mean": ..., "p50": ..., ...}`` with
    one ``p<N>`` key per requested percentile; all zeros when empty.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return {"mean": 0.0, **{f"p{p}": 0.0 for p in percentiles}}
    return {
        "mean": float(array.mean()),
        **{f"p{p}": float(np.percentile(array, p)) for p in percentiles},
    }

"""BENCH artifact schema stamping and the bench-diff regression gate.

BENCH_*.json files are :class:`~repro.scenarios.run.RunResult` dumps whose
tables hold ``[metric, value]`` rows.  This module gives them a trajectory:

* :func:`write_bench_result` writes a RunResult (optionally with a telemetry
  dump) stamped with the shared ``bench_schema`` version, so every benchmark
  script emits the same envelope.
* :func:`diff_bench` / :func:`render_bench_diff` compare an old and a new
  artifact metric-by-metric, classifying each metric as lower-is-better
  (durations, latencies), higher-is-better (throughput, success rates), or
  informational (sizes, counts), and flag regressions beyond a threshold —
  the CI perf gate behind ``repro bench-diff OLD.json NEW.json --fail-over``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

__all__ = [
    "BENCH_SCHEMA",
    "BenchMetricDiff",
    "diff_bench",
    "extract_metrics",
    "load_bench",
    "metric_direction",
    "render_bench_diff",
    "write_bench_result",
]

#: Shared schema version stamped into every BENCH_*.json by the benchmark
#: scripts.  Bump when the artifact envelope changes shape.
BENCH_SCHEMA = "repro.bench/v1"

#: Name fragments marking a metric where *smaller* is better.
_LOWER_IS_BETTER = ("seconds", "_ms", "latency", "_s_per", "duration")
#: Name fragments marking a metric where *larger* is better.
_HIGHER_IS_BETTER = ("qps", "speedup", "success_rate", "throughput", "per_sec")


def metric_direction(name: str) -> str:
    """Classify a metric name: ``"lower"``, ``"higher"``, or ``"neutral"``.

    Neutral metrics (node counts, hop means, query totals) are reported but
    never flagged — a changed workload size is not a regression.
    """
    lowered = name.lower()
    if any(fragment in lowered for fragment in _HIGHER_IS_BETTER):
        return "higher"
    if any(fragment in lowered for fragment in _LOWER_IS_BETTER):
        return "lower"
    return "neutral"


def write_bench_result(result, path: str | Path, telemetry: Mapping | None = None) -> Path:
    """Write ``result`` (a RunResult) as a schema-stamped BENCH artifact.

    ``telemetry``, when given, is embedded under a ``"telemetry"`` key —
    outside the RunResult schema proper, and ignored (like ``bench_schema``)
    by :meth:`RunResult.from_json_dict`.
    """
    data = result.to_json_dict(include_timing=True)
    data["bench_schema"] = BENCH_SCHEMA
    if telemetry is not None:
        data["telemetry"] = dict(telemetry)
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_bench(path: str | Path) -> dict:
    """Load a BENCH artifact; accepts pre-``bench_schema`` files unchanged."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "tables" not in data:
        raise ValueError(f"{path}: not a BENCH artifact (no tables)")
    return data


def extract_metrics(data: Mapping) -> dict[str, float]:
    """Flatten all ``[metric, value]`` rows across the artifact's tables.

    Only two-column metric/value tables contribute; a metric appearing in
    several tables is prefixed with its table title to stay unambiguous.
    """
    entries: list[tuple[str, str, float]] = []
    for table in data.get("tables", []):
        columns = [str(column).lower() for column in table.get("columns", [])]
        if len(columns) != 2 or columns[0] != "metric":
            continue
        title = str(table.get("title", ""))
        for row in table.get("rows", []):
            if len(row) == 2 and isinstance(row[1], (int, float)) and not isinstance(row[1], bool):
                entries.append((title, str(row[0]), float(row[1])))
    seen_in: dict[str, set[str]] = {}
    for title, name, _value in entries:
        seen_in.setdefault(name, set()).add(title)
    metrics: dict[str, float] = {}
    for title, name, value in entries:
        key = f"{title}::{name}" if len(seen_in[name]) > 1 else name
        metrics[key] = value
    if isinstance(data.get("seconds"), (int, float)):
        metrics.setdefault("wall_clock_seconds", float(data["seconds"]))
    return metrics


@dataclass
class BenchMetricDiff:
    """One metric's old/new comparison."""

    name: str
    direction: str
    old: float | None
    new: float | None
    #: Regression percentage: positive = worse, negative = better, ``None``
    #: when the metric is neutral, missing on one side, or old == 0.
    regression_pct: float | None

    @property
    def flagged(self) -> bool:
        return self.regression_pct is not None and self.regression_pct > 0


def _regression_pct(direction: str, old: float, new: float) -> float | None:
    if direction == "neutral" or old == 0 or not math.isfinite(old) or not math.isfinite(new):
        return None
    change = (new - old) / abs(old) * 100.0
    return change if direction == "lower" else -change


def diff_bench(old: Mapping, new: Mapping) -> list[BenchMetricDiff]:
    """Compare two BENCH artifacts metric-by-metric, sorted worst-first."""
    old_metrics = extract_metrics(old)
    new_metrics = extract_metrics(new)
    diffs: list[BenchMetricDiff] = []
    for name in sorted(old_metrics.keys() | new_metrics.keys()):
        old_value = old_metrics.get(name)
        new_value = new_metrics.get(name)
        direction = metric_direction(name)
        pct = (
            _regression_pct(direction, old_value, new_value)
            if old_value is not None and new_value is not None
            else None
        )
        diffs.append(BenchMetricDiff(name, direction, old_value, new_value, pct))
    diffs.sort(key=lambda d: (-(d.regression_pct if d.regression_pct is not None else -math.inf), d.name))
    return diffs


def render_bench_diff(diffs: list[BenchMetricDiff], fail_over: float | None = None) -> str:
    """Aligned text report; regressions beyond ``fail_over`` marked ``FAIL``."""
    width = max((len(diff.name) for diff in diffs), default=6)
    lines = [
        f"{'metric':<{width}}  {'dir':<7}  {'old':>14}  {'new':>14}  {'regression':>11}"
    ]
    for diff in diffs:
        old_text = f"{diff.old:.6g}" if diff.old is not None else "-"
        new_text = f"{diff.new:.6g}" if diff.new is not None else "-"
        if diff.regression_pct is None:
            pct_text = "-"
            marker = ""
        else:
            pct_text = f"{diff.regression_pct:+.1f}%"
            if fail_over is not None and diff.regression_pct > fail_over:
                marker = "  FAIL"
            elif diff.regression_pct > 0:
                marker = "  worse"
            else:
                marker = ""
        lines.append(
            f"{diff.name:<{width}}  {diff.direction:<7}  {old_text:>14}  {new_text:>14}  {pct_text:>11}{marker}"
        )
    return "\n".join(lines)

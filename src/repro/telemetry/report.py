"""Human-readable rendering of a telemetry dump.

Works on the plain-dict form produced by :meth:`Telemetry.to_dict`, so it can
render live sessions and ``--telemetry-json`` files alike.  Output shape::

    phase tree
      build                 1x   26.841s
      compile               1x    0.412s
      route               200x    3.207s
    counters
      refresh.strategy.row_splice        183
      repair.holders_touched            4021
    histograms
      refresh.ms    count=200 mean=1.92 p50=1.71 p99=8.40 max=9.12
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["render_telemetry"]


def _format_seconds(seconds: float) -> str:
    return f"{seconds:.3f}s"


def _render_span(name: str, node: Mapping, depth: int, lines: list[str]) -> None:
    indent = "  " * (depth + 1)
    label = f"{indent}{name}"
    lines.append(
        f"{label:<40} {node.get('count', 0):>6}x {_format_seconds(node.get('seconds', 0.0)):>12}"
    )
    for child_name, child in node.get("children", {}).items():
        _render_span(child_name, child, depth + 1, lines)


def render_telemetry(data: Mapping) -> str:
    """Render a :meth:`Telemetry.to_dict` dump as an aligned text report."""
    lines: list[str] = []

    spans = data.get("spans", {})
    lines.append("phase tree")
    if spans:
        for name, node in spans.items():
            _render_span(name, node, 0, lines)
    else:
        lines.append("  (no spans recorded)")

    counters = data.get("counters", {})
    if counters:
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:>12}")

    gauges = data.get("gauges", {})
    if gauges:
        lines.append("gauges")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            gauge = gauges[name]
            lines.append(
                f"  {name:<{width}}  value={gauge.get('value')} "
                f"min={gauge.get('min')} max={gauge.get('max')}"
            )

    histograms = data.get("histograms", {})
    if histograms:
        lines.append("histograms")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            hist = histograms[name]
            lines.append(
                f"  {name:<{width}}  count={hist.get('count', 0)}"
                f" mean={hist.get('mean', 0.0):.3f}"
                f" p50={hist.get('p50', 0.0):.3f}"
                f" p99={hist.get('p99', 0.0):.3f}"
                f" max={hist.get('max') if hist.get('max') is not None else 0.0}"
            )

    return "\n".join(lines)

"""repro — Fault-tolerant greedy routing in peer-to-peer systems.

A production-quality reproduction of *Fault-tolerant Routing in Peer-to-peer
Systems* (Aspnes, Diamadi, Shah; PODC 2002).  The library provides:

* ``repro.core`` — metric-space embedding, inverse power-law overlay graphs,
  greedy routing with failure recovery, failure models, the dynamic
  construction heuristic, and theoretical bounds.
* ``repro.simulation`` — a discrete-event simulation substrate with message
  passing, latency models, workload generators, and churn.
* ``repro.dht`` — a distributed hash table (put/get, replication) built on the
  routing layer.
* ``repro.baselines`` — Chord, Kleinberg-grid, CAN, and Plaxton-style prefix
  routing baselines for comparison.
* ``repro.scenarios`` — the unified experiment API: declarative
  ``ScenarioSpec`` records, the ``@register_scenario`` registry, the single
  ``run(spec) -> RunResult`` entrypoint, and the parallel ``Sweep`` executor.
* ``repro.experiments`` — the measurement implementations behind the
  scenarios (the legacy ``run_*`` entry points remain as deprecation shims).

Quickstart
----------
>>> from repro import P2PNetwork
>>> network = P2PNetwork(space_size=1 << 10, seed=7)
>>> network.join_many(list(range(0, 1 << 10, 8)))
>>> network.publish("readme", value="hello world", owner=0)  # doctest: +SKIP
>>> network.lookup("readme").found                            # doctest: +SKIP
True
"""

from repro.core import (
    ByzantineAwareRouter,
    ByzantineBehavior,
    ByzantineModel,
    DeterministicGraphBuilder,
    GreedyRouter,
    HeuristicConstruction,
    InverseDistanceReplacement,
    InversePowerLawDistribution,
    LineMetric,
    LinkFailureModel,
    LookupOutcome,
    MaintenanceDaemon,
    NodeFailureModel,
    OldestLinkReplacement,
    OverlayGraph,
    P2PNetwork,
    RandomGraphBuilder,
    RecoveryStrategy,
    RedundantRouter,
    RingMetric,
    RouteResult,
    RoutingMode,
    Table1Bounds,
    TorusMetric,
    build_heuristic_network,
    build_ideal_network,
    failure_sweep_levels,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "P2PNetwork",
    "OverlayGraph",
    "GreedyRouter",
    "RoutingMode",
    "RecoveryStrategy",
    "RouteResult",
    "LookupOutcome",
    "RingMetric",
    "LineMetric",
    "TorusMetric",
    "InversePowerLawDistribution",
    "RandomGraphBuilder",
    "DeterministicGraphBuilder",
    "build_ideal_network",
    "build_heuristic_network",
    "HeuristicConstruction",
    "InverseDistanceReplacement",
    "OldestLinkReplacement",
    "MaintenanceDaemon",
    "LinkFailureModel",
    "NodeFailureModel",
    "ByzantineModel",
    "ByzantineBehavior",
    "ByzantineAwareRouter",
    "RedundantRouter",
    "Table1Bounds",
    "failure_sweep_levels",
]

"""Discrete-event simulation substrate.

The paper's evaluation is an application-level simulation; this package
provides a proper discrete-event substrate so that routing, churn, and repair
can also be studied with per-message latencies and concurrent events rather
than the synchronous hop-count model of :mod:`repro.core`.

Modules
-------
``events``     priority event queue and the :class:`~repro.simulation.events.Event` type
``latency``    link-latency models (constant, uniform, log-normal)
``engine``     the :class:`~repro.simulation.engine.Simulator` event loop
``messages``   message records exchanged by simulated nodes
``protocol``   the greedy-routing node process running on the simulator
``workload``   workload generators: lookup traffic, churn, key popularity
``metrics``    statistics collection (hops, latency, success rates)
"""

from repro.simulation.engine import Simulator
from repro.simulation.events import Event, EventQueue
from repro.simulation.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.simulation.messages import Message, MessageKind
from repro.simulation.metrics import MetricsCollector, SearchRecord, summarize_searches
from repro.simulation.protocol import ProtocolConfig, RoutingProtocol
from repro.simulation.workload import (
    ChurnEvent,
    ChurnWorkload,
    LookupWorkload,
    ZipfKeyPopularity,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "Message",
    "MessageKind",
    "RoutingProtocol",
    "ProtocolConfig",
    "LookupWorkload",
    "ChurnWorkload",
    "ChurnEvent",
    "ZipfKeyPopularity",
    "MetricsCollector",
    "SearchRecord",
    "summarize_searches",
]

"""The greedy-routing protocol running on the discrete-event simulator.

:class:`RoutingProtocol` drives searches hop by hop as *messages*: every
forwarding step is a :class:`~repro.simulation.messages.Message` scheduled on
the simulator with a latency drawn from the latency model.  The protocol uses
the same neighbour-selection logic as the synchronous
:class:`~repro.core.routing.GreedyRouter` (it delegates to it), so hop counts
agree between the two execution models; what the simulator adds is timing,
interleaving of concurrent searches, and message accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.graph import OverlayGraph
from repro.core.routing import GreedyRouter, RecoveryStrategy, RoutingMode
from repro.simulation.engine import Simulator
from repro.simulation.latency import ConstantLatency, LatencyModel
from repro.simulation.messages import Message, MessageKind
from repro.simulation.metrics import MetricsCollector, SearchRecord

__all__ = ["ProtocolConfig", "RoutingProtocol"]


@dataclass
class ProtocolConfig:
    """Configuration of the simulated routing protocol.

    Attributes
    ----------
    mode:
        Greedy routing mode.
    recovery:
        Recovery strategy used when a hop has no usable next node.
    strict_best_neighbor / symmetric_neighbors:
        Passed straight through to the underlying hop-selection logic.
    hop_limit:
        Per-search hop budget; ``None`` derives a default from the graph size.
    """

    mode: RoutingMode = RoutingMode.TWO_SIDED
    recovery: RecoveryStrategy = RecoveryStrategy.TERMINATE
    strict_best_neighbor: bool = False
    symmetric_neighbors: bool = True
    hop_limit: int | None = None


@dataclass
class _ActiveSearch:
    """Book-keeping for a search in flight."""

    search_id: int
    origin: int
    target: int
    started_at: float
    hops: int = 0
    backtrack_stack: list[int] = field(default_factory=list)
    tried: dict[int, set[int]] = field(default_factory=dict)
    finished: bool = False


class RoutingProtocol:
    """Simulated, message-level greedy routing over an overlay graph.

    Parameters
    ----------
    graph:
        The overlay graph (typically built by one of the builders or the
        construction heuristic).
    simulator:
        The event loop to schedule messages on.
    latency:
        Per-message latency model (default: constant 1.0, making completion
        time equal hop count).
    config:
        Protocol options.
    metrics:
        Optional shared metrics collector; one is created when omitted.
    seed:
        Seed for the recovery strategies' randomness.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        simulator: Simulator,
        latency: LatencyModel | None = None,
        config: ProtocolConfig | None = None,
        metrics: MetricsCollector | None = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.simulator = simulator
        self.latency = latency or ConstantLatency()
        self.config = config or ProtocolConfig()
        self.metrics = metrics or MetricsCollector()
        self._router = GreedyRouter(
            graph=graph,
            mode=self.config.mode,
            recovery=self.config.recovery,
            strict_best_neighbor=self.config.strict_best_neighbor,
            symmetric_neighbors=self.config.symmetric_neighbors,
            hop_limit=self.config.hop_limit,
            seed=seed,
        )
        self._search_counter = 0
        self._active: dict[int, _ActiveSearch] = {}
        self._completion_callbacks: dict[int, Callable[[SearchRecord], None]] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def start_search(
        self,
        origin: int,
        target: int,
        at_time: float | None = None,
        on_complete: Callable[[SearchRecord], None] | None = None,
    ) -> int:
        """Schedule a search from ``origin`` to the node at ``target``.

        Returns the search id.  The search begins at ``at_time`` (default:
        now) and completes asynchronously; pass ``on_complete`` to be notified
        with the final :class:`~repro.simulation.metrics.SearchRecord`.
        """
        search_id = self._search_counter
        self._search_counter += 1
        start_time = self.simulator.now if at_time is None else at_time
        search = _ActiveSearch(
            search_id=search_id, origin=origin, target=target, started_at=start_time
        )
        self._active[search_id] = search
        if on_complete is not None:
            self._completion_callbacks[search_id] = on_complete
        self.simulator.schedule_at(
            start_time,
            lambda: self._process_at(search_id, origin),
            tag=f"search-{search_id}-start",
        )
        return search_id

    def pending_searches(self) -> int:
        """Number of searches that have not yet completed."""
        return sum(1 for search in self._active.values() if not search.finished)

    # ------------------------------------------------------------------ #
    # Per-hop processing
    # ------------------------------------------------------------------ #

    def _process_at(self, search_id: int, current: int) -> None:
        """Handle the search arriving at ``current``."""
        search = self._active[search_id]
        if search.finished:
            return

        hop_limit = self._router.hop_limit
        if not self.graph.is_alive(current):
            self._finish(search, success=False)
            return
        if current == search.target:
            self._finish(search, success=True)
            return
        if search.hops >= hop_limit:
            self._finish(search, success=False)
            return

        next_hop = self._select_next_hop(search, current)
        if next_hop is None:
            next_hop = self._recover(search, current)
            if next_hop is None:
                self._finish(search, success=False)
                return

        self._forward(search, current, next_hop)

    def _select_next_hop(self, search: _ActiveSearch, current: int) -> int | None:
        """Pick the greedy next hop, skipping neighbours already tried.

        The per-search ``tried`` sets make backtracking behave as a bounded
        depth-first search instead of ping-ponging between the same two nodes.
        """
        candidates = self._router._candidate_neighbors(current, search.target)
        already_tried = search.tried.get(current, set())
        untried = [c for c in candidates if c not in already_tried]
        if not untried:
            return None
        if self.config.strict_best_neighbor:
            best = untried[0]
            return best if self.graph.is_alive(best) else None
        for candidate in untried:
            if self.graph.is_alive(candidate):
                return candidate
        return None

    def _recover(self, search: _ActiveSearch, current: int) -> int | None:
        """Apply the configured recovery strategy at a stuck node."""
        recovery = self.config.recovery
        if recovery is RecoveryStrategy.TERMINATE:
            return None
        if recovery is RecoveryStrategy.RANDOM_REROUTE:
            detour = self._router._pick_random_live_node(exclude={current})
            if detour is None or detour == current:
                return None
            # Head one greedy hop towards the detour node; subsequent hops will
            # naturally keep converging on the target after reaching it because
            # the detour becomes the new position, not the new target.
            return self._router._next_hop(current, detour)
        # Backtracking: return to the most recently visited node.
        while search.backtrack_stack:
            previous = search.backtrack_stack.pop()
            if self.graph.is_alive(previous):
                return previous
        return None

    def _forward(self, search: _ActiveSearch, current: int, next_hop: int) -> None:
        """Send the lookup message one hop and schedule its arrival."""
        message = Message(
            kind=MessageKind.LOOKUP_REQUEST,
            source=current,
            destination=next_hop,
            target_point=search.target,
            search_id=search.search_id,
            hop_count=search.hops + 1,
        )
        self.metrics.record_message_sent()
        delay = self.latency.sample(current, next_hop)
        search.hops += 1
        search.tried.setdefault(current, set()).add(next_hop)
        if self.config.recovery is RecoveryStrategy.BACKTRACK:
            search.backtrack_stack.append(current)
            if len(search.backtrack_stack) > self._router.backtrack_depth:
                search.backtrack_stack.pop(0)
        self.simulator.schedule_after(
            delay,
            lambda: self._deliver(message),
            tag=f"search-{search.search_id}-hop-{search.hops}",
        )

    def _deliver(self, message: Message) -> None:
        """Deliver a message to its destination node."""
        search = self._active.get(message.search_id)
        if search is None or search.finished:
            return
        if not self.graph.is_alive(message.destination):
            self.metrics.record_message_dropped()
            # The sender notices the silence and applies recovery on its side.
            fallback = self._recover(search, message.source)
            if fallback is None:
                self._finish(search, success=False)
                return
            self._forward(search, message.source, fallback)
            return
        self.metrics.record_message_delivered()
        self._process_at(search.search_id, message.destination)

    def _finish(self, search: _ActiveSearch, success: bool) -> None:
        """Record the search outcome and fire its completion callback."""
        search.finished = True
        record = SearchRecord(
            search_id=search.search_id,
            origin=search.origin,
            target_point=search.target,
            success=success,
            hops=search.hops,
            started_at=search.started_at,
            finished_at=self.simulator.now,
        )
        self.metrics.record_search(record)
        callback = self._completion_callbacks.pop(search.search_id, None)
        if callback is not None:
            callback(record)

"""The discrete-event simulation engine.

A thin, dependency-free event loop: components schedule callbacks on the
shared :class:`~repro.simulation.events.EventQueue`, the engine pops events in
time order and executes them, and the clock only moves when an event fires.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simulation.events import Event, EventQueue

__all__ = ["Simulator"]


class Simulator:
    """Runs events in simulated-time order.

    Examples
    --------
    >>> simulator = Simulator()
    >>> fired = []
    >>> _ = simulator.schedule_at(2.0, lambda: fired.append("late"))
    >>> _ = simulator.schedule_at(1.0, lambda: fired.append("early"))
    >>> simulator.run()
    >>> fired
    ['early', 'late']
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """The current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def schedule_at(self, time: float, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event in the past (now={self._now}, time={time})"
            )
        return self.queue.push(time, action, tag=tag)

    def schedule_after(self, delay: float, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` after ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.queue.push(self._now + delay, action, tag=tag)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events until the queue is empty or a limit is hit.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the event at exactly
            ``until`` still fires).
        max_events:
            Stop after executing this many events (safety valve for runaway
            protocols).
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            next_time = self.queue.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                return
            event = self.queue.pop()
            if event is None:
                return
            self._now = event.time
            event.action()
            self._events_processed += 1
            executed += 1

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(max_events=max_events)

"""Workload generators: lookup traffic, key popularity, and churn.

The paper's experiments use uniformly random (source, destination) pairs of
live nodes; real deployments additionally see skewed key popularity and
continuous node churn.  This module provides generators for all three so that
examples and extension experiments can exercise the system under realistic
conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.validation import ensure_positive, ensure_probability

__all__ = ["LookupWorkload", "ZipfKeyPopularity", "ChurnEvent", "ChurnWorkload"]


@dataclass
class LookupWorkload:
    """Generates (origin, target) pairs of live nodes, uniformly at random.

    Parameters
    ----------
    seed:
        Seed for pair selection.
    allow_equal:
        Whether origin may equal target (the paper's experiments route between
        distinct nodes, so the default is ``False``).
    """

    seed: int = 0
    allow_equal: bool = False

    def __post_init__(self) -> None:
        self._rng = spawn_rng(self.seed, "lookup-workload")

    def pairs(self, live_labels: list[int], count: int) -> list[tuple[int, int]]:
        """Return ``count`` (origin, target) pairs drawn from ``live_labels``."""
        ensure_positive(count, "count")
        if len(live_labels) < 2:
            raise ValueError("need at least two live nodes to generate lookups")
        labels = np.asarray(live_labels)
        result: list[tuple[int, int]] = []
        for _ in range(count):
            if self.allow_equal:
                origin, target = self._rng.choice(labels, size=2, replace=True)
            else:
                origin, target = self._rng.choice(labels, size=2, replace=False)
            result.append((int(origin), int(target)))
        return result

    def poisson_arrival_times(self, count: int, rate: float) -> list[float]:
        """Return ``count`` arrival times of a Poisson process with ``rate``."""
        ensure_positive(rate, "rate")
        gaps = self._rng.exponential(1.0 / rate, size=count)
        return list(np.cumsum(gaps))


@dataclass
class ZipfKeyPopularity:
    """Zipf-distributed key popularity over a fixed key universe.

    Key ``i`` (0-indexed) is requested with probability proportional to
    ``1 / (i + 1)^alpha``; ``alpha`` around 0.8–1.2 matches measured
    file-sharing workloads.
    """

    universe: int
    alpha: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.universe, "universe")
        ensure_positive(self.alpha, "alpha")
        self._rng = spawn_rng(self.seed, "zipf-keys")
        ranks = np.arange(1, self.universe + 1, dtype=float)
        weights = ranks**-self.alpha
        self._probabilities = weights / weights.sum()

    def sample_keys(self, count: int, prefix: str = "key") -> list[str]:
        """Return ``count`` key names sampled by popularity."""
        ensure_positive(count, "count")
        indices = self._rng.choice(self.universe, size=count, p=self._probabilities)
        return [f"{prefix}-{int(index)}" for index in indices]

    def all_keys(self, prefix: str = "key") -> list[str]:
        """Return the full key universe in rank order."""
        return [f"{prefix}-{index}" for index in range(self.universe)]


@dataclass
class ChurnEvent:
    """One churn action: a node joining or leaving at a given time."""

    time: float
    action: str  # "join", "leave", or "crash"
    address: int


@dataclass
class ChurnWorkload:
    """Generates a schedule of joins and departures.

    Nodes join and leave according to independent Poisson processes; departing
    nodes either leave gracefully or crash, controlled by ``crash_fraction``.

    Parameters
    ----------
    space_size:
        Size of the identifier space new nodes draw addresses from.
    join_rate / leave_rate:
        Events per unit time for joins and departures.
    crash_fraction:
        Fraction of departures that are crashes rather than graceful leaves.
    seed:
        Seed for the schedule.
    """

    space_size: int
    join_rate: float = 1.0
    leave_rate: float = 1.0
    crash_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.space_size, "space_size")
        ensure_positive(self.join_rate, "join_rate")
        ensure_positive(self.leave_rate, "leave_rate")
        ensure_probability(self.crash_fraction, "crash_fraction")
        self._rng = spawn_rng(self.seed, "churn")

    def schedule(
        self,
        duration: float,
        initial_members: list[int],
    ) -> list[ChurnEvent]:
        """Return a time-sorted churn schedule over ``duration`` time units.

        Join addresses are drawn uniformly from unoccupied points; leave and
        crash victims are drawn uniformly from the current membership.  The
        schedule is generated assuming the events are applied in order, so the
        membership evolves consistently.
        """
        ensure_positive(duration, "duration")
        members = set(initial_members)
        events: list[ChurnEvent] = []

        time = 0.0
        while True:
            join_gap = self._rng.exponential(1.0 / self.join_rate)
            leave_gap = self._rng.exponential(1.0 / self.leave_rate)
            if join_gap <= leave_gap:
                time += join_gap
                action = "join"
            else:
                time += leave_gap
                action = "leave"
            if time > duration:
                break
            if action == "join":
                address = self._pick_free_address(members)
                if address is None:
                    continue
                members.add(address)
                events.append(ChurnEvent(time=time, action="join", address=address))
            else:
                if len(members) <= 2:
                    continue
                address = int(self._rng.choice(sorted(members)))
                members.discard(address)
                kind = (
                    "crash"
                    if self._rng.random() < self.crash_fraction
                    else "leave"
                )
                events.append(ChurnEvent(time=time, action=kind, address=address))
        return events

    def _pick_free_address(self, members: set[int]) -> int | None:
        """Pick an unoccupied address uniformly at random (a few retries)."""
        for _ in range(32):
            candidate = int(self._rng.integers(0, self.space_size))
            if candidate not in members:
                return candidate
        free = [label for label in range(self.space_size) if label not in members]
        if not free:
            return None
        return int(self._rng.choice(free))


def iterate_in_time_order(events: list[ChurnEvent]) -> Iterator[ChurnEvent]:
    """Yield churn events sorted by time (stable for equal times)."""
    yield from sorted(events, key=lambda event: event.time)

"""Statistics collection for simulation runs.

The collector records one :class:`SearchRecord` per search plus aggregate
message counters, and :func:`summarize_searches` turns a list of records into
the summary statistics the paper reports (fraction of failed searches,
average delivery time of successful searches).

The counters and the percentile arithmetic are the telemetry layer's
primitives (:class:`repro.telemetry.Counter`,
:func:`repro.telemetry.summarize_values`) rather than hand-rolled ints and
NumPy calls — one implementation of "count things, summarise samples" across
the repository.  ``summary()`` output is unchanged key for key and value for
value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.core import Counter, summarize_values

__all__ = ["SearchRecord", "MetricsCollector", "summarize_searches"]


@dataclass
class SearchRecord:
    """Outcome of one simulated search."""

    search_id: int
    origin: int
    target_point: int
    success: bool
    hops: int
    started_at: float
    finished_at: float

    @property
    def latency(self) -> float:
        """Simulated wall-clock duration of the search."""
        return self.finished_at - self.started_at


class MetricsCollector:
    """Accumulates per-search records and message counters."""

    def __init__(self, searches: list[SearchRecord] | None = None) -> None:
        self.searches: list[SearchRecord] = list(searches) if searches else []
        self._sent = Counter("messages_sent")
        self._delivered = Counter("messages_delivered")
        self._dropped = Counter("messages_dropped")

    @property
    def messages_sent(self) -> int:
        return self._sent.value

    @property
    def messages_delivered(self) -> int:
        return self._delivered.value

    @property
    def messages_dropped(self) -> int:
        return self._dropped.value

    def record_search(self, record: SearchRecord) -> None:
        """Append one finished search."""
        self.searches.append(record)

    def record_message_sent(self) -> None:
        self._sent.incr()

    def record_message_delivered(self) -> None:
        self._delivered.incr()

    def record_message_dropped(self) -> None:
        self._dropped.incr()

    def summary(self) -> dict:
        """Return the aggregate statistics of all recorded searches."""
        result = summarize_searches(self.searches)
        result.update(
            {
                "messages_sent": self.messages_sent,
                "messages_delivered": self.messages_delivered,
                "messages_dropped": self.messages_dropped,
            }
        )
        return result


def summarize_searches(records: list[SearchRecord]) -> dict:
    """Summarise a list of search records.

    Returns a dictionary with the fields the paper's figures report:
    ``failed_fraction`` and ``mean_hops_successful`` plus supporting
    percentiles and counts.
    """
    total = len(records)
    if total == 0:
        return {
            "searches": 0,
            "failed_fraction": 0.0,
            "mean_hops_successful": 0.0,
            "median_hops_successful": 0.0,
            "p95_hops_successful": 0.0,
            "mean_latency_successful": 0.0,
        }
    successful = [record for record in records if record.success]
    failed_fraction = 1.0 - len(successful) / total
    hops = summarize_values(
        (record.hops for record in successful), percentiles=(50, 95)
    )
    latency = summarize_values(
        (record.latency for record in successful), percentiles=()
    )
    return {
        "searches": total,
        "failed_fraction": failed_fraction,
        "mean_hops_successful": hops["mean"],
        "median_hops_successful": hops["p50"],
        "p95_hops_successful": hops["p95"],
        "mean_latency_successful": latency["mean"],
    }

"""Statistics collection for simulation runs.

The collector records one :class:`SearchRecord` per search plus aggregate
message counters, and :func:`summarize_searches` turns a list of records into
the summary statistics the paper reports (fraction of failed searches,
average delivery time of successful searches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SearchRecord", "MetricsCollector", "summarize_searches"]


@dataclass
class SearchRecord:
    """Outcome of one simulated search."""

    search_id: int
    origin: int
    target_point: int
    success: bool
    hops: int
    started_at: float
    finished_at: float

    @property
    def latency(self) -> float:
        """Simulated wall-clock duration of the search."""
        return self.finished_at - self.started_at


@dataclass
class MetricsCollector:
    """Accumulates per-search records and message counters."""

    searches: list[SearchRecord] = field(default_factory=list)
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0

    def record_search(self, record: SearchRecord) -> None:
        """Append one finished search."""
        self.searches.append(record)

    def record_message_sent(self) -> None:
        self.messages_sent += 1

    def record_message_delivered(self) -> None:
        self.messages_delivered += 1

    def record_message_dropped(self) -> None:
        self.messages_dropped += 1

    def summary(self) -> dict:
        """Return the aggregate statistics of all recorded searches."""
        result = summarize_searches(self.searches)
        result.update(
            {
                "messages_sent": self.messages_sent,
                "messages_delivered": self.messages_delivered,
                "messages_dropped": self.messages_dropped,
            }
        )
        return result


def summarize_searches(records: list[SearchRecord]) -> dict:
    """Summarise a list of search records.

    Returns a dictionary with the fields the paper's figures report:
    ``failed_fraction`` and ``mean_hops_successful`` plus supporting
    percentiles and counts.
    """
    total = len(records)
    if total == 0:
        return {
            "searches": 0,
            "failed_fraction": 0.0,
            "mean_hops_successful": 0.0,
            "median_hops_successful": 0.0,
            "p95_hops_successful": 0.0,
            "mean_latency_successful": 0.0,
        }
    successful = [record for record in records if record.success]
    failed_fraction = 1.0 - len(successful) / total
    if successful:
        hops = np.array([record.hops for record in successful], dtype=float)
        latencies = np.array([record.latency for record in successful], dtype=float)
        mean_hops = float(hops.mean())
        median_hops = float(np.median(hops))
        p95_hops = float(np.percentile(hops, 95))
        mean_latency = float(latencies.mean())
    else:
        mean_hops = median_hops = p95_hops = mean_latency = 0.0
    return {
        "searches": total,
        "failed_fraction": failed_fraction,
        "mean_hops_successful": mean_hops,
        "median_hops_successful": median_hops,
        "p95_hops_successful": p95_hops,
        "mean_latency_successful": mean_latency,
    }

"""Link-latency models for the discrete-event simulator.

The paper measures cost in messages, so hop counts are the primary metric;
the simulator nevertheless assigns a latency to every message so that
wall-clock style results (completion times, timeout behaviour) can be studied.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.validation import ensure_non_negative, ensure_positive

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency", "LogNormalLatency"]


class LatencyModel(abc.ABC):
    """Interface for per-message latency sampling."""

    @abc.abstractmethod
    def sample(self, source: int, target: int) -> float:
        """Return the latency of one message from ``source`` to ``target``."""


@dataclass
class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units (default 1.0).

    With this model the simulator's completion times equal hop counts, which
    makes cross-checking against the synchronous core router trivial.
    """

    value: float = 1.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.value, "value")

    def sample(self, source: int, target: int) -> float:
        return self.value


@dataclass
class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` per message."""

    low: float = 0.5
    high: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_non_negative(self.low, "low")
        if self.high < self.low:
            raise ValueError(f"high ({self.high}) must be >= low ({self.low})")
        self._rng = spawn_rng(self.seed, "uniform-latency")

    def sample(self, source: int, target: int) -> float:
        return float(self._rng.uniform(self.low, self.high))


@dataclass
class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency: ``exp(N(mu, sigma))`` per message.

    A reasonable stand-in for wide-area round-trip times, which are famously
    log-normal-ish with a long tail.
    """

    median: float = 1.0
    sigma: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.median, "median")
        ensure_non_negative(self.sigma, "sigma")
        self._rng = spawn_rng(self.seed, "lognormal-latency")
        self._mu = float(np.log(self.median))

    def sample(self, source: int, target: int) -> float:
        return float(self._rng.lognormal(self._mu, self.sigma))

"""Message records exchanged by simulated protocol nodes."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MessageKind", "Message"]

_message_ids = itertools.count()


class MessageKind(enum.Enum):
    """The message types used by the greedy-routing protocol."""

    LOOKUP_REQUEST = "lookup-request"
    LOOKUP_REPLY = "lookup-reply"
    LOOKUP_FAILURE = "lookup-failure"
    JOIN_REQUEST = "join-request"
    JOIN_REPLY = "join-reply"
    PING = "ping"
    PONG = "pong"
    REPAIR_NOTIFY = "repair-notify"


@dataclass
class Message:
    """A single protocol message in flight.

    Attributes
    ----------
    kind:
        The message type.
    source:
        Label of the sending node.
    destination:
        Label of the receiving node (the next hop, not the final target).
    target_point:
        The metric-space point the enclosing search is heading for, when
        applicable.
    search_id:
        Identifier correlating all messages of one search.
    hop_count:
        Number of overlay hops this message's search has taken so far.
    payload:
        Arbitrary extra data (e.g. the located value in a reply).
    message_id:
        Globally unique message identifier (assigned automatically).
    """

    kind: MessageKind
    source: int
    destination: int
    target_point: int | None = None
    search_id: int | None = None
    hop_count: int = 0
    payload: Any = None
    message_id: int = field(default_factory=lambda: next(_message_ids))

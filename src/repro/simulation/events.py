"""Event queue for the discrete-event simulator.

Events carry a firing time, a strictly increasing sequence number (to break
ties deterministically and keep insertion order for simultaneous events), and
an arbitrary callback payload.  The queue is a binary heap.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled event.

    Ordering is by ``(time, sequence)`` so that simultaneous events fire in
    the order they were scheduled.

    Attributes
    ----------
    time:
        Simulated firing time.
    sequence:
        Tie-breaking sequence number assigned by the queue.
    action:
        Zero-argument callable executed when the event fires.
    tag:
        Optional label for debugging and tracing.
    cancelled:
        Cancelled events are skipped when popped.
    """

    time: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    tag: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when its time comes."""
        self.cancelled = True


class EventQueue:
    """A time-ordered queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], Any], tag: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=time, sequence=next(self._counter), action=action, tag=tag)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Pop and return the next non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next non-cancelled event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

"""Static overlay-graph builders.

A *builder* produces a fully wired :class:`~repro.core.graph.OverlayGraph`
in one shot, as the paper does for its routing experiments ("the network is
set up afresh" in Section 6).  Dynamic, incremental construction — the
Section-5 heuristic where nodes arrive one at a time and existing nodes
redirect links — lives in :mod:`repro.core.construction`.

Three builders are provided:

* :class:`RandomGraphBuilder` — each node links to its immediate neighbours
  plus ``links_per_node`` long-distance neighbours sampled from a
  :class:`~repro.core.distributions.LinkDistribution` (Theorems 12/13).
* :class:`DeterministicGraphBuilder` — the base-``b`` digit scheme
  (Theorems 14/16).
* Both accept an optional *presence probability* so that only a random subset
  of grid points is occupied, reproducing the "binomially distributed nodes"
  model of Section 4.3.4.1 in which absent points are skipped and links are
  drawn conditioned on existence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distributions import (
    DeterministicBaseBOffsets,
    InversePowerLawDistribution,
    LinkDistribution,
)
from repro.core.graph import OverlayGraph
from repro.core.metric import LineMetric, MetricSpace, RingMetric
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_positive, ensure_probability

__all__ = [
    "BuildResult",
    "RandomGraphBuilder",
    "DeterministicGraphBuilder",
    "build_ideal_network",
    "sample_present_points",
]


@dataclass
class BuildResult:
    """Outcome of a graph build.

    Attributes
    ----------
    graph:
        The wired overlay graph.
    present_labels:
        Sorted list of the point labels actually occupied by nodes.
    links_per_node:
        The *requested* number of long links per node (the realised number may
        be lower when duplicates were dropped or targets were absent).
    """

    graph: OverlayGraph
    present_labels: list[int]
    links_per_node: int


def sample_present_points(
    n: int,
    presence_probability: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Return a boolean presence mask over ``n`` grid points.

    Each point is occupied independently with ``presence_probability``
    (Section 4.3.4.1's binomial node placement).  The mask is guaranteed to
    contain at least two present points so that a non-trivial graph exists;
    if the random draw leaves fewer, the first points are forced present.
    """
    ensure_probability(presence_probability, "presence_probability")
    if presence_probability >= 1.0:
        return np.ones(n, dtype=bool)
    mask = rng.random(n) < presence_probability
    if mask.sum() < 2:
        mask[:2] = True
    return mask


@dataclass
class RandomGraphBuilder:
    """Builds the paper's randomized overlay in one shot.

    Every occupied point is wired to its immediate live neighbours on the ring
    (or line) and to ``links_per_node`` long-distance neighbours sampled from
    ``distribution``.  When a sampled sink is an unoccupied point the link is
    attached to the closest occupied point instead, mirroring the paper's
    basin-of-attraction rule.

    Parameters
    ----------
    space:
        Metric space (ring or line) of size ``n``.
    distribution:
        Long-link distribution; defaults to the inverse power law with
        exponent 1 when ``None``.
    links_per_node:
        Number of long-distance links per node (the paper's ``l``).
    presence_probability:
        Probability that each grid point hosts a node (1.0 = fully populated).
    allow_duplicate_links:
        When ``False`` (default) repeated samples of the same target are
        collapsed to a single link; the paper samples with replacement, so
        duplicates simply waste a link slot — collapsing matches the simulated
        behaviour of storing a neighbour *set*.
    seed:
        Base seed for all sampling.
    """

    space: MetricSpace
    distribution: LinkDistribution | None = None
    links_per_node: int = 1
    presence_probability: float = 1.0
    allow_duplicate_links: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.links_per_node, "links_per_node")
        ensure_probability(self.presence_probability, "presence_probability")
        if not isinstance(self.space, (RingMetric, LineMetric)):
            raise TypeError(
                "RandomGraphBuilder requires a one-dimensional space "
                f"(RingMetric or LineMetric), got {type(self.space).__name__}"
            )
        if self.distribution is None:
            self.distribution = InversePowerLawDistribution(self.space.size())

    def build(self) -> BuildResult:
        """Construct and return the overlay graph."""
        n = self.space.size()
        presence_rng = spawn_rng(self.seed, "presence")
        link_rng = spawn_rng(self.seed, "links")

        present = sample_present_points(n, self.presence_probability, presence_rng)
        present_labels = [int(label) for label in np.flatnonzero(present)]

        graph = OverlayGraph(self.space)
        for label in present_labels:
            graph.add_node(label)
        graph.wire_ring(present_labels)

        present_array = present if self.presence_probability < 1.0 else None
        if present_array is None and hasattr(self.distribution, "sample_neighbors_batch"):
            # Fully populated space: draw every node's targets in one batched
            # call.  The draw order (row-major over nodes, then link slots)
            # matches the per-node loop below, and the same call backs the
            # direct-to-CSR build (:func:`repro.fastpath.build_snapshot`), so
            # both build paths realise bit-identical networks at a fixed seed.
            targets_matrix = self.distribution.sample_neighbors_batch(
                np.asarray(present_labels, dtype=np.int64),
                self.links_per_node,
                link_rng,
            )
            for row, label in enumerate(present_labels):
                # Batched offsets are never zero, so targets need no
                # self-link or absent-sink resolution.
                self._attach_targets(graph, label, (int(t) for t in targets_matrix[row]))
        else:
            for label in present_labels:
                self._attach_long_links(graph, label, link_rng, present_array)

        return BuildResult(
            graph=graph,
            present_labels=present_labels,
            links_per_node=self.links_per_node,
        )

    def _attach_long_links(
        self,
        graph: OverlayGraph,
        label: int,
        rng: np.random.Generator,
        present: np.ndarray | None,
    ) -> None:
        """Sample and attach the long links of a single node."""
        targets = self.distribution.sample_neighbors(
            label, self.links_per_node, rng, present=present
        )
        resolved: list[int] = []
        for target in targets:
            if not graph.has_node(target):
                # Absent sink: connect to the closest occupied point instead.
                fallback = graph.closest_live_vertex(target)
                if fallback is None or fallback == label:
                    continue
                target = fallback
            if target == label:
                continue
            resolved.append(target)
        self._attach_targets(graph, label, resolved)

    def _attach_targets(self, graph: OverlayGraph, label: int, targets) -> None:
        """Attach resolved targets in order, collapsing duplicates by policy.

        The single copy of the duplicate-link rule: the direct-to-CSR build
        (:func:`repro.fastpath.build_snapshot`) mirrors this dedup exactly,
        which is what keeps the two build paths bit-identical.
        """
        seen: set[int] = set()
        for target in targets:
            if not self.allow_duplicate_links:
                if target in seen:
                    continue
                seen.add(target)
            graph.add_long_link(label, target)


@dataclass
class DeterministicGraphBuilder:
    """Builds the deterministic base-``b`` overlay of Theorems 14 and 16.

    Parameters
    ----------
    space:
        Metric space (ring or line) of size ``n``.
    base:
        The base ``b >= 2``; smaller bases mean more links and faster routing.
    variant:
        ``"full"`` for the Theorem-14 digit scheme, ``"powers"`` for the
        Theorem-16 power-of-``b`` scheme.
    presence_probability:
        Probability that each grid point hosts a node.
    seed:
        Seed used only for the presence sampling.
    """

    space: MetricSpace
    base: int = 2
    variant: str = "full"
    presence_probability: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.space, (RingMetric, LineMetric)):
            raise TypeError(
                "DeterministicGraphBuilder requires a one-dimensional space "
                f"(RingMetric or LineMetric), got {type(self.space).__name__}"
            )
        self.offsets_scheme = DeterministicBaseBOffsets(
            n=self.space.size(), base=self.base, variant=self.variant
        )

    def build(self) -> BuildResult:
        """Construct and return the overlay graph."""
        n = self.space.size()
        presence_rng = spawn_rng(self.seed, "presence")
        present = sample_present_points(n, self.presence_probability, presence_rng)
        present_labels = [int(label) for label in np.flatnonzero(present)]

        graph = OverlayGraph(self.space)
        for label in present_labels:
            graph.add_node(label)
        graph.wire_ring(present_labels)

        present_array = present if self.presence_probability < 1.0 else None
        unused_rng = spawn_rng(self.seed, "unused")
        for label in present_labels:
            targets = self.offsets_scheme.sample_neighbors(
                label, 0, unused_rng, present=present_array
            )
            seen: set[int] = set()
            for target in targets:
                if target == label or target in seen:
                    continue
                if not graph.has_node(target):
                    continue
                seen.add(target)
                graph.add_long_link(label, target)

        return BuildResult(
            graph=graph,
            present_labels=present_labels,
            links_per_node=self.offsets_scheme.expected_link_count(),
        )


def build_ideal_network(
    n: int,
    links_per_node: int | None = None,
    seed: int = 0,
    presence_probability: float = 1.0,
    exponent: float = 1.0,
) -> BuildResult:
    """Convenience function: the paper's standard experimental network.

    A ring of ``n`` points, each node linked to its immediate neighbours and
    to ``links_per_node`` long-distance neighbours drawn from the inverse
    power-law distribution with the given ``exponent`` (default 1).  When
    ``links_per_node`` is omitted it defaults to ``ceil(lg n)``, the value the
    paper uses in Section 6 (17 links for 2^17 nodes).
    """
    ensure_positive(n, "n")
    if links_per_node is None:
        links_per_node = max(1, int(np.ceil(np.log2(n))))
    space = RingMetric(n)
    builder = RandomGraphBuilder(
        space=space,
        distribution=InversePowerLawDistribution(n, exponent=exponent),
        links_per_node=links_per_node,
        presence_probability=presence_probability,
        seed=seed,
    )
    return builder.build()

"""Long-distance link distributions.

Section 4.3 of the paper fixes the link model used for the upper bounds: each
node is connected to its immediate neighbours and to ``l`` long-distance
neighbours, each chosen with probability *inversely proportional to its
distance* from the node (the inverse power-law distribution with exponent 1).
The lower bounds of Section 4.2 are proved for *arbitrary* offset
distributions, and Kleinberg's small-world construction uses exponent ``d`` in
``d`` dimensions; this module therefore provides a small family of
distributions behind one interface:

* :class:`InversePowerLawDistribution` — ``Pr[offset = delta] ∝ 1 / |delta|^r``
  (the paper's choice is ``r = 1``).
* :class:`UniformLinkDistribution` — every other point equally likely;
  included as a deliberately *bad* distribution the lower-bound experiments
  can contrast against.
* :class:`DeterministicBaseBOffsets` — the deterministic base-``b`` digit
  scheme of Theorem 14 (links at distances ``j * b^i``), plus the simplified
  power-of-``b`` scheme of Theorem 16 used for the link-failure analysis.
* :class:`KleinbergGridDistribution` — exponent-``d`` distribution on a
  two-dimensional torus, used by the Kleinberg baseline.

All random distributions sample through a ``numpy.random.Generator`` supplied
by the caller so that experiments stay reproducible.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.metric import RingMetric, TorusMetric
from repro.util.validation import ensure_positive

__all__ = [
    "LinkDistribution",
    "InversePowerLawDistribution",
    "UniformLinkDistribution",
    "DeterministicBaseBOffsets",
    "KleinbergGridDistribution",
    "harmonic_number",
]


def harmonic_number(n: int) -> float:
    """Return the n-th harmonic number ``H_n = 1 + 1/2 + ... + 1/n``.

    Uses the asymptotic expansion for large ``n``; exact summation below a
    small threshold.  ``harmonic_number(0)`` is 0 by convention.
    """
    if n <= 0:
        return 0.0
    if n < 128:
        return float(sum(1.0 / i for i in range(1, n + 1)))
    # Euler–Maclaurin: H_n ≈ ln n + γ + 1/(2n) − 1/(12 n²) + 1/(120 n⁴)
    gamma = 0.5772156649015328606
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n) + 1.0 / (120 * n**4)


class LinkDistribution(abc.ABC):
    """Interface for generating a node's long-distance neighbour offsets.

    A distribution knows the size ``n`` of the (one-dimensional) identifier
    space and produces, for a given source point, the *labels* of the chosen
    long-distance neighbours.  Distributions may be random (sampling through
    the provided generator) or deterministic (ignoring it).
    """

    @abc.abstractmethod
    def sample_neighbors(
        self,
        source: int,
        count: int,
        rng: np.random.Generator,
        present: np.ndarray | None = None,
    ) -> list[int]:
        """Return ``count`` neighbour labels for ``source``.

        Parameters
        ----------
        source:
            Label of the node choosing its links.
        count:
            Number of long-distance links to generate.  Deterministic
            distributions may return a different number (their link count is
            fixed by the scheme, not by the caller).
        rng:
            Random generator used for any sampling.
        present:
            Optional boolean array of length ``n``; when given, only points
            marked ``True`` may be chosen (the paper's "link only to existing
            nodes" model of Section 4.3.4.1).  The source itself is never
            returned even if marked present.
        """

    @abc.abstractmethod
    def link_probability(self, distance: int) -> float:
        """Return the ideal probability mass assigned to a link of ``distance``.

        Used by the Figure-5 experiments to compare an empirically constructed
        network against the ideal distribution.  For deterministic schemes the
        notion is degenerate and ``NotImplementedError`` may be raised.
        """


@dataclass
class InversePowerLawDistribution(LinkDistribution):
    """Inverse power-law link distribution over a ring of ``n`` points.

    ``Pr[v chosen as long-distance neighbour of u] ∝ 1 / d(u, v)^exponent``
    where ``d`` is the ring distance.  The paper uses ``exponent = 1``
    (harmonic distribution); Kleinberg's one-dimensional optimum is the same.

    Sampling is done *with replacement* across the ``count`` links, exactly as
    in Theorem 13 ("chosen independently with replacement").

    Parameters
    ----------
    n:
        Size of the identifier space.
    exponent:
        Power-law exponent ``r`` (default 1.0, the paper's choice).
    """

    n: int
    exponent: float = 1.0

    _weights_cache: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        ensure_positive(self.n, "n")
        if self.n < 2:
            raise ValueError("n must be at least 2 to have any long-distance links")
        self._metric = RingMetric(self.n)

    # -- internal ----------------------------------------------------------

    def _distance_weights(self) -> np.ndarray:
        """Weight of each *ring distance* ``1 .. floor(n/2)`` (unnormalised)."""
        key = 0
        if key not in self._weights_cache:
            max_distance = self.n // 2
            distances = np.arange(1, max_distance + 1, dtype=float)
            weights = distances**-self.exponent
            # Every distance short of n/2 corresponds to two points (clockwise
            # and counter-clockwise); when n is even the antipodal distance
            # n/2 corresponds to a single point.
            multiplicity = np.full(max_distance, 2.0)
            if self.n % 2 == 0:
                multiplicity[-1] = 1.0
            self._weights_cache[key] = weights * multiplicity
        return self._weights_cache[key]

    def _point_weights(self, source: int, present: np.ndarray | None) -> np.ndarray:
        """Unnormalised weight of every point label as a neighbour of ``source``."""
        labels = np.arange(self.n)
        diff = np.abs(labels - source)
        ring_distance = np.minimum(diff, self.n - diff).astype(float)
        with np.errstate(divide="ignore"):
            weights = np.where(ring_distance > 0, ring_distance**-self.exponent, 0.0)
        if present is not None:
            weights = np.where(present, weights, 0.0)
            weights[source] = 0.0
        return weights

    def _offset_cdf(self) -> np.ndarray:
        """Normalised CDF over the offsets ``0 .. n-1`` seen from any source.

        On a fully populated ring the link distribution is shift-invariant:
        the probability of choosing the point at offset ``delta`` from the
        source is ``d(0, delta)^-exponent / S`` for every source.  This single
        CDF therefore serves batched inverse-CDF sampling for *all* sources at
        once, which is what makes one-shot network builds array-native.
        """
        key = 1
        if key not in self._weights_cache:
            offsets = np.arange(self.n, dtype=float)
            ring_distance = np.minimum(offsets, self.n - offsets)
            with np.errstate(divide="ignore"):
                weights = np.where(ring_distance > 0, ring_distance**-self.exponent, 0.0)
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            self._weights_cache[key] = cdf
        return self._weights_cache[key]

    # -- LinkDistribution API ------------------------------------------------

    def sample_neighbors(
        self,
        source: int,
        count: int,
        rng: np.random.Generator,
        present: np.ndarray | None = None,
    ) -> list[int]:
        if count <= 0:
            return []
        if present is None:
            # Fully populated space: one row of the batched sampler, so that
            # per-node and all-nodes builds draw from the same stream the same
            # way (bit-identical graphs at a fixed seed).
            row = self.sample_neighbors_batch(np.array([source]), count, rng)
            return [int(c) for c in row[0]]
        weights = self._point_weights(source, present)
        total = weights.sum()
        if total <= 0:
            return []
        probabilities = weights / total
        chosen = rng.choice(self.n, size=count, replace=True, p=probabilities)
        return [int(c) for c in chosen]

    def sample_neighbors_batch(
        self,
        sources: np.ndarray,
        count: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample ``count`` long-link targets for *every* source in one draw.

        Returns an ``int64[len(sources), count]`` matrix of target labels,
        sampled with replacement per source (Theorem 13's model), using a
        single uniform draw of shape ``(len(sources), count)`` plus one
        ``searchsorted`` against the shared offset CDF.  Only supports the
        fully populated space (no ``present`` mask): binomially placed nodes
        condition each source's distribution on the presence mask, which
        breaks the shift invariance the shared CDF relies on.

        The draw order is row-major (all of source 0's links, then source 1's,
        ...), exactly the order :class:`~repro.core.builder.RandomGraphBuilder`
        attaches links in, so one-shot object builds and direct snapshot
        builds consume the generator identically.
        """
        sources = np.asarray(sources, dtype=np.int64)
        if count <= 0:
            return np.empty((sources.shape[0], 0), dtype=np.int64)
        uniforms = rng.random((sources.shape[0], count))
        offsets = np.searchsorted(self._offset_cdf(), uniforms, side="right")
        offsets = np.clip(offsets, 1, self.n - 1)
        return (sources[:, None] + offsets) % self.n

    def link_probability(self, distance: int) -> float:
        """Ideal probability that a single long link has ring distance ``distance``."""
        if distance < 1 or distance > self.n // 2:
            return 0.0
        weights = self._distance_weights()
        return float(weights[distance - 1] / weights.sum())

    def normalization_constant(self) -> float:
        """Return ``S = sum over points v != u of d(u, v)^-exponent``.

        For exponent 1 this is approximately ``2 * H_{n/2}``, the quantity the
        paper calls ``S < 2 H_n`` in Theorem 12's proof.
        """
        return float(self._distance_weights().sum())


@dataclass
class UniformLinkDistribution(LinkDistribution):
    """Uniform long-distance links: every other point is equally likely.

    Not a good routing distribution (greedy routing over it needs roughly
    ``sqrt(n)``-ish hops in expectation for a single link); included so the
    experiments can demonstrate *why* the inverse power law matters, which is
    precisely the point of the paper's lower bounds.
    """

    n: int

    def __post_init__(self) -> None:
        ensure_positive(self.n, "n")

    def sample_neighbors(
        self,
        source: int,
        count: int,
        rng: np.random.Generator,
        present: np.ndarray | None = None,
    ) -> list[int]:
        if count <= 0:
            return []
        if present is None:
            candidates = np.arange(self.n)
            candidates = candidates[candidates != source]
        else:
            candidates = np.flatnonzero(present)
            candidates = candidates[candidates != source]
        if candidates.size == 0:
            return []
        chosen = rng.choice(candidates, size=count, replace=True)
        return [int(c) for c in chosen]

    def link_probability(self, distance: int) -> float:
        if distance < 1 or distance > self.n // 2:
            return 0.0
        max_distance = self.n // 2
        # Each distance corresponds to 2 points except possibly the antipode.
        points_at_distance = 1 if (self.n % 2 == 0 and distance == max_distance) else 2
        return points_at_distance / (self.n - 1)


@dataclass
class DeterministicBaseBOffsets(LinkDistribution):
    """Deterministic base-``b`` digit links (Theorems 14 and 16).

    Two variants are provided:

    * ``full`` (Theorem 14): links at distances ``j * b^i`` for
      ``j = 1 .. b - 1`` and ``i = 0 .. ceil(log_b n) - 1``, in both
      directions.  Routing eliminates one base-``b`` digit of the remaining
      distance per hop, giving ``O(log_b n)`` delivery time.
    * ``powers`` (Theorem 16): links only at distances ``b^i``.  This is the
      simplified model the paper uses for the link-failure analysis, giving
      ``O(b log n / p)`` delivery time when each link survives with
      probability ``p``.

    Parameters
    ----------
    n:
        Size of the identifier space.
    base:
        The base ``b >= 2``.
    variant:
        Either ``"full"`` or ``"powers"``.
    bidirectional:
        When ``True`` links are created at both ``+delta`` and ``-delta``.
    """

    n: int
    base: int = 2
    variant: str = "full"
    bidirectional: bool = True

    def __post_init__(self) -> None:
        ensure_positive(self.n, "n")
        if self.base < 2:
            raise ValueError(f"base must be >= 2, got {self.base}")
        if self.variant not in ("full", "powers"):
            raise ValueError(f"variant must be 'full' or 'powers', got {self.variant!r}")

    def offsets(self) -> list[int]:
        """Return the positive link offsets of the scheme (sorted ascending)."""
        levels = max(1, math.ceil(math.log(self.n, self.base)))
        result: set[int] = set()
        if self.variant == "full":
            for i in range(levels):
                scale = self.base**i
                for j in range(1, self.base):
                    offset = j * scale
                    if 0 < offset < self.n:
                        result.add(offset)
        else:
            for i in range(levels + 1):
                offset = self.base**i
                if 0 < offset < self.n:
                    result.add(offset)
        return sorted(result)

    def expected_link_count(self) -> int:
        """Number of long links per node under this scheme."""
        count = len(self.offsets())
        return 2 * count if self.bidirectional else count

    def sample_neighbors(
        self,
        source: int,
        count: int,
        rng: np.random.Generator,
        present: np.ndarray | None = None,
    ) -> list[int]:
        """Return the deterministic neighbour set of ``source``.

        ``count`` and ``rng`` are ignored (the scheme fixes the links); when
        ``present`` is given, absent targets are simply skipped, mirroring the
        paper's "provided nodes are present at those distances".
        """
        neighbors: list[int] = []
        for offset in self.offsets():
            targets = [(source + offset) % self.n]
            if self.bidirectional:
                targets.append((source - offset) % self.n)
            for target in targets:
                if target == source:
                    continue
                if present is not None and not present[target]:
                    continue
                neighbors.append(int(target))
        return neighbors

    def link_probability(self, distance: int) -> float:
        raise NotImplementedError(
            "deterministic offset schemes do not define a link-length distribution"
        )


@dataclass
class KleinbergGridDistribution(LinkDistribution):
    """Kleinberg's exponent-``r`` distribution on a two-dimensional torus.

    ``Pr[v chosen] ∝ d(u, v)^-r`` with ``d`` the L1 torus distance.  Kleinberg
    [5] showed that greedy routing is polylogarithmic exactly when ``r`` equals
    the dimension (2 here); this class backs the Kleinberg-grid baseline and
    the higher-dimensional extension experiments.

    Point labels are flattened row-major indices into the ``side x side`` grid
    so that the class still satisfies the integer-label interface shared with
    the one-dimensional distributions.
    """

    side: int
    exponent: float = 2.0

    def __post_init__(self) -> None:
        ensure_positive(self.side, "side")
        self._torus = TorusMetric(self.side, dimensions=2)
        self.n = self.side * self.side

    def label_to_point(self, label: int) -> tuple[int, int]:
        """Convert a flattened label to (row, column) grid coordinates."""
        return (label // self.side, label % self.side)

    def point_to_label(self, point: tuple[int, int]) -> int:
        """Convert (row, column) grid coordinates to a flattened label."""
        row, column = point
        return (row % self.side) * self.side + (column % self.side)

    def sample_neighbors(
        self,
        source: int,
        count: int,
        rng: np.random.Generator,
        present: np.ndarray | None = None,
    ) -> list[int]:
        if count <= 0:
            return []
        source_point = self.label_to_point(source)
        labels = np.arange(self.n)
        rows, columns = labels // self.side, labels % self.side
        row_diff = np.abs(rows - source_point[0])
        column_diff = np.abs(columns - source_point[1])
        distance = np.minimum(row_diff, self.side - row_diff) + np.minimum(
            column_diff, self.side - column_diff
        )
        with np.errstate(divide="ignore"):
            weights = np.where(distance > 0, distance.astype(float) ** -self.exponent, 0.0)
        if present is not None:
            weights = np.where(present, weights, 0.0)
            weights[source] = 0.0
        total = weights.sum()
        if total <= 0:
            return []
        chosen = rng.choice(self.n, size=count, replace=True, p=weights / total)
        return [int(c) for c in chosen]

    def link_probability(self, distance: int) -> float:
        """Probability a single link spans L1 distance ``distance`` (from origin)."""
        if distance < 1:
            return 0.0
        labels = np.arange(self.n)
        rows, columns = labels // self.side, labels % self.side
        row_diff = np.minimum(rows, self.side - rows)
        column_diff = np.minimum(columns, self.side - columns)
        all_distances = row_diff + column_diff
        with np.errstate(divide="ignore"):
            weights = np.where(
                all_distances > 0, all_distances.astype(float) ** -self.exponent, 0.0
            )
        total = weights.sum()
        mass = weights[all_distances == distance].sum()
        return float(mass / total) if total > 0 else 0.0

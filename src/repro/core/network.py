"""High-level facade: a complete peer-to-peer resource-location network.

:class:`P2PNetwork` ties the pieces of the core library together into the
system the paper describes end to end:

* a metric space (ring) and a key hash embedding resources into it,
* an overlay graph maintained by the Section-5 construction heuristic as
  nodes join and leave,
* greedy routing with a configurable failure-recovery strategy for resource
  location, and
* a maintenance daemon that repairs the overlay after crashes.

The facade exposes the operations a downstream application needs —
``join``, ``leave``, ``crash``, ``publish``, ``lookup`` — and keeps simple
traffic counters so that applications can observe the message complexity the
paper analyses.  The richer storage semantics (replication, explicit
key-value payload transfer) live in :mod:`repro.dht`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.construction import (
    HeuristicConstruction,
    InverseDistanceReplacement,
    LinkReplacementPolicy,
)
from repro.core.identifiers import KeyHasher, Resource, ResourceEmbedding, Sha256Hasher
from repro.core.maintenance import MaintenanceDaemon
from repro.core.metric import RingMetric
from repro.core.routing import (
    GreedyRouter,
    RecoveryStrategy,
    RouteResult,
    RoutingMode,
)
from repro.util.rng import RandomSource
from repro.util.validation import ensure_positive

__all__ = ["LookupOutcome", "NetworkStatistics", "P2PNetwork"]


@dataclass
class LookupOutcome:
    """Result of a resource lookup through the network facade.

    Attributes
    ----------
    key:
        The key that was looked up.
    point:
        The metric-space point the key hashes to.
    found:
        Whether routing reached the node responsible for the point and that
        node holds the key.
    responsible:
        Label of the node that answered (or ``None`` when routing failed).
    route:
        The underlying :class:`~repro.core.routing.RouteResult`.
    value:
        The stored payload, when found.
    """

    key: str
    point: int
    found: bool
    responsible: int | None
    route: RouteResult
    value: Any = None


@dataclass
class NetworkStatistics:
    """Running traffic counters for a :class:`P2PNetwork`."""

    lookups: int = 0
    successful_lookups: int = 0
    publishes: int = 0
    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    routing_messages: int = 0
    maintenance_messages: int = 0

    def as_dict(self) -> dict:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "lookups": self.lookups,
            "successful_lookups": self.successful_lookups,
            "publishes": self.publishes,
            "joins": self.joins,
            "leaves": self.leaves,
            "crashes": self.crashes,
            "routing_messages": self.routing_messages,
            "maintenance_messages": self.maintenance_messages,
        }


class P2PNetwork:
    """A complete peer-to-peer lookup network over a ring identifier space.

    Parameters
    ----------
    space_size:
        Number of grid points of the identifier ring.  Node addresses and key
        hashes both live in ``[0, space_size)``.
    links_per_node:
        Number of long-distance links per node (defaults to ``ceil(lg
        space_size)``, the paper's choice).
    recovery:
        Failure-recovery strategy for lookups (default: backtracking, the
        best-performing strategy in the paper's experiments).
    replacement_policy:
        Link-replacement rule used by the construction heuristic.
    hasher:
        Key hasher; defaults to SHA-256.
    seed:
        Base seed for all randomness.

    Examples
    --------
    >>> network = P2PNetwork(space_size=1024, seed=1)
    >>> for address in range(0, 1024, 16):
    ...     network.join(address)
    >>> network.publish("alice.txt", value=b"hello", owner=0)
    0
    >>> outcome = network.lookup("alice.txt", origin=512)
    >>> outcome.found
    True
    """

    def __init__(
        self,
        space_size: int,
        links_per_node: int | None = None,
        recovery: RecoveryStrategy = RecoveryStrategy.BACKTRACK,
        replacement_policy: LinkReplacementPolicy | None = None,
        hasher: KeyHasher | None = None,
        routing_mode: RoutingMode = RoutingMode.TWO_SIDED,
        strict_best_neighbor: bool = False,
        seed: int = 0,
    ) -> None:
        ensure_positive(space_size, "space_size")
        self.space = RingMetric(space_size)
        if links_per_node is None:
            links_per_node = max(1, int(np.ceil(np.log2(max(2, space_size)))))
        self.links_per_node = links_per_node
        self.recovery = recovery
        self.routing_mode = routing_mode
        self.strict_best_neighbor = strict_best_neighbor
        self.seed = seed
        self._random = RandomSource(seed=seed)

        self.construction = HeuristicConstruction(
            space=self.space,
            links_per_node=links_per_node,
            replacement_policy=replacement_policy or InverseDistanceReplacement(),
            seed=seed,
        )
        self.maintenance = MaintenanceDaemon(self.construction)
        self.hasher = hasher or Sha256Hasher(space_size)
        self.embedding = ResourceEmbedding(space=self.space, hasher=self.hasher)
        self.statistics = NetworkStatistics()

        # key -> (value, point) store at the responsible node; keyed by node label.
        self._stored: dict[int, dict[str, Any]] = {}

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def graph(self):
        """The underlying overlay graph."""
        return self.construction.graph

    def members(self) -> list[int]:
        """Return the labels of all live member nodes."""
        return self.graph.labels(only_alive=True)

    # -- Overlay protocol surface (see repro.overlay) ------------------------
    # The facade conforms to the same structural interface as the baseline
    # topologies, so harness code can treat all five interchangeably.  The
    # liveness state lives in the overlay graph rather than a mixin array.

    def labels(self, only_alive: bool = True) -> list[int]:
        """Member labels in ascending order (the protocol's promise).

        The underlying graph's own ``labels()`` keeps insertion order —
        which :meth:`compile_fastpath` still relies on for re-route draw
        parity — so the facade sorts a copy here.
        """
        return sorted(self.graph.labels(only_alive=only_alive))

    def is_alive(self, label: int) -> bool:
        """Whether ``label`` is a live member (``False`` for non-members)."""
        return self.graph.has_node(label) and self.graph.is_alive(label)

    def neighbors_of(self, label: int) -> list[int]:
        """The neighbour labels the greedy router considers at ``label``."""
        return self.graph.neighbors_of(label)

    def fail_node(self, label: int) -> None:
        """Crash the member at ``label`` (no-op for non-members and the dead)."""
        if self.graph.has_node(label) and self.graph.is_alive(label):
            self.crash(label)

    def fail_fraction(
        self, fraction: float, seed: int = 0, protect: set[int] | None = None
    ) -> list[int]:
        """Crash a uniformly random fraction of the live members."""
        from repro.overlay.mixin import apply_fail_fraction

        return apply_fail_fraction(self, fraction, seed, protect, "network-failures")

    def route(self, source: int, target: int) -> RouteResult:
        """Route between two member nodes using the configured strategy."""
        return self._route(source, target)

    def compile_snapshot(self):
        """Compile the current overlay into an immutable array snapshot.

        The snapshot pairs with :class:`~repro.fastpath.BatchGreedyRouter`
        (or :meth:`compile_fastpath`, which also wires this network's routing
        configuration in); batched routes over it are hop-for-hop identical
        to the scalar :meth:`route`.
        """
        from repro.fastpath import compile_snapshot

        return compile_snapshot(self.graph)

    def join(self, address: int) -> None:
        """Add a node at ``address`` to the network.

        Raises
        ------
        ValueError
            If the address is outside the identifier space or already taken.
        """
        if not self.space.contains(address):
            raise ValueError(
                f"address {address} is outside the identifier space "
                f"[0, {self.space.size()})"
            )
        self.construction.add_point(address)
        self._stored.setdefault(address, {})
        self.statistics.joins += 1
        self._rebalance_keys_to(address)

    def join_many(self, addresses: list[int]) -> None:
        """Add several nodes in the given order."""
        for address in addresses:
            self.join(address)

    def leave(self, address: int) -> None:
        """Gracefully remove a node: its keys are handed to its successor."""
        if not self.graph.has_node(address):
            raise ValueError(f"no node at address {address}")
        keys = self._stored.pop(address, {})
        report = self.maintenance.handle_departure(address)
        self.statistics.leaves += 1
        self.statistics.maintenance_messages += report.messages
        successor = self.graph.closest_live_vertex(address)
        if successor is not None and keys:
            self._stored.setdefault(successor, {}).update(keys)

    def crash(self, address: int) -> None:
        """Abruptly fail a node: its keys are lost until maintenance runs."""
        if not self.graph.has_node(address):
            raise ValueError(f"no node at address {address}")
        self.graph.fail_node(address)
        self.statistics.crashes += 1

    def repair(self) -> None:
        """Run a maintenance pass over the whole network.

        Crashed nodes are excised from the construction, their former
        neighbours regenerate links, and stored keys whose responsible node
        died are re-homed at the new responsible node when any replica of the
        key is still reachable (the facade keeps none, so crashed keys are
        simply dropped — the DHT layer adds replication).
        """
        crashed = [
            node.label for node in self.graph.nodes() if not node.alive
        ]
        for label in crashed:
            self._stored.pop(label, None)
            report = self.maintenance.handle_departure(label)
            self.statistics.maintenance_messages += report.messages
        report = self.maintenance.repair_all()
        self.statistics.maintenance_messages += report.messages

    # ------------------------------------------------------------------ #
    # Resource operations
    # ------------------------------------------------------------------ #

    def responsible_node(self, point: int) -> int | None:
        """Return the live node responsible for ``point`` (the closest one)."""
        return self.graph.closest_live_vertex(point)

    def publish(self, key: str, value: Any = None, owner: int | None = None) -> int | None:
        """Publish a resource: route it to the responsible node and store it there.

        Parameters
        ----------
        key:
            Resource key.
        value:
            Payload stored at the responsible node.
        owner:
            Address of the publishing node; used as the routing origin.  When
            omitted, a random live member is used.

        Returns
        -------
        int or None
            The label of the node now storing the key, or ``None`` when the
            publish could not be routed.
        """
        members = self.members()
        if not members:
            raise RuntimeError("cannot publish into an empty network")
        origin = owner if owner is not None and self.graph.is_alive(owner) else None
        if origin is None:
            index = int(self._random.stream("publish-origin").integers(0, len(members)))
            origin = members[index]

        resource = Resource(key=key, owner=origin, payload=value)
        point = self.embedding.embed(resource)
        responsible = self.responsible_node(point)
        if responsible is None:
            return None

        route = self._route(origin, responsible)
        self.statistics.publishes += 1
        self.statistics.routing_messages += route.hops
        if not route.success:
            return None
        self._stored.setdefault(responsible, {})[key] = value
        return responsible

    def lookup(self, key: str, origin: int | None = None) -> LookupOutcome:
        """Locate the resource with ``key`` starting from ``origin``.

        The lookup routes greedily towards the point the key hashes to and
        succeeds when it reaches the responsible live node and that node holds
        the key.
        """
        members = self.members()
        if not members:
            raise RuntimeError("cannot look up in an empty network")
        if origin is None or not self.graph.is_alive(origin):
            index = int(self._random.stream("lookup-origin").integers(0, len(members)))
            origin = members[index]

        point = self.embedding.point_of(key)
        responsible = self.responsible_node(point)
        self.statistics.lookups += 1
        if responsible is None:
            empty = RouteResult(success=False, hops=0, path=[origin])
            return LookupOutcome(
                key=key, point=point, found=False, responsible=None, route=empty
            )

        route = self._route(origin, responsible)
        self.statistics.routing_messages += route.hops
        stored = self._stored.get(responsible, {})
        found = route.success and key in stored
        if found:
            self.statistics.successful_lookups += 1
        return LookupOutcome(
            key=key,
            point=point,
            found=found,
            responsible=responsible if route.success else None,
            route=route,
            value=stored.get(key) if found else None,
        )

    def stored_keys(self, address: int) -> frozenset[str]:
        """Return the keys currently stored at the node with ``address``."""
        return frozenset(self._stored.get(address, {}))

    # ------------------------------------------------------------------ #
    # Fastpath compilation
    # ------------------------------------------------------------------ #

    def compile_fastpath(self, recovery: RecoveryStrategy | None = None):
        """Compile the current overlay into a batched fastpath router.

        Returns a :class:`~repro.fastpath.BatchGreedyRouter` over an immutable
        array snapshot of the overlay as it stands *right now* — membership
        changes after compilation are not reflected; compile again after a
        batch of joins/leaves/crashes (compilation is cheap relative to the
        traffic it serves).  The router inherits this network's routing mode
        and ``strict_best_neighbor`` setting.

        Parameters
        ----------
        recovery:
            Recovery strategy for the batched router; defaults to this
            network's configured strategy.  All three Section-6 strategies
            (terminate, random re-route, backtracking) run batched.  A batch
            is hop-for-hop identical to routing the same pairs sequentially
            through one scalar :class:`~repro.core.routing.GreedyRouter`
            seeded with this network's seed; note that is a different
            random-re-route draw sequence than per-call :meth:`lookup`,
            which spins up a fresh router (fresh detour stream) per query.
        """
        # Imported here: repro.fastpath depends on repro.core, so a module-level
        # import would create a cycle through the package __init__.
        from repro.fastpath import BatchGreedyRouter, compile_snapshot

        resolved = self.recovery if recovery is None else recovery
        reroute_pool = None
        if resolved is RecoveryStrategy.RANDOM_REROUTE:
            # Detour draws index the scalar router's live-node list, which is
            # join order here — not necessarily sorted label order.
            reroute_pool = self.graph.labels(only_alive=True)
        return BatchGreedyRouter(
            snapshot=compile_snapshot(self.graph),
            mode=self.routing_mode,
            recovery=resolved,
            strict_best_neighbor=self.strict_best_neighbor,
            seed=self.seed,
            reroute_pool=reroute_pool,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _route(self, source: int, target: int) -> RouteResult:
        """Route between two member nodes using the configured strategy."""
        router = GreedyRouter(
            graph=self.graph,
            mode=self.routing_mode,
            recovery=self.recovery,
            strict_best_neighbor=self.strict_best_neighbor,
            seed=self._random.seed,
        )
        return router.route(source, target)

    def _rebalance_keys_to(self, newcomer: int) -> None:
        """Move keys whose point is now closest to ``newcomer`` onto it.

        Run after a join so that responsibility follows the metric-space rule
        "the responsible node is the live node closest to the key's point".
        """
        for holder in list(self._stored):
            if holder == newcomer or not self.graph.is_alive(holder):
                continue
            stored_here = self._stored[holder]
            moving = []
            for key in stored_here:
                point = self.embedding.point_of(key)
                if self.space.distance(newcomer, point) < self.space.distance(holder, point):
                    moving.append(key)
            for key in moving:
                self._stored.setdefault(newcomer, {})[key] = stored_here.pop(key)

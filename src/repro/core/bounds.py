"""Theoretical bounds from Section 4 and Table 1 of the paper.

This module turns the paper's analytical results into executable code so that
the experiment harness can plot *measured* hop counts next to the *predicted*
asymptotic shapes, and so that the probabilistic-recurrence machinery
(Lemma 1 and Theorem 2) is available as reusable numerical tools.

Contents
--------
* :func:`harmonic` — harmonic numbers ``H_n`` (the paper's delivery-time
  bounds are naturally expressed in terms of ``H_n ~ ln n``).
* :func:`karp_upfal_wigderson_bound` — the Lemma-1 upper bound
  ``T(X0) <= ∫ 1/μ_z dz`` for a non-increasing Markov chain with
  non-decreasing drift ``μ_z``.
* :func:`theorem2_lower_bound` — the Theorem-2 lower bound
  ``E[τ] >= T(X0) / (ε T(X0) + 1 − ε)``.
* :class:`Table1Bounds` — closed-form evaluations of every row of Table 1,
  with both the upper-bound and (where stated) the lower-bound expression.
* Per-theorem helpers (:func:`upper_bound_single_link`,
  :func:`upper_bound_multiple_links`, ...) mapping directly onto
  Theorems 12–18.

Asymptotic bounds hide constants; each helper therefore returns the *shape*
(the expression inside the O/Ω) so that experiments can fit a single scaling
constant and compare growth rates rather than absolute values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.distributions import harmonic_number
from repro.util.validation import ensure_positive, ensure_probability

__all__ = [
    "harmonic",
    "karp_upfal_wigderson_bound",
    "theorem2_lower_bound",
    "upper_bound_single_link",
    "upper_bound_multiple_links",
    "upper_bound_deterministic",
    "upper_bound_link_failures_random",
    "upper_bound_link_failures_deterministic",
    "upper_bound_node_failures",
    "lower_bound_one_sided",
    "lower_bound_two_sided",
    "lower_bound_large_degree",
    "Table1Bounds",
    "fit_scale_factor",
]


def harmonic(n: int) -> float:
    """The n-th harmonic number ``H_n`` (alias for the distributions helper)."""
    return harmonic_number(n)


def karp_upfal_wigderson_bound(
    start: float,
    drift: Callable[[float], float],
    floor: float = 1.0,
    samples: int = 10_000,
) -> float:
    """Numerically evaluate the Lemma-1 upper bound ``∫_floor^start dz / μ_z``.

    Parameters
    ----------
    start:
        The chain's starting value ``X0``.
    drift:
        The drift function ``μ_z = E[X_t − X_{t+1} | X_t = z]``; must be
        positive on ``[floor, start]`` and non-decreasing for the bound to be
        valid (the caller is responsible for the monotonicity condition).
    floor:
        Lower limit of the integral (the chain's absorbing threshold, 1 in the
        paper's statement).
    samples:
        Number of points for the trapezoidal quadrature.

    Returns
    -------
    float
        An upper bound on the expected time for the chain to drop to ``floor``.
    """
    ensure_positive(samples, "samples")
    if start <= floor:
        return 0.0
    grid = np.linspace(floor, start, samples)
    values = np.array([1.0 / drift(z) for z in grid])
    if np.any(~np.isfinite(values)) or np.any(values < 0):
        raise ValueError("drift must be positive and finite over the integration range")
    return float(np.trapezoid(values, grid))


def theorem2_lower_bound(
    start: float,
    speed_cap: Callable[[float], float],
    epsilon: float,
    samples: int = 10_000,
) -> float:
    """Numerically evaluate the Theorem-2 lower bound.

    ``T(X0) = ∫_0^{f(X0)} dz / m_z`` and
    ``E[τ] >= T(X0) / (ε T(X0) + 1 − ε)``.

    Parameters
    ----------
    start:
        The starting potential ``f(X0)`` (e.g. ``ln n``).
    speed_cap:
        The function ``m_z`` bounding the average speed past ``z``.
    epsilon:
        Probability bound on long jumps (the paper's ``ε``).
    samples:
        Number of points for the trapezoidal quadrature.
    """
    ensure_probability(epsilon, "epsilon")
    if start <= 0:
        return 0.0
    grid = np.linspace(0.0, start, samples)[1:]
    values = np.array([1.0 / speed_cap(z) for z in grid])
    if np.any(~np.isfinite(values)) or np.any(values < 0):
        raise ValueError("speed_cap must be positive and finite over the integration range")
    big_t = float(np.trapezoid(values, grid))
    return big_t / (epsilon * big_t + (1.0 - epsilon))


# --------------------------------------------------------------------------- #
# Upper bounds (Theorems 12–18)
# --------------------------------------------------------------------------- #


def upper_bound_single_link(n: int) -> float:
    """Theorem 12: ``O(H_n^2)`` delivery time with a single long link per node."""
    ensure_positive(n, "n")
    return harmonic(n) ** 2


def upper_bound_multiple_links(n: int, links: float) -> float:
    """Theorem 13: ``O(log^2 n / l)`` with ``l`` links in ``[1, lg n]``."""
    ensure_positive(n, "n")
    ensure_positive(links, "links")
    return math.log2(max(2, n)) ** 2 / links


def upper_bound_deterministic(n: int, base: int) -> float:
    """Theorem 14: ``O(log_b n)`` with the deterministic base-``b`` digit links."""
    ensure_positive(n, "n")
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    return math.log(max(2, n), base)


def upper_bound_link_failures_random(n: int, links: float, p: float) -> float:
    """Theorem 15: ``O(log^2 n / (p l))`` when each long link survives w.p. ``p``."""
    ensure_positive(n, "n")
    ensure_positive(links, "links")
    ensure_probability(p, "p")
    if p == 0:
        return math.inf
    return math.log2(max(2, n)) ** 2 / (p * links)


def upper_bound_link_failures_deterministic(n: int, base: int, p: float) -> float:
    """Theorem 16: ``O(b H_n / p)`` for power-of-``b`` links with survival ``p``."""
    ensure_positive(n, "n")
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    ensure_probability(p, "p")
    if p == 0:
        return math.inf
    return base * harmonic(n) / p


def upper_bound_node_failures(n: int, links: float, p: float) -> float:
    """Theorem 18: ``O(log^2 n / ((1 − p) l))`` when each node fails w.p. ``p``."""
    ensure_positive(n, "n")
    ensure_positive(links, "links")
    ensure_probability(p, "p")
    if p >= 1:
        return math.inf
    return math.log2(max(2, n)) ** 2 / ((1.0 - p) * links)


# --------------------------------------------------------------------------- #
# Lower bounds (Theorems 3 and 10)
# --------------------------------------------------------------------------- #


def lower_bound_one_sided(n: int, links: float) -> float:
    """Theorem 10, one-sided: ``Ω(log^2 n / (l log log n))``."""
    ensure_positive(n, "n")
    ensure_positive(links, "links")
    log_n = math.log2(max(4, n))
    return log_n**2 / (links * max(1.0, math.log2(log_n)))


def lower_bound_two_sided(n: int, links: float) -> float:
    """Theorem 10, two-sided: ``Ω(log^2 n / (l^2 log log n))``."""
    ensure_positive(n, "n")
    ensure_positive(links, "links")
    log_n = math.log2(max(4, n))
    return log_n**2 / (links**2 * max(1.0, math.log2(log_n)))


def lower_bound_large_degree(n: int, links: float) -> float:
    """Theorem 3: ``Ω(log n / log l)`` for ``l`` in ``(lg n, n^c]``."""
    ensure_positive(n, "n")
    if links <= 1:
        raise ValueError(f"links must exceed 1 for Theorem 3, got {links}")
    return math.log2(max(2, n)) / math.log2(links)


# --------------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Table1Bounds:
    """Closed-form evaluation of every row of the paper's Table 1.

    Each method returns a ``(upper, lower)`` pair of bound *shapes* for the
    given parameters; ``lower`` is ``None`` for the rows where the paper
    states no lower bound (the failure models).

    Parameters
    ----------
    n:
        Number of nodes.
    """

    n: int

    def no_failures_single_link(self) -> tuple[float, float]:
        """Row 1: ``l = 1``, no failures."""
        upper = upper_bound_single_link(self.n)
        log_n = math.log2(max(4, self.n))
        lower = log_n**2 / max(1.0, math.log2(log_n))
        return upper, lower

    def no_failures_polylog_links(self, links: float) -> tuple[float, float]:
        """Row 2: ``l`` in ``[1, lg n]``, no failures."""
        return (
            upper_bound_multiple_links(self.n, links),
            lower_bound_one_sided(self.n, links),
        )

    def no_failures_large_links(self, base: int, links: float) -> tuple[float, float]:
        """Row 3: ``l`` in ``(lg n, n^c]``, deterministic base-``b`` links."""
        return (
            upper_bound_deterministic(self.n, base),
            lower_bound_large_degree(self.n, links),
        )

    def link_failures_polylog_links(self, links: float, p: float) -> tuple[float, None]:
        """Row 4: link failures, random strategy."""
        return upper_bound_link_failures_random(self.n, links, p), None

    def link_failures_deterministic(self, base: int, p: float) -> tuple[float, None]:
        """Row 5: link failures, deterministic strategy."""
        return upper_bound_link_failures_deterministic(self.n, base, p), None

    def node_failures_polylog_links(self, links: float, p: float) -> tuple[float, None]:
        """Row 6: node failures (each node alive w.p. ``1 − p``)."""
        return upper_bound_node_failures(self.n, links, p), None

    def rows(self, links: float | None = None, base: int = 2, p: float = 0.5) -> list[dict]:
        """Return all Table-1 rows evaluated at representative parameters.

        Useful for printing a summary table next to measured values.
        """
        if links is None:
            links = max(1.0, math.log2(max(2, self.n)))
        row_definitions = [
            ("no failures, l=1", self.no_failures_single_link()),
            (f"no failures, l={links:g}", self.no_failures_polylog_links(links)),
            (f"no failures, base-{base} deterministic",
             self.no_failures_large_links(base, links=max(2.0, links))),
            (f"link failures p={p:g}, l={links:g}",
             self.link_failures_polylog_links(links, p)),
            (f"link failures p={p:g}, base-{base}",
             self.link_failures_deterministic(base, p)),
            (f"node failures p={p:g}, l={links:g}",
             self.node_failures_polylog_links(links, p)),
        ]
        return [
            {"model": name, "upper_bound": upper, "lower_bound": lower}
            for name, (upper, lower) in row_definitions
        ]


def fit_scale_factor(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Fit the single multiplicative constant ``c`` minimising ``|measured − c·predicted|²``.

    Asymptotic bounds are only defined up to a constant; the experiments use
    this least-squares fit to overlay the predicted shape on the measured
    curve and then compare *shapes* (ratios, crossing points) rather than
    absolute values.

    Returns 0.0 when ``predicted`` is identically zero.
    """
    measured_array = np.asarray(measured, dtype=float)
    predicted_array = np.asarray(predicted, dtype=float)
    if measured_array.shape != predicted_array.shape:
        raise ValueError("measured and predicted must have the same length")
    denominator = float(np.dot(predicted_array, predicted_array))
    if denominator == 0.0:
        return 0.0
    return float(np.dot(measured_array, predicted_array) / denominator)

"""Metric spaces into which resources and nodes are embedded.

The paper (Section 2) models a peer-to-peer system as a random graph embedded
in a metric space ``(V, d)``: resources are hashed to points of ``V`` and
greedy routing forwards a message to the neighbour whose point is closest to
the target under ``d``.  Almost all of the paper's analysis takes place on a
one-dimensional space — the integer **line** (Section 4) or, equivalently for
the experiments, a **ring** of ``n`` grid points.  Section 7 raises
higher-dimensional spaces as future work; we provide a d-dimensional torus so
that the Kleinberg-style baselines and the extension experiments have a home.

Every metric space in this module is a space of *integer grid points* (the
paper embeds nodes at grid points), identified by either a single integer
(line, ring) or a tuple of integers (torus).  The classes are deliberately
small: they expose distance, the directed offset used by one-sided routing,
and uniform sampling of points.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.util.validation import ensure_positive

__all__ = [
    "MetricSpace",
    "LineMetric",
    "RingMetric",
    "TorusMetric",
    "PrefixMetric",
]

Point = int | tuple[int, ...]


class MetricSpace(abc.ABC):
    """Abstract base class for the metric spaces used by the overlay.

    Subclasses must define :meth:`distance`, :meth:`size`, :meth:`contains`,
    and :meth:`all_points`.  The default implementations of
    :meth:`closest` and :meth:`is_closer` are expressed in terms of
    :meth:`distance` and apply to any subclass.
    """

    @abc.abstractmethod
    def distance(self, a: Point, b: Point) -> int:
        """Return the metric distance ``d(a, b)`` between two points."""

    @abc.abstractmethod
    def size(self) -> int:
        """Return the total number of grid points in the space."""

    @abc.abstractmethod
    def contains(self, point: Point) -> bool:
        """Return ``True`` when ``point`` is a valid grid point of the space."""

    @abc.abstractmethod
    def all_points(self) -> Iterable[Point]:
        """Iterate over every grid point of the space (for small spaces only)."""

    # ------------------------------------------------------------------ #
    # Generic helpers expressed in terms of ``distance``.
    # ------------------------------------------------------------------ #

    def closest(self, target: Point, candidates: Sequence[Point]) -> Point:
        """Return the candidate point closest to ``target``.

        Ties are broken in favour of the earliest candidate, which makes the
        greedy router deterministic given its neighbour ordering.

        Raises
        ------
        ValueError
            If ``candidates`` is empty.
        """
        if not candidates:
            raise ValueError("closest() requires at least one candidate point")
        best = candidates[0]
        best_distance = self.distance(best, target)
        for candidate in candidates[1:]:
            candidate_distance = self.distance(candidate, target)
            if candidate_distance < best_distance:
                best = candidate
                best_distance = candidate_distance
        return best

    def is_closer(self, a: Point, b: Point, target: Point) -> bool:
        """Return ``True`` when ``a`` is strictly closer to ``target`` than ``b``."""
        return self.distance(a, target) < self.distance(b, target)

    # One-dimensional spaces additionally expose a *signed* displacement used
    # by one-sided routing ("never jump past the target").  Spaces for which
    # the notion does not apply raise ``NotImplementedError``.

    def displacement(self, source: Point, target: Point) -> int:
        """Return a signed displacement from ``source`` towards ``target``.

        Only meaningful for one-dimensional spaces; the sign indicates the
        direction of travel and the magnitude equals :meth:`distance`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a signed displacement"
        )


@dataclass(frozen=True)
class LineMetric(MetricSpace):
    """The one-dimensional line of grid points ``{0, 1, ..., n - 1}``.

    This is the space used throughout Section 4 of the paper: nodes sit at
    integer grid points and the distance between two points is the absolute
    difference of their labels.  The line has boundaries, which is what makes
    one-sided routing (never overshoot the target) the natural model when the
    target sits at an endpoint.

    Parameters
    ----------
    n:
        Number of grid points.  Points are labelled ``0 .. n - 1``.
    """

    n: int

    def __post_init__(self) -> None:
        ensure_positive(self.n, "n")

    def distance(self, a: int, b: int) -> int:
        """Absolute difference ``|a - b|``."""
        return abs(int(a) - int(b))

    def displacement(self, source: int, target: int) -> int:
        """Signed difference ``target - source``."""
        return int(target) - int(source)

    def size(self) -> int:
        return self.n

    def contains(self, point: int) -> bool:
        return isinstance(point, (int,)) and 0 <= point < self.n

    def all_points(self) -> Iterable[int]:
        return range(self.n)


@dataclass(frozen=True)
class RingMetric(MetricSpace):
    """A ring (circle) of ``n`` grid points with wrap-around distance.

    The paper's experiments (Section 6) and systems such as Chord place
    identifiers on a modulo-``n`` circle; distance is measured along the
    circumference in whichever direction is shorter.  The ring removes the
    boundary effects of the line and is the default space for the library's
    experiments.

    Parameters
    ----------
    n:
        Number of grid points.  Points are labelled ``0 .. n - 1``.
    """

    n: int

    def __post_init__(self) -> None:
        ensure_positive(self.n, "n")

    def distance(self, a: int, b: int) -> int:
        """Shorter arc distance between ``a`` and ``b`` on the ring."""
        diff = abs(int(a) - int(b)) % self.n
        return min(diff, self.n - diff)

    def displacement(self, source: int, target: int) -> int:
        """Signed shorter-arc displacement from ``source`` to ``target``.

        Positive values mean clockwise travel (increasing labels).  When the
        two arcs are equal in length the positive direction is returned.
        """
        forward = (int(target) - int(source)) % self.n
        backward = forward - self.n
        return forward if forward <= -backward else backward

    def clockwise_distance(self, a: int, b: int) -> int:
        """Distance from ``a`` to ``b`` travelling only clockwise.

        This is the one-sided notion of distance used by Chord-style routing,
        where every link points in a single direction around the ring.
        """
        return (int(b) - int(a)) % self.n

    def size(self) -> int:
        return self.n

    def contains(self, point: int) -> bool:
        return isinstance(point, (int,)) and 0 <= point < self.n

    def all_points(self) -> Iterable[int]:
        return range(self.n)


@dataclass(frozen=True)
class TorusMetric(MetricSpace):
    """A ``d``-dimensional torus of side length ``side`` with L1 (Manhattan) distance.

    Used by the CAN and Kleinberg-grid baselines and by the higher-dimensional
    extension experiments.  Points are ``d``-tuples of integers in
    ``[0, side)`` and each coordinate wraps around.

    Parameters
    ----------
    side:
        Side length of the torus in every dimension.
    dimensions:
        Number of dimensions ``d`` (the paper's baselines use ``d = 2``).
    """

    side: int
    dimensions: int = 2

    def __post_init__(self) -> None:
        ensure_positive(self.side, "side")
        ensure_positive(self.dimensions, "dimensions")

    def distance(self, a: tuple[int, ...], b: tuple[int, ...]) -> int:
        """Sum over coordinates of the wrap-around distance in that coordinate."""
        if len(a) != self.dimensions or len(b) != self.dimensions:
            raise ValueError(
                f"points must have {self.dimensions} coordinates, "
                f"got {len(a)} and {len(b)}"
            )
        total = 0
        for coordinate_a, coordinate_b in zip(a, b):
            diff = abs(int(coordinate_a) - int(coordinate_b)) % self.side
            total += min(diff, self.side - diff)
        return total

    def size(self) -> int:
        return self.side**self.dimensions

    def contains(self, point: tuple[int, ...]) -> bool:
        if not isinstance(point, tuple) or len(point) != self.dimensions:
            return False
        return all(isinstance(c, int) and 0 <= c < self.side for c in point)

    def all_points(self) -> Iterable[tuple[int, ...]]:
        def generate(prefix: tuple[int, ...], remaining: int):
            if remaining == 0:
                yield prefix
                return
            for coordinate in range(self.side):
                yield from generate(prefix + (coordinate,), remaining - 1)

        return generate((), self.dimensions)

    def wrap(self, point: Sequence[int]) -> tuple[int, ...]:
        """Wrap an arbitrary integer vector onto the torus."""
        if len(point) != self.dimensions:
            raise ValueError(
                f"point must have {self.dimensions} coordinates, got {len(point)}"
            )
        return tuple(int(c) % self.side for c in point)


@dataclass(frozen=True)
class PrefixMetric(MetricSpace):
    """The digit-prefix ultrametric used by Plaxton / Tapestry-style routing.

    Points are integers in ``[0, base ** digits)`` read as ``digits``
    base-``base`` digit strings (most significant first); the distance between
    two points is the number of trailing digit levels where they differ:
    ``digits - shared_prefix_length``.  Fixing the target's digits one at a
    time — the Plaxton forwarding rule — is exactly greedy routing under this
    metric, which is how Section 3 of the paper folds prefix-routing schemes
    into its metric-space framework.

    Parameters
    ----------
    base:
        Digit base (``>= 2``).
    digits:
        Number of identifier digits.
    """

    base: int
    digits: int

    def __post_init__(self) -> None:
        if self.base < 2:
            raise ValueError(f"base must be >= 2, got {self.base}")
        ensure_positive(self.digits, "digits")

    def shared_prefix_length(self, a: int, b: int) -> int:
        """Number of leading base-``base`` digits ``a`` and ``b`` share."""
        a, b = int(a), int(b)
        shared = self.digits
        while a != b:
            a //= self.base
            b //= self.base
            shared -= 1
        return shared

    def distance(self, a: int, b: int) -> int:
        """``digits - shared_prefix_length(a, b)`` (an ultrametric)."""
        return self.digits - self.shared_prefix_length(a, b)

    def size(self) -> int:
        return self.base**self.digits

    def contains(self, point: int) -> bool:
        return isinstance(point, int) and 0 <= point < self.size()

    def all_points(self) -> Iterable[int]:
        return range(self.size())

"""Self-maintenance: detecting and repairing damage to the overlay.

The paper argues (Section 2) that random graphs are attractive partly because
"most random structures require less work to maintain their much weaker
invariants", and that the repair mechanism's traffic can be amortised over
searches.  This module provides that repair mechanism:

* :class:`MaintenanceDaemon` scans a node's neighbourhood, drops links that
  point at dead nodes, regenerates replacements through the Section-5
  heuristic, and re-stitches the ring of immediate neighbours around departed
  nodes.
* :class:`MaintenanceReport` summarises what a repair pass did, so that
  experiments can report repair traffic alongside search traffic.

The daemon operates on a :class:`~repro.core.construction.HeuristicConstruction`
(that object owns the link-replacement policy and the sorted ring); a thin
wrapper is provided for statically built graphs as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.construction import HeuristicConstruction
from repro.core.graph import OverlayGraph
from repro.telemetry.core import current as telemetry_current

__all__ = ["MaintenanceReport", "MaintenanceDaemon", "prune_dead_links"]


@dataclass
class MaintenanceReport:
    """Summary of a repair pass.

    Attributes
    ----------
    dead_links_dropped:
        Long links removed because their target node was dead or missing.
    links_regenerated:
        Replacement long links created via the construction heuristic.
    ring_repairs:
        Immediate-neighbour pointers re-stitched around departed nodes.
    messages:
        Estimated message cost of the pass (one message per dropped link probe
        plus one search per regenerated link, using the regenerating node's
        hop count when available).
    """

    dead_links_dropped: int = 0
    links_regenerated: int = 0
    ring_repairs: int = 0
    messages: int = 0

    def merge(self, other: "MaintenanceReport") -> "MaintenanceReport":
        """Return a new report summing this one with ``other``."""
        return MaintenanceReport(
            dead_links_dropped=self.dead_links_dropped + other.dead_links_dropped,
            links_regenerated=self.links_regenerated + other.links_regenerated,
            ring_repairs=self.ring_repairs + other.ring_repairs,
            messages=self.messages + other.messages,
        )


def prune_dead_links(graph: OverlayGraph) -> int:
    """Remove every long link whose target node is dead or missing.

    Returns the number of links removed.  This is the "detect" half of
    maintenance and can be used on statically built graphs that have no
    construction heuristic attached.  Removal goes through
    :meth:`OverlayGraph.remove_long_link` so the reverse index (and any
    attached delta recorder) stays consistent.
    """
    removed = 0
    for node in graph.nodes():
        for target in [
            link.target for link in node.long_links if not graph.is_alive(link.target)
        ]:
            graph.remove_long_link(node.label, target)
            removed += 1
    return removed


@dataclass
class MaintenanceDaemon:
    """Periodic repair of a heuristically constructed network.

    Parameters
    ----------
    construction:
        The construction object owning the graph, ring ordering, and
        link-replacement policy.
    regenerate:
        Whether dropped links should be replaced with fresh ones drawn from
        the ideal distribution (``True``, the paper's suggestion) or simply
        removed (``False``).
    """

    construction: HeuristicConstruction
    regenerate: bool = True
    _last_report: MaintenanceReport = field(default_factory=MaintenanceReport, repr=False)

    @property
    def graph(self) -> OverlayGraph:
        """The graph being maintained."""
        return self.construction.graph

    def repair_node(self, label: int) -> MaintenanceReport:
        """Repair the outgoing links of a single live node.

        Dropped links are removed through the graph's mutator (keeping the
        reverse index — and any attached
        :class:`~repro.fastpath.delta.DeltaRecorder` — consistent).
        """
        report = MaintenanceReport()
        graph = self.graph
        if not graph.is_alive(label):
            return report
        node = graph.node(label)
        dead_targets = [
            link.target for link in node.long_links if not graph.is_alive(link.target)
        ]
        for target in dead_targets:
            graph.remove_long_link(label, target)
            report.dead_links_dropped += 1
            report.messages += 1
        if self.regenerate:
            for _ in range(report.dead_links_dropped):
                new_target = self.construction.regenerate_link(label)
                if new_target is not None:
                    report.links_regenerated += 1
                    report.messages += 1
        return report

    def repair_all(self) -> MaintenanceReport:
        """Repair every live node and re-stitch the ring; return the summed report."""
        report = MaintenanceReport()
        for label in list(self.graph.labels(only_alive=True)):
            report = report.merge(self.repair_node(label))
        report.ring_repairs += self._restitch_ring()
        self._last_report = report
        return report

    def repair_all_batched(self) -> MaintenanceReport:
        """Batched :meth:`repair_all`: identical end state, cheaper detection.

        ``repair_all`` walks every live node's link list even when nothing
        is broken; this variant finds every dead-target link up front
        through the graph's reverse index (one scan for dead node records,
        then only *their* incoming lists) and repairs only the affected
        holders — in the exact
        order ``repair_all`` would have reached them, so the regeneration
        RNG draws, the resulting graph, and the report are all identical.
        This is the repair entry point the churn scenarios and the
        delta-emitting fastpath loop use: each drop/regenerate/restitch goes
        through a graph mutator, so an attached
        :class:`~repro.fastpath.delta.DeltaRecorder` captures the whole pass.
        """
        tel = telemetry_current()
        if tel is None:
            return self._repair_all_batched_impl()
        with tel.span("repair"):
            report = self._repair_all_batched_impl()
        tel.count("repair.passes")
        tel.count("repair.dead_links_found", report.dead_links_dropped)
        tel.count("repair.links_regenerated", report.links_regenerated)
        tel.count("repair.ring_repairs", report.ring_repairs)
        tel.count("repair.holders_touched", self._last_holders_touched)
        return report

    def _repair_all_batched_impl(self) -> MaintenanceReport:
        graph = self.graph
        affected_holders: set[int] = set()
        for node in graph.nodes():
            if node.alive:
                continue
            for holder in graph.incoming_sources(node.label, only_alive_links=False):
                if graph.is_alive(holder):
                    affected_holders.add(holder)
        self._last_holders_touched = len(affected_holders)
        report = MaintenanceReport()
        if affected_holders:
            for label in self.graph.labels(only_alive=True):
                if label in affected_holders:
                    report = report.merge(self.repair_node(label))
        report.ring_repairs += self._restitch_ring()
        self._last_report = report
        return report

    def handle_departure(self, label: int) -> MaintenanceReport:
        """Process an explicit (graceful or detected) departure of ``label``.

        The departed node is removed from the construction; every node that
        lost a link to it regenerates a replacement.  A label that is not
        (or no longer) a member — e.g. the second half of a double
        departure — is a no-op returning an all-zero report.
        """
        report = MaintenanceReport()
        if not self.graph.has_node(label):
            return report
        affected = self.construction.remove_point(label)
        report.ring_repairs += 1
        for holder in affected:
            if not self.graph.is_alive(holder):
                continue
            dropped = self._drop_links_to(holder, label)
            report.dead_links_dropped += dropped
            report.messages += dropped
            if self.regenerate:
                for _ in range(max(1, dropped)):
                    new_target = self.construction.regenerate_link(holder)
                    if new_target is not None:
                        report.links_regenerated += 1
                        report.messages += 1
        self._last_report = report
        return report

    @property
    def last_report(self) -> MaintenanceReport:
        """The report produced by the most recent repair call."""
        return self._last_report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _drop_links_to(self, holder: int, departed: int) -> int:
        """Remove ``holder``'s long links pointing at ``departed``; return the count."""
        dropped = 0
        while self.graph.remove_long_link(holder, departed):
            dropped += 1
        return dropped

    def _restitch_ring(self) -> int:
        """Re-wire immediate neighbours so that live nodes form a clean ring.

        Returns the number of pointer updates made.  Dead nodes are skipped
        over: each live node's ``left``/``right`` is set to the nearest live
        node in the corresponding direction.  Updates go through
        :meth:`OverlayGraph.set_immediate_neighbors`, so a delta recorder
        sees the whole restitch as a scatter of ring rewrites (applied
        vectorized on the snapshot side).
        """
        live = sorted(self.graph.labels(only_alive=True))
        updates = 0
        count = len(live)
        if count == 0:
            return 0
        for index, label in enumerate(live):
            node = self.graph.node(label)
            if count == 1:
                new_left, new_right = None, None
            else:
                new_left = live[(index - 1) % count]
                new_right = live[(index + 1) % count]
            if node.left != new_left or node.right != new_right:
                self.graph.set_immediate_neighbors(label, new_left, new_right)
                updates += 1
        return updates

"""The virtual overlay graph.

The overlay is a directed graph whose vertices are metric-space points
occupied by live nodes.  Every vertex keeps two kinds of outgoing edges:

* **short links** to its immediate neighbours on either side (the paper
  assumes ``±1`` is always in the offset set, and the experiments assume the
  ring of immediate neighbours never fails), and
* **long links** chosen from a link distribution (or by the deterministic
  base-``b`` scheme).

The graph also records per-node and per-link liveness so that failure models
can knock out nodes or links without rebuilding the structure, and per-link
metadata (creation order) used by the Section-5 "replace the oldest link"
ablation.

The class is a plain in-memory adjacency structure — it knows nothing about
routing, failures, or construction policy; those live in
:mod:`repro.core.routing`, :mod:`repro.core.failures`, and
:mod:`repro.core.construction` respectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.core.metric import LineMetric, MetricSpace

__all__ = ["LongLink", "OverlayNode", "OverlayGraph"]


@dataclass
class LongLink:
    """A single long-distance link.

    Attributes
    ----------
    target:
        Label of the link's sink vertex.
    created_at:
        Monotonically increasing creation stamp (used by the oldest-link
        replacement ablation and by maintenance bookkeeping).
    alive:
        Whether the link is usable.  Link-failure models flip this flag
        rather than removing the link, so a network can be "repaired" by
        resetting flags.
    """

    target: int
    created_at: int = 0
    alive: bool = True


@dataclass
class OverlayNode:
    """State kept for a single vertex of the overlay graph.

    Attributes
    ----------
    label:
        The metric-space point this node occupies.
    left, right:
        Labels of the immediate neighbours (predecessor and successor on the
        ring / line).  ``None`` when the node has no such neighbour (line
        endpoints, or a freshly created node not yet wired in).
    long_links:
        Outgoing long-distance links, in creation order.
    alive:
        Whether the node is up.  Failed nodes remain in the structure so that
        experiments can distinguish "failed" from "never existed".
    """

    label: int
    left: int | None = None
    right: int | None = None
    long_links: list[LongLink] = field(default_factory=list)
    alive: bool = True

    def long_link_targets(self, only_alive: bool = True) -> list[int]:
        """Return the targets of this node's long links.

        Parameters
        ----------
        only_alive:
            When ``True`` (default) only links whose ``alive`` flag is set are
            returned.
        """
        return [
            link.target
            for link in self.long_links
            if link.alive or not only_alive
        ]

    def neighbors(self, only_alive_links: bool = True) -> list[int]:
        """Return all outgoing neighbour labels (short links first)."""
        result: list[int] = []
        if self.left is not None:
            result.append(self.left)
        if self.right is not None and self.right != self.left:
            result.append(self.right)
        result.extend(self.long_link_targets(only_alive=only_alive_links))
        return result

    def out_degree(self, only_alive_links: bool = True) -> int:
        """Number of outgoing links (short plus long)."""
        return len(self.neighbors(only_alive_links=only_alive_links))


class OverlayGraph:
    """Directed overlay graph embedded in a metric space.

    Parameters
    ----------
    space:
        The metric space the graph is embedded in.  Routing uses its
        ``distance`` method; ring spaces additionally wire immediate
        neighbours around the wrap-around point.

    Notes
    -----
    Vertex labels are the metric-space point labels (integers).  The graph
    may be *sparse* in the space: only occupied points appear as vertices.
    """

    def __init__(self, space: MetricSpace) -> None:
        self.space = space
        self._nodes: dict[int, OverlayNode] = {}
        self._creation_counter = 0
        # Reverse adjacency: target label -> list of (source label, LongLink).
        # Maintained by the link-mutation methods so that routing can use
        # incoming links as symmetric neighbour knowledge.
        self._incoming: dict[int, list[tuple[int, LongLink]]] = {}
        # Optional mutation observer (a repro.fastpath.delta.DeltaRecorder):
        # every mutator notifies it, so incremental snapshot mirrors can
        # replay churn without recompiling.  None costs one attribute check.
        self._observer = None

    # ------------------------------------------------------------------ #
    # Mutation observation
    # ------------------------------------------------------------------ #

    @property
    def observer(self):
        """The attached mutation observer, or ``None``."""
        return self._observer

    def set_observer(self, observer) -> None:
        """Attach (or with ``None`` detach) the single mutation observer.

        Raises
        ------
        ValueError
            When an observer is already attached (mutations must not be
            double-recorded; detach the old one first).
        """
        if observer is not None and self._observer is not None:
            raise ValueError("graph already has a mutation observer attached")
        self._observer = observer

    # ------------------------------------------------------------------ #
    # Node management
    # ------------------------------------------------------------------ #

    def add_node(self, label: int) -> OverlayNode:
        """Add a vertex at ``label`` (idempotent) and return its node record."""
        if not self.space.contains(label):
            raise ValueError(f"label {label!r} is not a point of the metric space")
        if label not in self._nodes:
            self._nodes[label] = OverlayNode(label=label)
            if self._observer is not None:
                self._observer.on_add_node(label)
        return self._nodes[label]

    def remove_node(self, label: int) -> None:
        """Remove a vertex and all links *to* it from other vertices."""
        if label not in self._nodes:
            return
        if self._observer is not None:
            # Recorded before the mutation: the observer's replay uses its
            # own mirrored state, which at this point in the op sequence
            # still includes the departing vertex.
            self._observer.on_remove_node(label)
        departing = self._nodes.pop(label)
        # Drop the departing node's own outgoing links from the reverse index.
        for link in departing.long_links:
            entries = self._incoming.get(link.target)
            if entries is not None:
                self._incoming[link.target] = [
                    entry for entry in entries if entry[1] is not link
                ]
        # Drop every link that pointed at the departed node.
        sources_pointing_here = {
            source for source, _link in self._incoming.get(label, [])
        }
        self._incoming.pop(label, None)
        for node in self._nodes.values():
            if node.left == label:
                node.left = None
            if node.right == label:
                node.right = None
            if node.label in sources_pointing_here or any(
                link.target == label for link in node.long_links
            ):
                node.long_links = [
                    link for link in node.long_links if link.target != label
                ]

    def has_node(self, label: int) -> bool:
        """Return ``True`` when a vertex exists at ``label`` (alive or not)."""
        return label in self._nodes

    def node(self, label: int) -> OverlayNode:
        """Return the node record at ``label``.

        Raises
        ------
        KeyError
            If no vertex exists at ``label``.
        """
        return self._nodes[label]

    def nodes(self) -> Iterator[OverlayNode]:
        """Iterate over all node records (alive and failed)."""
        return iter(self._nodes.values())

    def labels(self, only_alive: bool = False) -> list[int]:
        """Return all vertex labels, optionally restricted to live nodes."""
        if only_alive:
            return [label for label, node in self._nodes.items() if node.alive]
        return list(self._nodes)

    def __len__(self) -> int:
        """Total number of vertices (alive and failed)."""
        return len(self._nodes)

    def __contains__(self, label: int) -> bool:
        return label in self._nodes

    # ------------------------------------------------------------------ #
    # Liveness
    # ------------------------------------------------------------------ #

    def is_alive(self, label: int) -> bool:
        """Return ``True`` when a vertex exists at ``label`` and is alive."""
        node = self._nodes.get(label)
        return node is not None and node.alive

    def fail_node(self, label: int) -> None:
        """Mark the vertex at ``label`` as failed (links to it remain in place)."""
        self._nodes[label].alive = False
        if self._observer is not None:
            self._observer.on_fail_node(label)

    def revive_node(self, label: int) -> None:
        """Mark the vertex at ``label`` as alive again."""
        self._nodes[label].alive = True
        if self._observer is not None:
            self._observer.on_revive_node(label)

    def alive_count(self) -> int:
        """Number of live vertices."""
        return sum(1 for node in self._nodes.values() if node.alive)

    # ------------------------------------------------------------------ #
    # Link management
    # ------------------------------------------------------------------ #

    def set_immediate_neighbors(self, label: int, left: int | None, right: int | None) -> None:
        """Set the short links of the vertex at ``label``."""
        node = self._nodes[label]
        node.left = left
        node.right = right
        if self._observer is not None:
            self._observer.on_set_immediate_neighbors(label, left, right)

    def add_long_link(self, source: int, target: int) -> LongLink:
        """Add a long link from ``source`` to ``target`` and return it.

        Self-links are rejected; duplicate links are allowed (the paper's
        sampling is with replacement), though builders typically avoid them.
        """
        if source == target:
            raise ValueError("cannot create a long link from a node to itself")
        node = self._nodes[source]
        link = LongLink(target=target, created_at=self._creation_counter)
        self._creation_counter += 1
        node.long_links.append(link)
        self._incoming.setdefault(target, []).append((source, link))
        if self._observer is not None:
            self._observer.on_add_long_link(source, target)
        return link

    def remove_long_link(self, source: int, target: int) -> bool:
        """Remove one long link ``source -> target``; return whether one existed."""
        node = self._nodes[source]
        for index, link in enumerate(node.long_links):
            if link.target == target:
                del node.long_links[index]
                entries = self._incoming.get(target)
                if entries is not None:
                    self._incoming[target] = [
                        entry for entry in entries if entry[1] is not link
                    ]
                if self._observer is not None:
                    self._observer.on_remove_long_link(source, target, link.alive)
                return True
        return False

    def fail_long_link(self, source: int, target: int) -> bool:
        """Disable one live long link ``source -> target``; return whether one was.

        The link keeps its slot (so :meth:`revive_long_link` can restore it);
        only its ``alive`` flag flips.  When several parallel links exist, the
        first live one is flipped — observationally equivalent to flipping any
        other, since parallel links are indistinguishable in routing.
        """
        node = self._nodes[source]
        for link in node.long_links:
            if link.target == target and link.alive:
                link.alive = False
                if self._observer is not None:
                    self._observer.on_fail_long_link(source, target)
                return True
        return False

    def revive_long_link(self, source: int, target: int) -> bool:
        """Re-enable one dead long link ``source -> target``; return whether one was."""
        node = self._nodes.get(source)
        if node is None:
            return False
        for link in node.long_links:
            if link.target == target and not link.alive:
                link.alive = True
                if self._observer is not None:
                    self._observer.on_revive_long_link(source, target)
                return True
        return False

    def redirect_long_link(self, source: int, old_target: int, new_target: int) -> bool:
        """Redirect one existing long link to a new target (Section 5 heuristic).

        The link keeps its slot but receives a fresh creation stamp (it is, in
        effect, a new link).  Returns ``False`` when no ``source -> old_target``
        link exists.
        """
        if source == new_target:
            return False
        node = self._nodes[source]
        for link in node.long_links:
            if link.target == old_target and link.alive:
                entries = self._incoming.get(old_target)
                if entries is not None:
                    self._incoming[old_target] = [
                        entry for entry in entries if entry[1] is not link
                    ]
                link.target = new_target
                link.created_at = self._creation_counter
                self._creation_counter += 1
                self._incoming.setdefault(new_target, []).append((source, link))
                if self._observer is not None:
                    self._observer.on_redirect_long_link(source, old_target, new_target)
                return True
        return False

    def incoming_sources(self, label: int, only_alive_links: bool = True) -> list[int]:
        """Return the labels of nodes with a long link pointing *at* ``label``.

        The reverse index tracks link objects, so links disabled by a
        link-failure model are excluded when ``only_alive_links`` is set.
        """
        entries = self._incoming.get(label, [])
        return [
            source
            for source, link in entries
            if (link.alive or not only_alive_links) and source in self._nodes
        ]

    def incoming_entries(self, label: int) -> list[tuple[int, bool]]:
        """Return ``(source, link_alive)`` pairs for long links pointing at ``label``.

        Like :meth:`incoming_sources` but keeps dead links (with their flag),
        preserving the reverse-index order — the order delta mirrors must
        reproduce to stay entry-for-entry identical to a fresh compile.
        """
        entries = self._incoming.get(label, [])
        return [
            (source, link.alive)
            for source, link in entries
            if source in self._nodes
        ]

    def neighbors_of(
        self,
        label: int,
        only_alive_nodes: bool = True,
        only_alive_links: bool = True,
        include_incoming: bool = False,
    ) -> list[int]:
        """Return the neighbours of ``label``.

        Parameters
        ----------
        only_alive_nodes:
            Filter out neighbours whose node record is failed or missing.
        only_alive_links:
            Filter out long links whose ``alive`` flag is cleared.
        include_incoming:
            Also include nodes whose long links point at ``label``
            (symmetric neighbour knowledge, as in the paper's experiments
            where a link handshake makes both endpoints aware of each other).
        """
        node = self._nodes[label]
        candidates = node.neighbors(only_alive_links=only_alive_links)
        if include_incoming:
            seen = set(candidates)
            for source in self.incoming_sources(label, only_alive_links=only_alive_links):
                if source not in seen and source != label:
                    seen.add(source)
                    candidates.append(source)
        if not only_alive_nodes:
            return candidates
        return [c for c in candidates if self.is_alive(c)]

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def total_long_links(self, only_alive: bool = False) -> int:
        """Total number of long links across all vertices."""
        total = 0
        for node in self._nodes.values():
            if only_alive:
                total += sum(1 for link in node.long_links if link.alive)
            else:
                total += len(node.long_links)
        return total

    def average_out_degree(self) -> float:
        """Average out-degree over all vertices (0.0 for an empty graph)."""
        if not self._nodes:
            return 0.0
        return sum(node.out_degree() for node in self._nodes.values()) / len(self._nodes)

    def long_link_lengths(self, only_alive: bool = True) -> list[int]:
        """Return the metric length of every long link (for Figure 5)."""
        lengths: list[int] = []
        for node in self._nodes.values():
            for link in node.long_links:
                if only_alive and not link.alive:
                    continue
                lengths.append(self.space.distance(node.label, link.target))
        return lengths

    def in_degree_counts(self) -> dict[int, int]:
        """Return, for each vertex, the number of long links pointing at it."""
        counts: dict[int, int] = {label: 0 for label in self._nodes}
        for node in self._nodes.values():
            for link in node.long_links:
                if link.target in counts:
                    counts[link.target] += 1
        return counts

    # ------------------------------------------------------------------ #
    # Ring helpers
    # ------------------------------------------------------------------ #

    def wire_ring(self, labels: Iterable[int] | None = None) -> None:
        """Wire short links so that the given labels form a sorted ring.

        When ``labels`` is omitted, all current vertices are used.  On a
        :class:`~repro.core.metric.LineMetric` the first and last labels are
        *not* joined (the line has endpoints); on every other space the ring
        wraps around.
        """
        ordered = sorted(labels if labels is not None else self._nodes)
        if not ordered:
            return
        # The line is the only space without wrap-around.
        wrap = not isinstance(self.space, LineMetric)
        count = len(ordered)
        for index, label in enumerate(ordered):
            if count == 1:
                self.set_immediate_neighbors(label, None, None)
                continue
            left_index = index - 1
            right_index = index + 1
            if wrap:
                left = ordered[left_index % count]
                right = ordered[right_index % count]
            else:
                left = ordered[left_index] if left_index >= 0 else None
                right = ordered[right_index] if right_index < count else None
            # Routed through the mutator so an attached observer (delta
            # recorder) sees the rewiring.
            self.set_immediate_neighbors(label, left, right)

    def successor_on_ring(self, label: int) -> int | None:
        """Return the next live vertex clockwise from ``label`` (itself excluded)."""
        live = sorted(self.labels(only_alive=True))
        if not live:
            return None
        for candidate in live:
            if candidate > label:
                return candidate
        return live[0] if live[0] != label else None

    def closest_live_vertex(self, point: int) -> int | None:
        """Return the live vertex closest to an arbitrary metric-space point.

        Used when a desired link sink corresponds to an absent resource: the
        paper's rule is to connect to the closest present neighbour instead.
        Returns ``None`` when the graph has no live vertices.
        """
        live = self.labels(only_alive=True)
        if not live:
            return None
        return self.space.closest(point, live)

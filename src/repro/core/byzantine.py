"""Routing in the presence of Byzantine nodes (paper Section 7, future work).

The paper closes by suggesting that greedy routing schemes be studied for
"robustness against Byzantine failures".  This module provides a concrete
instantiation of that extension:

* :class:`ByzantineAwareRouter` simulates greedy routing when a subset of the
  nodes (marked by a :class:`~repro.core.failures.ByzantineModel`) misbehaves:
  dropping messages, misrouting them towards the *farthest* neighbour, or
  forwarding them to a random neighbour.
* :class:`RedundantRouter` hardens routing by sending the message along
  ``redundancy`` independent greedy attempts (each restarted from a random
  live vantage point, in the spirit of the paper's random re-route strategy)
  and succeeding if any copy arrives.  This is the classic defence in
  S/Kademlia-style systems: disjoint-ish paths make a bounded adversary miss.

Both routers build on :class:`~repro.core.routing.GreedyRouter` for the honest
part of each hop, so all routing modes and recovery strategies compose with
the Byzantine behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.failures import ByzantineBehavior, ByzantineModel
from repro.core.graph import OverlayGraph
from repro.core.routing import (
    FailureReason,
    GreedyRouter,
    RecoveryStrategy,
    RouteResult,
    RoutingMode,
)
from repro.util.rng import spawn_rng

__all__ = ["ByzantineAwareRouter", "RedundantRouter"]


@dataclass
class ByzantineAwareRouter:
    """Greedy router that simulates Byzantine misbehaviour at compromised hops.

    Honest nodes follow the ordinary greedy rule (delegating hop selection to
    an internal :class:`~repro.core.routing.GreedyRouter`); compromised nodes
    act according to the :class:`~repro.core.failures.ByzantineModel`'s
    behaviour.  The source is assumed honest (a compromised source can trivially
    drop its own message); the target only needs to be reached.

    Parameters
    ----------
    graph:
        Overlay graph to route over.
    adversary:
        The Byzantine model marking compromised nodes.
    mode:
        Greedy routing mode for honest hops.
    hop_limit:
        Safety bound on the number of hops.
    seed:
        Seed for the adversary's random forwarding decisions.
    """

    graph: OverlayGraph
    adversary: ByzantineModel
    mode: RoutingMode = RoutingMode.TWO_SIDED
    hop_limit: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        self._honest_router = GreedyRouter(
            graph=self.graph,
            mode=self.mode,
            recovery=RecoveryStrategy.TERMINATE,
            strict_best_neighbor=False,
            hop_limit=self.hop_limit,
            seed=self.seed,
        )
        self.hop_limit = self._honest_router.hop_limit
        self._rng = spawn_rng(self.seed, "byzantine-router")

    def route(self, source: int, target: int) -> RouteResult:
        """Route from ``source`` to ``target`` through a partially Byzantine network."""
        if not self.graph.is_alive(source):
            return RouteResult(
                success=False, hops=0, path=[source],
                failure_reason=FailureReason.DEAD_SOURCE,
            )
        if not self.graph.is_alive(target):
            return RouteResult(
                success=False, hops=0, path=[source],
                failure_reason=FailureReason.DEAD_TARGET,
            )

        path = [source]
        hops = 0
        current = source
        while hops < self.hop_limit:
            if current == target:
                return RouteResult(success=True, hops=hops, path=path)

            if self.adversary.is_compromised(current) and current != source:
                next_hop = self._byzantine_hop(current, target)
                if next_hop is None:
                    return RouteResult(
                        success=False, hops=hops, path=path,
                        failure_reason=FailureReason.STUCK,
                    )
            else:
                next_hop = self._honest_router._next_hop(current, target)
                if next_hop is None:
                    return RouteResult(
                        success=False, hops=hops, path=path,
                        failure_reason=FailureReason.STUCK,
                    )

            current = next_hop
            path.append(current)
            hops += 1

        return RouteResult(
            success=False, hops=hops, path=path,
            failure_reason=FailureReason.HOP_LIMIT,
        )

    def _byzantine_hop(self, current: int, target: int) -> int | None:
        """Return the next hop a compromised node chooses (or ``None`` to drop)."""
        behavior = self.adversary.behavior
        if behavior == ByzantineBehavior.DROP:
            return None
        neighbors = [
            n for n in self.graph.neighbors_of(current, only_alive_nodes=True)
            if n != current
        ]
        if not neighbors:
            return None
        if behavior == ByzantineBehavior.MISROUTE:
            space = self.graph.space
            return max(neighbors, key=lambda label: space.distance(label, target))
        # ByzantineBehavior.RANDOM
        index = int(self._rng.integers(0, len(neighbors)))
        return neighbors[index]


@dataclass
class RedundantRouter:
    """Defends against Byzantine hops by launching several independent attempts.

    The first attempt is the plain greedy route from the source; each further
    attempt detours through a uniformly random live node before heading to the
    target, which makes the attempts traverse largely different regions of the
    overlay.  The search succeeds as soon as any attempt succeeds; the
    reported hop count is the total traffic across all attempts made (a
    redundancy-versus-latency trade-off the experiments quantify).

    Parameters
    ----------
    graph:
        Overlay graph to route over.
    adversary:
        The Byzantine model marking compromised nodes.
    redundancy:
        Maximum number of attempts (>= 1).
    seed:
        Seed for detour selection and per-attempt adversarial randomness.
    """

    graph: OverlayGraph
    adversary: ByzantineModel
    redundancy: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {self.redundancy}")
        self._detour_rng = spawn_rng(self.seed, "redundant-detours")

    def route(self, source: int, target: int) -> RouteResult:
        """Route with up to ``redundancy`` independent attempts."""
        total_hops = 0
        combined_path: list[int] = []
        for attempt in range(self.redundancy):
            router = ByzantineAwareRouter(
                graph=self.graph,
                adversary=self.adversary,
                seed=self.seed + 1000 * (attempt + 1),
            )
            if attempt == 0:
                result = router.route(source, target)
                total_hops += result.hops
                combined_path.extend(result.path)
                if result.success:
                    return RouteResult(
                        success=True, hops=total_hops, path=combined_path
                    )
                continue

            detour = self._pick_detour(exclude={source, target})
            if detour is None:
                continue
            leg_one = router.route(source, detour)
            total_hops += leg_one.hops
            combined_path.extend(leg_one.path)
            if not leg_one.success:
                continue
            leg_two = router.route(detour, target)
            total_hops += leg_two.hops
            combined_path.extend(leg_two.path[1:])
            if leg_two.success:
                return RouteResult(success=True, hops=total_hops, path=combined_path)

        return RouteResult(
            success=False, hops=total_hops, path=combined_path,
            failure_reason=FailureReason.NO_ROUTE,
        )

    def _pick_detour(self, exclude: set[int]) -> int | None:
        """Pick a random live, non-compromised-looking detour node."""
        candidates = [
            label
            for label in self.graph.labels(only_alive=True)
            if label not in exclude
        ]
        if not candidates:
            return None
        index = int(self._detour_rng.integers(0, len(candidates)))
        return candidates[index]

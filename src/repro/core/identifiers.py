"""Keys, resources, and their embedding into the metric space.

Section 2 of the paper assumes a hash function ``h : K -> V`` mapping resource
keys to points of the metric space, and assumes the hash populates the space
*evenly*.  This module provides:

* :class:`Resource` — a (key, owner, payload) record.
* :class:`KeyHasher` — the hash family used to embed keys.  Two concrete
  hashers are provided: a SHA-256 based hasher (the realistic choice) and a
  Fibonacci-multiplicative hasher (cheap and well-spread, handy for very large
  simulated spaces).
* :class:`ResourceEmbedding` — bookkeeping that maps keys to points and
  remembers, per node, the set of points the node occupies (the paper's
  ``V_n``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.metric import MetricSpace
from repro.util.validation import ensure_positive, ensure_type

__all__ = [
    "Resource",
    "KeyHasher",
    "Sha256Hasher",
    "FibonacciHasher",
    "ResourceEmbedding",
]


@dataclass(frozen=True)
class Resource:
    """A resource stored in the peer-to-peer system.

    Attributes
    ----------
    key:
        The resource's unique key (any string).
    owner:
        Identifier of the network node that provides the resource
        (the paper's ``owner(r)``).
    payload:
        Arbitrary application data associated with the resource.
    """

    key: str
    owner: Any = None
    payload: Any = None


class KeyHasher:
    """Base class for hash functions embedding keys into ``{0, .., space_size - 1}``.

    Subclasses implement :meth:`hash_key`; the base class provides
    :meth:`hash_resource` and input validation.
    """

    def __init__(self, space_size: int) -> None:
        ensure_positive(space_size, "space_size")
        self.space_size = int(space_size)

    def hash_key(self, key: str) -> int:
        """Map ``key`` to a point label in ``[0, space_size)``."""
        raise NotImplementedError

    def hash_resource(self, resource: Resource) -> int:
        """Map a :class:`Resource` to a point label via its key."""
        ensure_type(resource, "resource", Resource)
        return self.hash_key(resource.key)


class Sha256Hasher(KeyHasher):
    """SHA-256 based key hashing, reduced modulo the space size.

    This mirrors what deployed systems (Chord's SHA-1, for example) do and is
    the default hasher for the DHT layer.  The modulo reduction introduces a
    negligible bias for space sizes far below 2**256.
    """

    def hash_key(self, key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:16], "big") % self.space_size


class FibonacciHasher(KeyHasher):
    """Fibonacci (multiplicative) hashing of the key's built-in hash.

    Cheaper than SHA-256 and adequate for simulation workloads where
    cryptographic strength is irrelevant.  The multiplier is the 64-bit
    knuth constant ``2**64 / phi``.
    """

    _MULTIPLIER = 0x9E3779B97F4A7C15

    def hash_key(self, key: str) -> int:
        # Use a stable FNV-1a style fold of the key bytes rather than
        # Python's randomised ``hash`` so results are reproducible across runs.
        value = 0xCBF29CE484222325
        for byte in key.encode("utf-8"):
            value ^= byte
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        value = (value * self._MULTIPLIER) & 0xFFFFFFFFFFFFFFFF
        return value % self.space_size


@dataclass
class ResourceEmbedding:
    """Tracks the mapping of resources onto metric-space points.

    The embedding records, for every inserted resource, the point it hashes to
    and, for every owner, the set of points it occupies (the paper's ``V_n``).
    It does not itself store payloads; that is the job of the DHT storage
    layer.

    Parameters
    ----------
    space:
        The metric space into which resources are embedded.
    hasher:
        The key hasher.  Its ``space_size`` must equal ``space.size()``.
    """

    space: MetricSpace
    hasher: KeyHasher

    _point_of_key: dict[str, int] = field(default_factory=dict, repr=False)
    _keys_at_point: dict[int, set[str]] = field(default_factory=dict, repr=False)
    _points_of_owner: dict[Any, set[int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.hasher.space_size != self.space.size():
            raise ValueError(
                "hasher space_size "
                f"({self.hasher.space_size}) must equal metric-space size "
                f"({self.space.size()})"
            )

    # ------------------------------------------------------------------ #
    # Insertion / removal
    # ------------------------------------------------------------------ #

    def embed(self, resource: Resource) -> int:
        """Embed ``resource`` and return the point it maps to."""
        point = self.hasher.hash_resource(resource)
        self._point_of_key[resource.key] = point
        self._keys_at_point.setdefault(point, set()).add(resource.key)
        if resource.owner is not None:
            self._points_of_owner.setdefault(resource.owner, set()).add(point)
        return point

    def remove(self, resource: Resource) -> None:
        """Remove a previously embedded resource.

        Removing a resource that was never embedded is a no-op.
        """
        point = self._point_of_key.pop(resource.key, None)
        if point is None:
            return
        keys = self._keys_at_point.get(point)
        if keys is not None:
            keys.discard(resource.key)
            if not keys:
                del self._keys_at_point[point]
        if resource.owner is not None:
            owned = self._points_of_owner.get(resource.owner)
            if owned is not None and not any(
                self._point_of_key.get(key) == point
                for key in self.keys_of_owner(resource.owner)
            ):
                owned.discard(point)
                if not owned:
                    del self._points_of_owner[resource.owner]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def point_of(self, key: str) -> int:
        """Return the point a key maps to (embedding it virtually if unknown)."""
        if key in self._point_of_key:
            return self._point_of_key[key]
        return self.hasher.hash_key(key)

    def keys_at(self, point: int) -> frozenset[str]:
        """Return the set of embedded keys mapped to ``point``."""
        return frozenset(self._keys_at_point.get(point, frozenset()))

    def points_of_owner(self, owner: Any) -> frozenset[int]:
        """Return the paper's ``V_n``: the points occupied by ``owner``'s resources."""
        return frozenset(self._points_of_owner.get(owner, frozenset()))

    def keys_of_owner(self, owner: Any) -> Iterable[str]:
        """Iterate over the keys whose resources belong to ``owner``."""
        owned_points = self._points_of_owner.get(owner, set())
        for key, point in self._point_of_key.items():
            if point in owned_points:
                yield key

    def occupied_points(self) -> frozenset[int]:
        """Return all points that currently host at least one resource."""
        return frozenset(self._keys_at_point)

    def __len__(self) -> int:
        """Number of embedded resources."""
        return len(self._point_of_key)

"""Greedy routing over the overlay graph, with failure-recovery strategies.

Routing (Sections 2, 4 and 6 of the paper) is purely local: the node holding
the message forwards it to the neighbour whose metric-space point is closest
to the target.  Two flavours are analysed:

* **two-sided** greedy routing — move to the neighbour minimising the distance
  to the target, regardless of which side of the target it lands on;
* **one-sided** greedy routing — never traverse a link that would overshoot
  the target (the model matching Chord-style unidirectional links and the
  stronger lower bound of Theorem 10).

When failures leave a node without a usable next hop, Section 6 evaluates
three recovery strategies, all implemented here:

1. **terminate** — give up; the search fails.
2. **random re-route** — deliver the message to a uniformly random live node
   and retry towards the original target from there (a Valiant-style detour).
3. **backtracking** — remember the last ``backtrack_depth`` (default 5)
   visited nodes; when stuck, return to the most recent one and take its next
   best untried neighbour.

A node is *stuck* when it "cannot find a live neighbour that is closer to the
target node than itself" (Section 6): by default a node skips dead neighbours
and forwards to its closest **live** closer neighbour
(``strict_best_neighbor=False``), which reproduces the paper's observation
that the terminate strategy loses slightly fewer than ``p`` of its searches
when a fraction ``p`` of the nodes has failed.  Setting
``strict_best_neighbor=True`` models a harsher knowledge regime in which a
node commits to its closest neighbour before discovering whether it is alive
and gives up on that hop if it is dead ("once a node chooses its best
neighbour, it does not send the message to any other link"); the ablation
experiments quantify the difference.

Relationship to the fastpath engine (equivalence contract)
----------------------------------------------------------
This module is the **reference implementation** covering every model the
paper analyses: both routing modes (Sections 2 and 4), all three Section-6
recovery strategies, both neighbour-knowledge regimes, and arbitrary
node/link failures.  :mod:`repro.fastpath` provides a batched array engine
for the statistically heavy experiments; within its envelope — two-sided or
one-sided routing, node failures, and **all three** recovery strategies — it
is hop-for-hop identical to :class:`GreedyRouter` (same candidate order,
same tie-breaks, same hop limit, same re-route draws and backtrack victim
selection), which ``tests/property/test_property_fastpath.py`` asserts
path-for-path.  Re-route parity additionally assumes the scalar default
detour budget (``max_reroutes=1``) — one shared RNG stream, drawn in query
order — and the batch router rejects larger budgets.  The experiment harness
(:func:`repro.experiments.runner.route_pairs_with_engine`) falls back here
automatically whenever a configuration is outside the fastpath envelope
(e.g. a graph in a metric space the snapshot compiler cannot handle).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import OverlayGraph
from repro.util.rng import spawn_rng

__all__ = [
    "RoutingMode",
    "RecoveryStrategy",
    "FailureReason",
    "RouteResult",
    "GreedyRouter",
]


class RoutingMode(enum.Enum):
    """Which greedy rule the router uses to pick the next hop."""

    TWO_SIDED = "two-sided"
    ONE_SIDED = "one-sided"


class RecoveryStrategy(enum.Enum):
    """What to do when no usable next hop exists (Section 6)."""

    TERMINATE = "terminate"
    RANDOM_REROUTE = "random-reroute"
    BACKTRACK = "backtrack"


class FailureReason(enum.Enum):
    """Why a routing attempt failed."""

    NONE = "none"
    STUCK = "stuck"
    HOP_LIMIT = "hop-limit"
    DEAD_SOURCE = "dead-source"
    DEAD_TARGET = "dead-target"
    NO_ROUTE = "no-route"


@dataclass
class RouteResult:
    """Outcome of a single routing attempt.

    Attributes
    ----------
    success:
        ``True`` when the message reached the target.
    hops:
        Number of edges traversed (including detours and backtracking moves).
    path:
        Sequence of node labels visited, starting with the source.  Detour and
        backtrack moves appear in order.
    failure_reason:
        Why the attempt failed (``FailureReason.NONE`` on success).
    reroutes:
        Number of random re-route detours taken.
    backtracks:
        Number of backtracking moves taken.
    """

    success: bool
    hops: int
    path: list[int] = field(default_factory=list)
    failure_reason: FailureReason = FailureReason.NONE
    reroutes: int = 0
    backtracks: int = 0

    @property
    def source(self) -> int | None:
        """The label the route started from (``None`` for an empty path)."""
        return self.path[0] if self.path else None

    @property
    def destination(self) -> int | None:
        """The label the route ended at (``None`` for an empty path)."""
        return self.path[-1] if self.path else None


@dataclass
class GreedyRouter:
    """Greedy router over an :class:`~repro.core.graph.OverlayGraph`.

    Parameters
    ----------
    graph:
        The overlay graph to route over.  Liveness flags on nodes and links
        are respected.
    mode:
        Two-sided (default) or one-sided greedy forwarding.
    recovery:
        Recovery strategy when the greedy step has no usable next hop.
    backtrack_depth:
        Number of recently visited nodes remembered for backtracking
        (the paper uses 5).
    max_reroutes:
        Maximum number of random re-route detours per search.
    strict_best_neighbor:
        When ``False`` (default, the paper's experimental behaviour) a node
        skips dead neighbours and forwards to its closest *live* closer
        neighbour; when ``True`` it commits to its closest neighbour even if
        that neighbour turns out to be dead.
    symmetric_neighbors:
        When ``True`` (default) a node may forward along links that point *at*
        it as well as its own outgoing links — link creation is a handshake,
        so both endpoints know each other.  Set to ``False`` to route over the
        strictly directed graph (the model used by the one-sided lower-bound
        analysis).
    hop_limit:
        Safety limit on the total number of hops; ``None`` derives a generous
        default from the graph size.
    seed:
        Seed for the random re-route strategy.
    """

    graph: OverlayGraph
    mode: RoutingMode = RoutingMode.TWO_SIDED
    recovery: RecoveryStrategy = RecoveryStrategy.TERMINATE
    backtrack_depth: int = 5
    max_reroutes: int = 1
    strict_best_neighbor: bool = False
    symmetric_neighbors: bool = True
    hop_limit: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.backtrack_depth < 1:
            raise ValueError(f"backtrack_depth must be >= 1, got {self.backtrack_depth}")
        if self.max_reroutes < 0:
            raise ValueError(f"max_reroutes must be >= 0, got {self.max_reroutes}")
        if self.hop_limit is None:
            size = max(4, self.graph.space.size())
            self.hop_limit = int(50 * np.ceil(np.log2(size)) ** 2 + 100)
        self._reroute_rng = spawn_rng(self.seed, "random-reroute")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def route(self, source: int, target: int) -> RouteResult:
        """Route a message from the node at ``source`` to the point ``target``.

        The attempt succeeds when the message arrives at the live node whose
        label equals ``target``.  The source must be a live node of the graph;
        the target must be a live node as well (the paper's experiments only
        route between live endpoints).
        """
        if not self.graph.is_alive(source):
            return RouteResult(
                success=False, hops=0, path=[source],
                failure_reason=FailureReason.DEAD_SOURCE,
            )
        if not self.graph.is_alive(target):
            return RouteResult(
                success=False, hops=0, path=[source],
                failure_reason=FailureReason.DEAD_TARGET,
            )
        if source == target:
            return RouteResult(success=True, hops=0, path=[source])

        if self.recovery is RecoveryStrategy.BACKTRACK:
            return self._route_with_backtracking(source, target)
        return self._route_forward_only(source, target)

    def route_many(
        self, pairs: list[tuple[int, int]]
    ) -> list[RouteResult]:
        """Route a batch of (source, target) pairs and return all results."""
        return [self.route(source, target) for source, target in pairs]

    # ------------------------------------------------------------------ #
    # Greedy next-hop selection
    # ------------------------------------------------------------------ #

    def _candidate_neighbors(self, current: int, target: int) -> list[int]:
        """Return the neighbours of ``current`` that make strict progress.

        Dead *links* are never candidates (a node knows its own link state);
        dead *nodes* are included or excluded depending on
        ``strict_best_neighbor`` — under the strict model the node does not
        know a neighbour is dead until it has committed to it.
        """
        space = self.graph.space
        current_distance = space.distance(current, target)
        neighbors = self.graph.neighbors_of(
            current,
            only_alive_nodes=False,
            only_alive_links=True,
            include_incoming=self.symmetric_neighbors,
        )
        candidates: list[int] = []
        for neighbor in neighbors:
            if self.mode is RoutingMode.ONE_SIDED and self._overshoots(
                current, neighbor, target
            ):
                continue
            if space.distance(neighbor, target) < current_distance:
                candidates.append(neighbor)
        candidates.sort(key=lambda label: space.distance(label, target))
        return candidates

    def _overshoots(self, current: int, neighbor: int, target: int) -> bool:
        """Return ``True`` when moving to ``neighbor`` would jump past ``target``.

        One-sided routing never traverses such a link.  The test uses the
        signed displacement of the underlying one-dimensional space; for
        spaces without a displacement notion the check degrades to ``False``
        (one-sided routing is then equivalent to two-sided).
        """
        try:
            before = self.graph.space.displacement(current, target)
            after = self.graph.space.displacement(neighbor, target)
        except NotImplementedError:
            return False
        if before == 0:
            return after != 0
        # Overshooting means the displacement changes sign.
        return (before > 0) != (after > 0) and after != 0

    def _next_hop(self, current: int, target: int) -> int | None:
        """Pick the greedy next hop from ``current`` towards ``target``.

        Returns ``None`` when the node is stuck: either it has no neighbour
        closer to the target, or (in the strict model) its closest neighbour
        is dead.
        """
        candidates = self._candidate_neighbors(current, target)
        if not candidates:
            return None
        if self.strict_best_neighbor:
            best = candidates[0]
            return best if self.graph.is_alive(best) else None
        for candidate in candidates:
            if self.graph.is_alive(candidate):
                return candidate
        return None

    # ------------------------------------------------------------------ #
    # Forward-only routing (terminate / random re-route)
    # ------------------------------------------------------------------ #

    def _route_forward_only(self, source: int, target: int) -> RouteResult:
        """Greedy routing with no backtracking; optionally detour when stuck."""
        path = [source]
        hops = 0
        reroutes = 0
        current = source
        detour_target: int | None = None

        while hops < self.hop_limit:
            goal = detour_target if detour_target is not None else target
            if current == goal:
                if detour_target is not None:
                    # Arrived at the detour node; resume routing to the target.
                    detour_target = None
                    continue
                return RouteResult(
                    success=True, hops=hops, path=path, reroutes=reroutes
                )

            next_hop = self._next_hop(current, goal)
            if next_hop is None:
                if (
                    self.recovery is RecoveryStrategy.RANDOM_REROUTE
                    and reroutes < self.max_reroutes
                ):
                    detour = self._pick_random_live_node(exclude={current})
                    if detour is None:
                        return RouteResult(
                            success=False, hops=hops, path=path,
                            failure_reason=FailureReason.STUCK, reroutes=reroutes,
                        )
                    reroutes += 1
                    detour_target = detour
                    continue
                return RouteResult(
                    success=False, hops=hops, path=path,
                    failure_reason=FailureReason.STUCK, reroutes=reroutes,
                )

            current = next_hop
            path.append(current)
            hops += 1
            if current == target:
                return RouteResult(
                    success=True, hops=hops, path=path, reroutes=reroutes
                )

        return RouteResult(
            success=False, hops=hops, path=path,
            failure_reason=FailureReason.HOP_LIMIT, reroutes=reroutes,
        )

    def _pick_random_live_node(self, exclude: set[int]) -> int | None:
        """Pick a uniformly random live node not in ``exclude``."""
        live = [label for label in self.graph.labels(only_alive=True) if label not in exclude]
        if not live:
            return None
        index = int(self._reroute_rng.integers(0, len(live)))
        return live[index]

    # ------------------------------------------------------------------ #
    # Backtracking routing
    # ------------------------------------------------------------------ #

    def _route_with_backtracking(self, source: int, target: int) -> RouteResult:
        """Greedy routing that backtracks through recently visited nodes.

        The router keeps a bounded history of the last ``backtrack_depth``
        visited nodes together with the next-hop candidates each has not yet
        tried.  When the search gets stuck it pops back to the most recent
        entry with an untried candidate and continues from there.  Every
        backtrack move costs one hop (the message physically travels back).
        """
        path = [source]
        hops = 0
        backtracks = 0

        # Each history entry is (label, remaining untried candidates).
        history: list[tuple[int, list[int]]] = []
        tried_from: dict[int, set[int]] = {}

        current = source
        while hops < self.hop_limit:
            if current == target:
                return RouteResult(
                    success=True, hops=hops, path=path, backtracks=backtracks
                )

            candidates = self._candidate_neighbors(current, target)
            already_tried = tried_from.setdefault(current, set())
            untried = [c for c in candidates if c not in already_tried]

            next_hop = self._select_backtrack_hop(untried, already_tried)

            if next_hop is None:
                # Stuck at ``current``: backtrack if history allows.
                previous = self._pop_backtrack_entry(history, tried_from)
                if previous is None:
                    return RouteResult(
                        success=False, hops=hops, path=path,
                        failure_reason=FailureReason.STUCK, backtracks=backtracks,
                    )
                current = previous
                path.append(current)
                hops += 1
                backtracks += 1
                continue

            history.append((current, [c for c in untried if c != next_hop]))
            if len(history) > self.backtrack_depth:
                dropped_label, _ = history.pop(0)
                # Forget the tried-set of nodes that fall out of the window so
                # the memory footprint stays bounded, as in the paper's model.
                if dropped_label not in (entry[0] for entry in history):
                    tried_from.pop(dropped_label, None)

            current = next_hop
            path.append(current)
            hops += 1

        return RouteResult(
            success=False, hops=hops, path=path,
            failure_reason=FailureReason.HOP_LIMIT, backtracks=backtracks,
        )

    def _select_backtrack_hop(
        self, untried: list[int], already_tried: set[int]
    ) -> int | None:
        """Choose the next hop among untried candidates, marking it as tried.

        Under the strict model the node commits to the single best untried
        candidate: if it is dead, the candidate is consumed and the node is
        considered stuck for this visit.  Under the lenient model dead
        candidates are skipped until a live one is found.
        """
        if not untried:
            return None
        if self.strict_best_neighbor:
            best = untried[0]
            already_tried.add(best)
            return best if self.graph.is_alive(best) else None
        for candidate in untried:
            already_tried.add(candidate)
            if self.graph.is_alive(candidate):
                return candidate
        return None

    @staticmethod
    def _pop_backtrack_entry(
        history: list[tuple[int, list[int]]],
        tried_from: dict[int, set[int]],
    ) -> int | None:
        """Pop history entries until one with an untried candidate is found.

        Returns the label to backtrack to, or ``None`` when the history is
        exhausted.  Entries are re-usable: the returned label stays available
        for future visits through the normal flow.
        """
        while history:
            label, _remaining = history.pop()
            return label
        return None

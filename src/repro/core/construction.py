"""Dynamic construction of the overlay graph (Section 5 of the paper).

The static builders in :mod:`repro.core.builder` wire the whole network at
once, which requires global knowledge.  Section 5 of the paper gives a fully
decentralised *heuristic* that maintains the inverse power-law link invariant
as nodes arrive one at a time:

1. A newly arrived point ``v`` samples the sinks of its ``l`` outgoing links
   from the inverse power-law distribution (exponent 1) over the whole metric
   space and routes a search towards each sink; if the sink is not occupied,
   ``v`` links to the closest occupied point instead (each existing point owns
   a *basin of attraction* proportional to its gap).
2. ``v`` then estimates the number of *incoming* links it ought to have by
   drawing from a Poisson distribution with rate ``l``, and picks that many
   existing points, again according to the inverse power law centred at ``v``.
3. Each chosen point ``u`` (with existing long links at distances
   ``d_1 .. d_k`` and the newcomer at distance ``d_{k+1}``) decides to
   redirect one of its links to ``v`` with probability
   ``p_{k+1} / sum_{j=1}^{k+1} p_j`` where ``p_i = 1 / d_i``; if it does, the
   victim link ``i`` is chosen with probability ``p_i / sum_{j=1}^{k} p_j``.
   The ablation alternative studied in the paper replaces the *oldest* link
   instead.

The same machinery is reused for link regeneration when a node departs (see
:mod:`repro.core.maintenance`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import OverlayGraph
from repro.core.metric import MetricSpace, RingMetric
from repro.util.rng import RandomSource
from repro.util.validation import ensure_positive

__all__ = [
    "LinkReplacementPolicy",
    "InverseDistanceReplacement",
    "OldestLinkReplacement",
    "NeverReplace",
    "HeuristicConstruction",
    "build_heuristic_network",
]


class LinkReplacementPolicy(abc.ABC):
    """Policy an existing node uses when a newcomer requests an incoming link."""

    @abc.abstractmethod
    def choose_replacement(
        self,
        graph: OverlayGraph,
        holder: int,
        newcomer: int,
        rng: np.random.Generator,
    ) -> int | None:
        """Return the target of the link to redirect to ``newcomer``.

        Parameters
        ----------
        graph:
            The overlay graph.
        holder:
            The existing node asked to redirect one of its links.
        newcomer:
            The newly arrived node requesting an incoming link.
        rng:
            Random generator for the accept/victim decisions.

        Returns
        -------
        int or None
            The label of the existing link target to replace, or ``None``
            when the holder declines to redirect any link.
        """


@dataclass
class InverseDistanceReplacement(LinkReplacementPolicy):
    """The paper's replacement rule (Section 5, following Sarshar et al.).

    The holder accepts the redirect with probability
    ``p_new / (p_1 + ... + p_k + p_new)`` and, if it accepts, chooses the
    victim among its existing links with probability proportional to
    ``p_i = 1 / d_i``.  Short (immediate-neighbour) links are never touched.
    """

    def choose_replacement(
        self,
        graph: OverlayGraph,
        holder: int,
        newcomer: int,
        rng: np.random.Generator,
    ) -> int | None:
        node = graph.node(holder)
        live_links = [link for link in node.long_links if link.alive]
        if not live_links:
            return None
        space = graph.space
        distances = np.array(
            [max(1, space.distance(holder, link.target)) for link in live_links],
            dtype=float,
        )
        newcomer_distance = max(1, space.distance(holder, newcomer))
        weights = 1.0 / distances
        newcomer_weight = 1.0 / newcomer_distance

        accept_probability = newcomer_weight / (weights.sum() + newcomer_weight)
        if rng.random() >= accept_probability:
            return None

        victim_probabilities = weights / weights.sum()
        victim_index = int(rng.choice(len(live_links), p=victim_probabilities))
        return live_links[victim_index].target


@dataclass
class OldestLinkReplacement(LinkReplacementPolicy):
    """Ablation rule: accept with the same probability, but replace the oldest link.

    The paper reports that this strategy performs "almost as good" as the
    inverse-distance rule; the acceptance probability is kept identical so
    that only the victim-selection differs.
    """

    def choose_replacement(
        self,
        graph: OverlayGraph,
        holder: int,
        newcomer: int,
        rng: np.random.Generator,
    ) -> int | None:
        node = graph.node(holder)
        live_links = [link for link in node.long_links if link.alive]
        if not live_links:
            return None
        space = graph.space
        distances = np.array(
            [max(1, space.distance(holder, link.target)) for link in live_links],
            dtype=float,
        )
        newcomer_distance = max(1, space.distance(holder, newcomer))
        weights = 1.0 / distances
        newcomer_weight = 1.0 / newcomer_distance

        accept_probability = newcomer_weight / (weights.sum() + newcomer_weight)
        if rng.random() >= accept_probability:
            return None

        oldest = min(live_links, key=lambda link: link.created_at)
        return oldest.target


@dataclass
class NeverReplace(LinkReplacementPolicy):
    """Degenerate policy that always declines; used to isolate the effect of step 3."""

    def choose_replacement(
        self,
        graph: OverlayGraph,
        holder: int,
        newcomer: int,
        rng: np.random.Generator,
    ) -> int | None:
        return None


@dataclass
class HeuristicConstruction:
    """Incrementally builds and maintains the overlay via the Section-5 heuristic.

    Parameters
    ----------
    space:
        The metric space; the heuristic assumes a one-dimensional ring or line.
    links_per_node:
        The target number ``l`` of long links per node.
    replacement_policy:
        How existing nodes choose which link to redirect to a newcomer.
    exponent:
        Power-law exponent for the link-length distribution (1.0 in the paper).
    seed:
        Base seed for all sampling.
    """

    space: MetricSpace
    links_per_node: int
    replacement_policy: LinkReplacementPolicy = field(
        default_factory=InverseDistanceReplacement
    )
    exponent: float = 1.0
    seed: int = 0

    graph: OverlayGraph = field(init=False)
    _random: RandomSource = field(init=False, repr=False)
    _sorted_labels: list[int] = field(init=False, default_factory=list, repr=False)

    def __post_init__(self) -> None:
        ensure_positive(self.links_per_node, "links_per_node")
        self.graph = OverlayGraph(self.space)
        self._random = RandomSource(seed=self.seed)

    # ------------------------------------------------------------------ #
    # Arrival
    # ------------------------------------------------------------------ #

    def add_point(self, label: int) -> None:
        """Add a new occupied point to the network.

        Executes the three steps of the Section-5 heuristic: wire into the
        ring of immediate neighbours, generate outgoing long links (mapping
        absent sinks to their closest occupied point), then solicit incoming
        links from existing nodes.
        """
        if self.graph.has_node(label):
            raise ValueError(f"point {label} is already occupied")
        self.graph.add_node(label)
        self._insert_into_ring(label)
        self._generate_outgoing_links(label)
        self._solicit_incoming_links(label)

    def add_points(self, labels: list[int]) -> None:
        """Add several points in the given arrival order."""
        for label in labels:
            self.add_point(label)

    # ------------------------------------------------------------------ #
    # Departure
    # ------------------------------------------------------------------ #

    def remove_point(self, label: int) -> list[int]:
        """Remove an occupied point, repairing the ring around it.

        Returns the labels of nodes that lost a long link to the departed
        point; callers (e.g. the maintenance layer) may regenerate those links
        with :meth:`regenerate_link`.
        """
        if not self.graph.has_node(label):
            return []
        # The reverse link index gives the holders directly (O(in-degree)
        # instead of scanning every long link of every node); iterating the
        # node table preserves the exact order the old full scan produced,
        # which downstream regeneration RNG draws depend on.
        holders = set(
            self.graph.incoming_sources(label, only_alive_links=False)
        )
        holders.discard(label)
        affected = [node_label for node_label in self.graph.labels() if node_label in holders]
        departing = self.graph.node(label)
        left, right = departing.left, departing.right
        self.graph.remove_node(label)
        self._sorted_labels.remove(label)
        if not self._sorted_labels:
            return affected
        if len(self._sorted_labels) == 1:
            only = self._sorted_labels[0]
            self.graph.set_immediate_neighbors(only, None, None)
            return affected
        # Stitch the departed node's ring neighbours together.
        if left is not None and self.graph.has_node(left):
            left_node = self.graph.node(left)
            self.graph.set_immediate_neighbors(left, left_node.left, right)
        if right is not None and self.graph.has_node(right):
            right_node = self.graph.node(right)
            self.graph.set_immediate_neighbors(right, left, right_node.right)
        return affected

    def regenerate_link(self, holder: int) -> int | None:
        """Give ``holder`` one fresh long link drawn from the ideal distribution.

        Used by the repair path after a neighbour crashes: the paper notes
        that "the same heuristic can be used for regeneration of links when a
        node crashes".  Returns the new link's target, or ``None`` when no
        suitable target exists.
        """
        if not self.graph.has_node(holder):
            return None
        target = self._sample_existing_target(holder)
        if target is None or target == holder:
            return None
        existing = set(self.graph.node(holder).long_link_targets(only_alive=False))
        if target in existing:
            return None
        self.graph.add_long_link(holder, target)
        return target

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _insert_into_ring(self, label: int) -> None:
        """Insert ``label`` into the sorted ring of occupied points.

        Only the new node and its two ring neighbours are rewired, keeping the
        arrival cost logarithmic in the number of occupied points.
        """
        import bisect

        bisect.insort(self._sorted_labels, label)
        count = len(self._sorted_labels)
        if count == 1:
            self.graph.set_immediate_neighbors(label, None, None)
            return
        index = self._sorted_labels.index(label) if count < 64 else bisect.bisect_left(
            self._sorted_labels, label
        )
        wrap = isinstance(self.space, RingMetric)
        left_index = index - 1
        right_index = index + 1
        if wrap:
            left = self._sorted_labels[left_index % count]
            right = self._sorted_labels[right_index % count]
        else:
            left = self._sorted_labels[left_index] if left_index >= 0 else None
            right = self._sorted_labels[right_index] if right_index < count else None
        self.graph.set_immediate_neighbors(label, left, right)
        if left is not None:
            left_node = self.graph.node(left)
            self.graph.set_immediate_neighbors(left, left_node.left, label)
        if right is not None:
            right_node = self.graph.node(right)
            self.graph.set_immediate_neighbors(right, label, right_node.right)

    def _ideal_sink_weights(self, source: int) -> np.ndarray:
        """Unnormalised inverse power-law weight of every point of the space."""
        n = self.space.size()
        labels = np.arange(n)
        diff = np.abs(labels - source)
        if isinstance(self.space, RingMetric):
            distance = np.minimum(diff, n - diff).astype(float)
        else:
            distance = diff.astype(float)
        with np.errstate(divide="ignore"):
            weights = np.where(distance > 0, distance**-self.exponent, 0.0)
        return weights

    def _generate_outgoing_links(self, label: int) -> None:
        """Step 1: sample ideal sinks and attach links to their basin owners."""
        if len(self._sorted_labels) < 2:
            return
        rng = self._random.stream("outgoing")
        weights = self._ideal_sink_weights(label)
        total = weights.sum()
        if total <= 0:
            return
        probabilities = weights / total
        ideal_sinks = rng.choice(self.space.size(), size=self.links_per_node, p=probabilities)
        attached: set[int] = set()
        for ideal_sink in ideal_sinks:
            actual = self._closest_occupied(int(ideal_sink), exclude=label)
            if actual is None or actual == label or actual in attached:
                continue
            attached.add(actual)
            self.graph.add_long_link(label, actual)

    def _solicit_incoming_links(self, label: int) -> None:
        """Steps 2–3: estimate in-degree and ask existing nodes to redirect links."""
        if len(self._sorted_labels) < 2:
            return
        rng = self._random.stream("incoming")
        incoming_estimate = int(rng.poisson(self.links_per_node))
        if incoming_estimate <= 0:
            return

        others = np.array(self._sorted_labels, dtype=np.int64)
        others = others[others != label]
        diff = np.abs(others - label)
        if isinstance(self.space, RingMetric):
            n = self.space.size()
            distances = np.minimum(diff, n - diff).astype(float)
        else:
            distances = diff.astype(float)
        distances = np.maximum(distances, 1.0)
        weights = distances**-self.exponent
        probabilities = weights / weights.sum()
        draw_count = min(incoming_estimate, len(others))
        chosen = rng.choice(len(others), size=draw_count, replace=False, p=probabilities)

        for index in chosen:
            holder = int(others[int(index)])
            victim = self.replacement_policy.choose_replacement(
                self.graph, holder, label, rng
            )
            if victim is None:
                continue
            existing_targets = set(self.graph.node(holder).long_link_targets())
            if label in existing_targets:
                continue
            self.graph.redirect_long_link(holder, victim, label)

    def _closest_occupied(self, point: int, exclude: int | None = None) -> int | None:
        """Return the occupied point closest to ``point`` (basin-of-attraction rule).

        Uses binary search over the sorted occupied labels so each lookup is
        logarithmic; on a ring the wrap-around candidates are also considered.
        """
        import bisect

        labels = self._sorted_labels
        if not labels or (len(labels) == 1 and labels[0] == exclude):
            return None
        index = bisect.bisect_left(labels, point)
        candidate_indices = {
            (index - 1) % len(labels),
            index % len(labels),
            (index + 1) % len(labels),
        }
        if isinstance(self.space, RingMetric):
            candidate_indices.update({0, len(labels) - 1})
        best: int | None = None
        best_distance: int | None = None
        for candidate_index in candidate_indices:
            candidate = labels[candidate_index]
            if candidate == exclude:
                continue
            distance = self.space.distance(candidate, point)
            if best_distance is None or distance < best_distance:
                best = candidate
                best_distance = distance
        return best

    def _sample_existing_target(self, source: int) -> int | None:
        """Sample one *live* occupied point with probability proportional to 1/d(source, .).

        Used by link regeneration after failures, so dead (but not yet excised)
        points must not be chosen as replacement targets.
        """
        is_alive = self.graph.is_alive
        others = np.fromiter(
            (
                label
                for label in self._sorted_labels
                if label != source and is_alive(label)
            ),
            dtype=np.int64,
        )
        if others.size == 0:
            return None
        rng = self._random.stream("regenerate")
        # Vectorized metric distance (the repair path samples thousands of
        # replacement links per churn round; a per-candidate space.distance
        # call here dominated whole repair passes).
        diff = np.abs(others - source)
        if isinstance(self.space, RingMetric):
            distances = np.minimum(diff, self.space.size() - diff).astype(float)
        else:
            distances = diff.astype(float)
        distances = np.maximum(distances, 1.0)
        weights = distances**-self.exponent
        probabilities = weights / weights.sum()
        index = int(rng.choice(others.size, p=probabilities))
        return int(others[index])


def build_heuristic_network(
    n: int,
    occupied: int | None = None,
    links_per_node: int | None = None,
    replacement_policy: LinkReplacementPolicy | None = None,
    seed: int = 0,
) -> HeuristicConstruction:
    """Build a network incrementally with the Section-5 heuristic.

    Parameters
    ----------
    n:
        Size of the identifier space (a ring of ``n`` grid points).
    occupied:
        Number of occupied points (default: all ``n``, as in the paper's
        Figure-5 experiment where every grid point hosts a node).
    links_per_node:
        Long links per node (default ``ceil(lg n)``, matching the paper's
        "2^14 nodes with 14 links each").
    replacement_policy:
        Link-replacement rule (default: the inverse-distance rule).
    seed:
        Base seed; also controls the random arrival order and the choice of
        occupied points when ``occupied < n``.

    Returns
    -------
    HeuristicConstruction
        The construction object; its ``graph`` attribute holds the network.
    """
    ensure_positive(n, "n")
    if occupied is None:
        occupied = n
    if not 2 <= occupied <= n:
        raise ValueError(f"occupied must be in [2, {n}], got {occupied}")
    if links_per_node is None:
        links_per_node = max(1, int(np.ceil(np.log2(n))))
    if replacement_policy is None:
        replacement_policy = InverseDistanceReplacement()

    source = RandomSource(seed=seed)
    rng = source.stream("arrival-order")
    if occupied == n:
        labels = np.arange(n)
    else:
        labels = rng.choice(n, size=occupied, replace=False)
    order = np.array(labels, copy=True)
    rng.shuffle(order)

    construction = HeuristicConstruction(
        space=RingMetric(n),
        links_per_node=links_per_node,
        replacement_policy=replacement_policy,
        seed=seed,
    )
    construction.add_points([int(label) for label in order])
    return construction

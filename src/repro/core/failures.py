"""Failure models: link failures, node failures, and adversarial behaviour.

The paper analyses three failure regimes:

* **Link failures** (Section 4.3.3) — every long-distance link is present
  independently with probability ``p``; the short links to immediate
  neighbours never fail, so a message is always deliverable (if slowly).
* **Node failures, binomial placement** (Section 4.3.4.1) — each grid point
  hosts a node with probability ``p`` and links are drawn only to existing
  nodes.  This case is handled at *build* time (see
  :class:`~repro.core.builder.RandomGraphBuilder`'s ``presence_probability``)
  because it changes which graph gets built, not which parts of it fail.
* **General node failures** (Sections 4.3.4.2 and 6) — the network is built
  first and then a fraction (or probability) ``p`` of nodes fail, taking all
  their incident links with them.

Section 7 lists robustness against *Byzantine* behaviour as future work; we
implement a simple adversarial model in which compromised nodes stay alive but
misbehave during routing (dropping or deliberately misrouting messages), so
that the extension experiments have something concrete to measure.

All models are **non-destructive**: they flip liveness flags on the graph and
return a record of what they touched, and every model can :meth:`~FailureModel.repair`
what it broke.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import OverlayGraph
from repro.util.rng import spawn_rng
from repro.util.validation import ensure_probability

__all__ = [
    "FailureModel",
    "LinkFailureModel",
    "NodeFailureModel",
    "TargetedNodeFailureModel",
    "ByzantineModel",
    "ByzantineBehavior",
]


class FailureModel(abc.ABC):
    """Base class for failure injectors."""

    @abc.abstractmethod
    def apply(self, graph: OverlayGraph) -> dict:
        """Inject failures into ``graph`` and return a summary dictionary."""

    @abc.abstractmethod
    def repair(self, graph: OverlayGraph) -> None:
        """Undo the failures this model injected into ``graph``."""


@dataclass
class LinkFailureModel(FailureModel):
    """Fail each long-distance link independently (Section 4.3.3).

    Each long link survives with probability ``presence_probability``; short
    links (immediate neighbours) are never touched, matching the paper's
    assumption that "the links to the immediate neighbours are always present".

    Parameters
    ----------
    presence_probability:
        Probability ``p`` that a long link remains alive.
    seed:
        Seed controlling which links fail.
    """

    presence_probability: float
    seed: int = 0
    #: (holder label, target label) pairs of the links the last apply failed.
    _failed: list[tuple[int, int]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        ensure_probability(self.presence_probability, "presence_probability")

    def apply(self, graph: OverlayGraph) -> dict:
        rng = spawn_rng(self.seed, "link-failures")
        self._failed.clear()
        total_links = 0
        # One rng.random() per long link in graph iteration order — the draw
        # sequence seeded experiments depend on; keep it if refactoring.
        for node in graph.nodes():
            for link in node.long_links:
                total_links += 1
                if rng.random() >= self.presence_probability:
                    if graph.fail_long_link(node.label, link.target):
                        self._failed.append((node.label, link.target))
        return {
            "model": "link-failure",
            "presence_probability": self.presence_probability,
            "total_long_links": total_links,
            "failed_links": len(self._failed),
        }

    def repair(self, graph: OverlayGraph) -> None:
        for label, target in self._failed:
            if graph.has_node(label):
                graph.revive_long_link(label, target)
        self._failed.clear()


@dataclass
class NodeFailureModel(FailureModel):
    """Fail nodes after the network is built (Sections 4.3.4.2 and 6).

    Either a *fraction* of nodes is failed exactly (the experimental setup of
    Section 6, "a fraction p of the nodes fail") or each node fails
    independently with a *probability* (the analytical model of
    Section 4.3.4.2); choose with ``mode``.

    Parameters
    ----------
    failure_level:
        The fraction (or per-node probability) of failures, in [0, 1].
    mode:
        ``"fraction"`` (default, exact count) or ``"probability"``
        (independent coin flips).
    protect:
        Labels that must never be failed (e.g. the source/destination pairs of
        a routing experiment, which the paper draws from the live nodes).
    seed:
        Seed controlling which nodes fail.
    """

    failure_level: float
    mode: str = "fraction"
    protect: frozenset[int] = frozenset()
    seed: int = 0
    _failed: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        ensure_probability(self.failure_level, "failure_level")
        if self.mode not in ("fraction", "probability"):
            raise ValueError(f"mode must be 'fraction' or 'probability', got {self.mode!r}")
        self.protect = frozenset(self.protect)

    def apply(self, graph: OverlayGraph) -> dict:
        rng = spawn_rng(self.seed, "node-failures")
        self._failed.clear()
        candidates = [
            label for label in graph.labels(only_alive=True) if label not in self.protect
        ]
        if self.mode == "fraction":
            count = int(round(self.failure_level * len(candidates)))
            count = min(count, len(candidates))
            if count > 0:
                chosen = rng.choice(len(candidates), size=count, replace=False)
                victims = [candidates[int(i)] for i in chosen]
            else:
                victims = []
        else:
            draws = rng.random(len(candidates))
            victims = [
                label
                for label, draw in zip(candidates, draws)
                if draw < self.failure_level
            ]
        for label in victims:
            graph.fail_node(label)
            self._failed.append(label)
        return {
            "model": "node-failure",
            "mode": self.mode,
            "failure_level": self.failure_level,
            "failed_nodes": len(self._failed),
            "alive_nodes": graph.alive_count(),
        }

    def repair(self, graph: OverlayGraph) -> None:
        for label in self._failed:
            if graph.has_node(label):
                graph.revive_node(label)
        self._failed.clear()

    @property
    def failed_labels(self) -> list[int]:
        """Labels failed by the most recent :meth:`apply` call."""
        return list(self._failed)


@dataclass
class TargetedNodeFailureModel(FailureModel):
    """Fail a specific, caller-chosen set of nodes.

    Useful for adversarial "carefully chosen node failures" (the paper notes
    that the deterministic strategy can be trapped by such failures in
    Section 4.3.4.2) and for regression tests that need a precise topology.
    """

    victims: tuple[int, ...]
    _failed: list[int] = field(default_factory=list, repr=False)

    def apply(self, graph: OverlayGraph) -> dict:
        self._failed.clear()
        for label in self.victims:
            if graph.has_node(label) and graph.is_alive(label):
                graph.fail_node(label)
                self._failed.append(label)
        return {
            "model": "targeted-node-failure",
            "failed_nodes": len(self._failed),
            "alive_nodes": graph.alive_count(),
        }

    def repair(self, graph: OverlayGraph) -> None:
        for label in self._failed:
            if graph.has_node(label):
                graph.revive_node(label)
        self._failed.clear()


class ByzantineBehavior:
    """How a Byzantine node misbehaves during routing.

    ``DROP``     — silently discard every message it receives.
    ``MISROUTE`` — forward the message to its neighbour *farthest* from the
                   target instead of the closest.
    ``RANDOM``   — forward the message to a uniformly random neighbour.
    """

    DROP = "drop"
    MISROUTE = "misroute"
    RANDOM = "random"

    ALL = (DROP, MISROUTE, RANDOM)


@dataclass
class ByzantineModel(FailureModel):
    """Mark a fraction of nodes as Byzantine (paper Section 7, future work).

    Byzantine nodes stay alive (so ordinary failure detection does not help)
    but misbehave according to ``behavior``.  The model only *marks* nodes;
    the misbehaviour itself is interpreted by
    :class:`repro.core.byzantine.ByzantineAwareRouter`, which consults
    :attr:`compromised` when simulating each hop.

    Parameters
    ----------
    fraction:
        Fraction of live nodes to compromise.
    behavior:
        One of :class:`ByzantineBehavior`'s constants.
    protect:
        Labels that must never be compromised.
    seed:
        Seed controlling which nodes are compromised.
    """

    fraction: float
    behavior: str = ByzantineBehavior.DROP
    protect: frozenset[int] = frozenset()
    seed: int = 0
    compromised: set[int] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        ensure_probability(self.fraction, "fraction")
        if self.behavior not in ByzantineBehavior.ALL:
            raise ValueError(
                f"behavior must be one of {ByzantineBehavior.ALL}, got {self.behavior!r}"
            )
        self.protect = frozenset(self.protect)

    def apply(self, graph: OverlayGraph) -> dict:
        rng = spawn_rng(self.seed, "byzantine")
        self.compromised.clear()
        candidates = [
            label for label in graph.labels(only_alive=True) if label not in self.protect
        ]
        count = int(round(self.fraction * len(candidates)))
        count = min(count, len(candidates))
        if count > 0:
            chosen = rng.choice(len(candidates), size=count, replace=False)
            self.compromised.update(candidates[int(i)] for i in chosen)
        return {
            "model": "byzantine",
            "behavior": self.behavior,
            "compromised_nodes": len(self.compromised),
        }

    def repair(self, graph: OverlayGraph) -> None:
        self.compromised.clear()

    def is_compromised(self, label: int) -> bool:
        """Return ``True`` when the node at ``label`` is Byzantine."""
        return label in self.compromised


def failure_sweep_levels(maximum: float = 0.8, step: float = 0.1) -> list[float]:
    """Return the standard failure-level sweep used by the paper's Figure 6.

    The paper sweeps the fraction of failed nodes from 0 to 0.8 in steps of
    0.1 (Figure 7 extends to 0.9).  Floating-point rounding is cleaned up so
    the values are exact multiples of ``step``.
    """
    count = int(round(maximum / step))
    return [round(i * step, 10) for i in range(count + 1)]

"""Core library: the paper's primary contribution.

This package contains the metric-space embedding, link distributions, overlay
graph, greedy routing with failure recovery, failure models, the Section-5
dynamic construction heuristic, self-maintenance, the theoretical bounds of
Table 1, and the :class:`~repro.core.network.P2PNetwork` facade tying them
together.
"""

from repro.core.bounds import Table1Bounds
from repro.core.builder import (
    BuildResult,
    DeterministicGraphBuilder,
    RandomGraphBuilder,
    build_ideal_network,
)
from repro.core.byzantine import ByzantineAwareRouter, RedundantRouter
from repro.core.construction import (
    HeuristicConstruction,
    InverseDistanceReplacement,
    NeverReplace,
    OldestLinkReplacement,
    build_heuristic_network,
)
from repro.core.distributions import (
    DeterministicBaseBOffsets,
    InversePowerLawDistribution,
    KleinbergGridDistribution,
    UniformLinkDistribution,
    harmonic_number,
)
from repro.core.failures import (
    ByzantineBehavior,
    ByzantineModel,
    LinkFailureModel,
    NodeFailureModel,
    TargetedNodeFailureModel,
    failure_sweep_levels,
)
from repro.core.graph import LongLink, OverlayGraph, OverlayNode
from repro.core.identifiers import (
    FibonacciHasher,
    KeyHasher,
    Resource,
    ResourceEmbedding,
    Sha256Hasher,
)
from repro.core.maintenance import MaintenanceDaemon, MaintenanceReport, prune_dead_links
from repro.core.metric import LineMetric, MetricSpace, RingMetric, TorusMetric
from repro.core.network import LookupOutcome, NetworkStatistics, P2PNetwork
from repro.core.routing import (
    FailureReason,
    GreedyRouter,
    RecoveryStrategy,
    RouteResult,
    RoutingMode,
)

__all__ = [
    # metric spaces and identifiers
    "MetricSpace",
    "LineMetric",
    "RingMetric",
    "TorusMetric",
    "KeyHasher",
    "Sha256Hasher",
    "FibonacciHasher",
    "Resource",
    "ResourceEmbedding",
    # distributions
    "InversePowerLawDistribution",
    "UniformLinkDistribution",
    "DeterministicBaseBOffsets",
    "KleinbergGridDistribution",
    "harmonic_number",
    # graph and builders
    "OverlayGraph",
    "OverlayNode",
    "LongLink",
    "BuildResult",
    "RandomGraphBuilder",
    "DeterministicGraphBuilder",
    "build_ideal_network",
    # routing
    "GreedyRouter",
    "RoutingMode",
    "RecoveryStrategy",
    "FailureReason",
    "RouteResult",
    # failures and Byzantine extensions
    "LinkFailureModel",
    "NodeFailureModel",
    "TargetedNodeFailureModel",
    "ByzantineModel",
    "ByzantineBehavior",
    "ByzantineAwareRouter",
    "RedundantRouter",
    "failure_sweep_levels",
    # construction and maintenance
    "HeuristicConstruction",
    "InverseDistanceReplacement",
    "OldestLinkReplacement",
    "NeverReplace",
    "build_heuristic_network",
    "MaintenanceDaemon",
    "MaintenanceReport",
    "prune_dead_links",
    # bounds
    "Table1Bounds",
    # facade
    "P2PNetwork",
    "LookupOutcome",
    "NetworkStatistics",
]

"""Figure 7: heuristically constructed network vs ideal network under failures.

The paper builds a 16384-node network ten times, both "ideally" (every node
samples its long links straight from the inverse power-law distribution) and
with the Section-5 heuristic (nodes arrive one at a time and solicit link
redirects), fails a fraction of the nodes, and delivers 1000 messages between
random live pairs.  Figure 7 plots the fraction of failed searches for both
networks: the constructed network is somewhat worse but comparable.

Defaults are scaled down (2^11 nodes, 2 iterations, 200 messages); pass
``nodes=16384, iterations=10, searches_per_point=1000`` for paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import build_ideal_network
from repro.core.construction import build_heuristic_network
from repro.core.failures import NodeFailureModel, failure_sweep_levels
from repro.core.routing import RecoveryStrategy
from repro.experiments.runner import ExperimentTable, route_pairs_with_engine
from repro.fastpath import cached_build_snapshot
from repro.simulation.workload import LookupWorkload
from repro.util.rng import derive_seed

__all__ = ["Figure7Result", "run_figure7"]


@dataclass
class Figure7Result:
    """Numeric reproduction of Figure 7."""

    failure_levels: list[float]
    ideal_failed_fraction: list[float] = field(default_factory=list)
    constructed_failed_fraction: list[float] = field(default_factory=list)
    parameters: dict = field(default_factory=dict)

    def to_table(self) -> ExperimentTable:
        """Return the figure as a printable table."""
        table = ExperimentTable(
            title="Figure 7: fraction of failed searches, constructed vs ideal network",
            columns=["failed_nodes", "constructed", "ideal"],
        )
        for index, level in enumerate(self.failure_levels):
            table.add_row(
                level,
                self.constructed_failed_fraction[index],
                self.ideal_failed_fraction[index],
            )
        return table


def run_figure7(
    nodes: int = 1 << 11,
    links_per_node: int | None = None,
    failure_levels: list[float] | None = None,
    searches_per_point: int = 200,
    iterations: int = 2,
    recovery: RecoveryStrategy = RecoveryStrategy.TERMINATE,
    seed: int = 0,
    engine: str = "object",
) -> Figure7Result:
    """Reproduce Figure 7.

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"figure7"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.

    ``engine="fastpath"`` accelerates the whole sweep with identical
    statistics for every recovery strategy: ideal networks are built straight
    into CSR snapshots, constructed networks are compiled once per iteration,
    and all routing runs batched.
    """
    from repro.scenarios import run
    from repro.scenarios.library import figure7_spec

    spec = figure7_spec(
        nodes=nodes,
        links_per_node=links_per_node,
        failure_levels=failure_levels,
        searches_per_point=searches_per_point,
        iterations=iterations,
        recovery=recovery.value,
        seed=seed,
        engine=engine,
    )
    return run(spec).raw


def _run_figure7_impl(
    nodes: int = 1 << 11,
    links_per_node: int | None = None,
    failure_levels: list[float] | None = None,
    searches_per_point: int = 200,
    iterations: int = 2,
    recovery: RecoveryStrategy = RecoveryStrategy.TERMINATE,
    seed: int = 0,
    engine: str = "object",
) -> Figure7Result:
    """The Figure-7 measurement (executed via the ``"figure7"`` scenario).

    For each failure level and iteration, an ideal and a heuristically
    constructed network of the same size are built, the same fraction of nodes
    fails in each, and the same number of random searches is routed; the
    failed-search fractions are averaged over iterations.

    Seeds are derived with :func:`repro.util.rng.derive_seed`, namespaced by
    purpose and sweep position.  With ``engine="fastpath"`` the ideal
    networks are built straight into CSR snapshots
    (:func:`repro.fastpath.build_snapshot`) and every level routes on a
    derived alive mask; the constructed networks — inherently built node by
    node through the Section-5 heuristic — are compiled **once** per
    iteration and reuse their snapshot across all failure levels.
    """
    if links_per_node is None:
        links_per_node = max(1, int(np.ceil(np.log2(nodes))))
    if failure_levels is None:
        failure_levels = failure_sweep_levels(maximum=0.9, step=0.1)

    result = Figure7Result(
        failure_levels=list(failure_levels),
        parameters={
            "nodes": nodes,
            "links_per_node": links_per_node,
            "searches_per_point": searches_per_point,
            "iterations": iterations,
            "recovery": recovery.value,
            "seed": seed,
            "engine": engine,
        },
    )
    from repro.fastpath import compile_snapshot, sample_node_failures, select_engine

    resolved = select_engine(engine, recovery)
    result.parameters["engine_used"] = resolved
    fastpath = resolved == "fastpath"

    # Build the networks once per iteration and reuse them across failure
    # levels (failures are repaired after each level), which matches the
    # paper's "10 iterations of constructing a network" methodology.  Each
    # entry is (graph, base snapshot): ideal fastpath networks skip the
    # object layer entirely (graph is None); constructed networks always
    # carry a graph and, under fastpath, a one-time compiled snapshot.
    ideal_networks: list[tuple] = []
    constructed_networks: list[tuple] = []
    for iteration in range(iterations):
        ideal_seed = derive_seed(seed, "figure7", "ideal", iteration)
        constructed_seed = derive_seed(seed, "figure7", "constructed", iteration)
        if fastpath:
            ideal_networks.append(
                (
                    None,
                    cached_build_snapshot(
                        nodes, links_per_node=links_per_node, seed=ideal_seed
                    ),
                )
            )
        else:
            ideal_networks.append(
                (
                    build_ideal_network(
                        nodes, links_per_node=links_per_node, seed=ideal_seed
                    ).graph,
                    None,
                )
            )
        constructed = build_heuristic_network(
            n=nodes, links_per_node=links_per_node, seed=constructed_seed
        ).graph
        constructed_networks.append(
            (constructed, compile_snapshot(constructed) if fastpath else None)
        )

    for level_index, level in enumerate(failure_levels):
        ideal_fractions = []
        constructed_fractions = []
        workload_seed = derive_seed(seed, "figure7", "workload", level_index)
        route_seed = derive_seed(seed, "figure7", "route", level_index)
        for iteration in range(iterations):
            failure_seed = derive_seed(seed, "figure7", "failures", iteration, level_index)
            for (graph, base), bucket in (
                (ideal_networks[iteration], ideal_fractions),
                (constructed_networks[iteration], constructed_fractions),
            ):
                snapshot = None
                if graph is None:
                    # Direct-built ideal network: failures are a derived mask
                    # (same victims as NodeFailureModel at the same seed).
                    failed = sample_node_failures(base, level, seed=failure_seed)
                    snapshot = base.with_alive(base.alive & ~failed)
                    live = snapshot.labels[snapshot.alive].tolist()
                else:
                    failure_model = NodeFailureModel(level, seed=failure_seed)
                    failure_model.apply(graph)
                    live = graph.labels(only_alive=True)
                    if base is not None:
                        # Reuse the one-time compiled topology; only the
                        # liveness mask changes per level.
                        alive = base.alive.copy()
                        if failure_model.failed_labels:
                            alive[base.indices_of(failure_model.failed_labels)] = False
                        snapshot = base.with_alive(alive)
                workload = LookupWorkload(seed=workload_seed)
                pairs = workload.pairs(live, searches_per_point)
                outcome = route_pairs_with_engine(
                    graph,
                    pairs,
                    engine=engine,
                    recovery=recovery,
                    seed=route_seed,
                    snapshot=snapshot,
                )
                bucket.append(outcome.failures / len(pairs))
                if graph is not None:
                    failure_model.repair(graph)
        result.ideal_failed_fraction.append(float(np.mean(ideal_fractions)))
        result.constructed_failed_fraction.append(float(np.mean(constructed_fractions)))

    return result

"""Table 1: measured delivery times versus the theoretical bound shapes.

Table 1 of the paper summarises the upper and lower bounds on greedy routing
for six models (no failures with 1 / polylog / large numbers of links, link
failures with the randomized and deterministic strategies, and node failures).
This experiment measures mean delivery time for each model over a parameter
sweep and reports it next to the corresponding bound shape, fitting the single
scaling constant the asymptotic notation hides.

The reproduction claim is about *shape*: e.g. measured hops for the
single-link model should grow like ``log^2 n`` (good R² against the fitted
``a·log²n + b`` model), hops with ``l`` links should fall roughly like
``1/l``, hops under link failures like ``1/p``, and the deterministic
base-``b`` scheme should deliver in about ``log_b n`` hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import bounds
from repro.core.builder import (
    DeterministicGraphBuilder,
    RandomGraphBuilder,
    build_ideal_network,
)
from repro.core.distributions import InversePowerLawDistribution
from repro.core.failures import LinkFailureModel, NodeFailureModel
from repro.core.metric import RingMetric
from repro.core.routing import RecoveryStrategy
from repro.experiments.runner import ExperimentTable, route_pairs_with_engine
from repro.fastpath import (
    DeltaRecorder,
    DeltaSnapshot,
    cached_build_snapshot,
    sample_node_failures,
    select_engine,
)
from repro.simulation.workload import LookupWorkload

__all__ = ["Table1Result", "run_table1", "measure_mean_hops"]


def measure_mean_hops(
    graph,
    searches: int,
    seed: int,
    recovery: RecoveryStrategy = RecoveryStrategy.BACKTRACK,
    engine: str = "object",
    snapshot=None,
) -> tuple[float, float]:
    """Return (mean hops of successful searches, failed fraction).

    ``engine="fastpath"`` routes every recovery strategy — including the
    default backtracking — on the batched engine, with results identical to
    the object engine at the same seed.  Pass a precompiled (or direct-built)
    ``snapshot`` to skip per-call compilation; ``graph`` may then be ``None``
    for topologies that never existed as object graphs.
    """
    if graph is not None:
        live = graph.labels(only_alive=True)
    else:
        live = snapshot.labels[snapshot.alive].tolist()
    workload = LookupWorkload(seed=seed)
    pairs = workload.pairs(live, searches)
    outcome = route_pairs_with_engine(
        graph, pairs, engine=engine, recovery=recovery, seed=seed, snapshot=snapshot
    )
    mean_hops = float(np.mean(outcome.hops)) if outcome.hops else 0.0
    return mean_hops, outcome.failures / len(pairs)


def _ideal_topology(n: int, links: int, seed: int, engine: str):
    """Build the standard ring network for one measurement point.

    Returns ``(graph, snapshot)``: the fastpath engine builds straight into a
    CSR snapshot (no object graph at all); the object engine builds the
    overlay graph.  Both realise the identical network at the same seed.
    """
    if engine == "fastpath":
        return None, cached_build_snapshot(n, links_per_node=links, seed=seed)
    return build_ideal_network(n, links_per_node=links, seed=seed).graph, None


@dataclass
class Table1Result:
    """Measured sweeps for every row of Table 1."""

    single_link: ExperimentTable
    polylog_links: ExperimentTable
    deterministic: ExperimentTable
    link_failures_random: ExperimentTable
    link_failures_deterministic: ExperimentTable
    node_failures: ExperimentTable
    binomial_nodes: ExperimentTable
    parameters: dict = field(default_factory=dict)

    def tables(self) -> list[ExperimentTable]:
        """All sub-tables in Table-1 row order."""
        return [
            self.single_link,
            self.polylog_links,
            self.deterministic,
            self.link_failures_random,
            self.link_failures_deterministic,
            self.node_failures,
            self.binomial_nodes,
        ]

    def to_text(self) -> str:
        """Render every sub-table."""
        return "\n\n".join(table.to_text() for table in self.tables())


def run_table1(
    sizes: list[int] | None = None,
    link_counts: list[int] | None = None,
    bases: list[int] | None = None,
    probabilities: list[float] | None = None,
    searches: int = 150,
    seed: int = 0,
    recovery: RecoveryStrategy = RecoveryStrategy.BACKTRACK,
    engine: str = "object",
) -> Table1Result:
    """Measure delivery time for every Table-1 model.

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"table1"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.

    Parameters
    ----------
    sizes:
        Network sizes for the scaling sweeps (default ``2^8 .. 2^12``).
    link_counts:
        Values of ``l`` for the polylog-links sweep.
    bases:
        Bases for the deterministic scheme.
    probabilities:
        Survival probabilities for the failure sweeps.
    searches:
        Searches per measurement point.
    seed:
        Base seed.
    recovery:
        Recovery strategy used by every measurement (the paper's default is
        backtracking, the best-performing strategy).
    engine:
        ``"object"`` or ``"fastpath"``.  Fastpath accelerates every
        measurement — including the default backtracking strategy — and the
        ideal-network rows additionally skip the object graph entirely via
        the direct-to-CSR build, with results identical to the object engine
        at the same seed.
    """
    from repro.scenarios import run
    from repro.scenarios.library import table1_spec

    spec = table1_spec(
        sizes=sizes,
        link_counts=link_counts,
        bases=bases,
        probabilities=probabilities,
        searches=searches,
        seed=seed,
        recovery=recovery.value,
        engine=engine,
    )
    return run(spec).raw


def _link_failure_sweep(
    graph,
    probabilities,
    searches: int,
    recovery: RecoveryStrategy,
    engine: str,
    model_seed: int,
    measure_seed: int,
    add_row,
) -> None:
    """Sweep link-survival probabilities over one shared topology (rows 4/5).

    Each level fails links with :class:`~repro.core.failures.LinkFailureModel`,
    measures, and repairs.  Under ``engine="fastpath"`` the routing tables are
    maintained through edge-liveness deltas: a recorder captures the model's
    ``link_fail``/``link_revive`` flips and a delta mirror folds them into the
    snapshot in place, so no level ever recompiles the topology.  Hop counts
    are identical to the object engine at the same seed either way.
    """
    recorder = mirror = None
    if select_engine(engine, recovery) == "fastpath":
        recorder = DeltaRecorder.attach(graph)
        mirror = DeltaSnapshot.from_graph(graph)
    try:
        for index, p in enumerate(probabilities):
            model = LinkFailureModel(p, seed=model_seed + index)
            model.apply(graph)
            snapshot = None
            if mirror is not None:
                mirror.apply(recorder.drain())
                snapshot = mirror.snapshot()
            hops, failed = measure_mean_hops(
                graph, searches, measure_seed + index,
                recovery=recovery, engine=engine, snapshot=snapshot,
            )
            add_row(p, hops, failed)
            model.repair(graph)
        if mirror is not None:
            mirror.apply(recorder.drain())
    finally:
        if recorder is not None:
            recorder.detach()


def _run_table1_impl(
    sizes: list[int] | None = None,
    link_counts: list[int] | None = None,
    bases: list[int] | None = None,
    probabilities: list[float] | None = None,
    searches: int = 150,
    seed: int = 0,
    recovery: RecoveryStrategy = RecoveryStrategy.BACKTRACK,
    engine: str = "object",
) -> Table1Result:
    """The Table-1 measurement (executed via the ``"table1"`` scenario)."""
    if sizes is None:
        sizes = [1 << k for k in range(8, 13)]
    if link_counts is None:
        link_counts = [1, 2, 4, 8, 12]
    if bases is None:
        bases = [2, 4, 8, 16]
    if probabilities is None:
        probabilities = [1.0, 0.9, 0.75, 0.5, 0.25]

    # Row 1: single long link, no failures — hops should grow ~ log^2 n.
    single = ExperimentTable(
        title="Table 1 row 1 — no failures, l = 1: measured vs O(log^2 n)",
        columns=["n", "measured_hops", "bound_shape_log2n_sq"],
    )
    for index, n in enumerate(sizes):
        graph, snapshot = _ideal_topology(n, 1, seed + index, engine)
        hops, _ = measure_mean_hops(graph, searches, seed + 10 + index, recovery=recovery, engine=engine, snapshot=snapshot)
        single.add_row(n, hops, bounds.upper_bound_single_link(n))

    # Row 2: l links in [1, lg n] — hops should fall roughly like 1/l.
    polylog_n = sizes[-1]
    polylog = ExperimentTable(
        title=f"Table 1 row 2 — no failures, n = {polylog_n}: measured vs O(log^2 n / l)",
        columns=["links", "measured_hops", "bound_shape"],
    )
    for index, links in enumerate(link_counts):
        graph, snapshot = _ideal_topology(polylog_n, links, seed + 20 + index, engine)
        hops, _ = measure_mean_hops(graph, searches, seed + 30 + index, recovery=recovery, engine=engine, snapshot=snapshot)
        polylog.add_row(links, hops, bounds.upper_bound_multiple_links(polylog_n, links))

    # Row 3: deterministic base-b scheme — hops should be ~ log_b n.
    deterministic = ExperimentTable(
        title=f"Table 1 row 3 — deterministic base-b links, n = {polylog_n}: measured vs O(log_b n)",
        columns=["base", "links_per_node", "measured_hops", "bound_shape_log_b_n"],
    )
    for index, base in enumerate(bases):
        builder = DeterministicGraphBuilder(
            space=RingMetric(polylog_n), base=base, variant="full", seed=seed + 40 + index
        )
        build = builder.build()
        hops, _ = measure_mean_hops(build.graph, searches, seed + 50 + index, recovery=recovery, engine=engine)
        deterministic.add_row(
            base, build.links_per_node, hops, bounds.upper_bound_deterministic(polylog_n, base)
        )

    # Row 4: link failures, randomized strategy — hops should grow ~ 1/p.
    failure_n = sizes[-1]
    failure_links = max(1, int(np.ceil(np.log2(failure_n))))
    link_failures_random = ExperimentTable(
        title=(
            f"Table 1 row 4 — link failures, n = {failure_n}, l = {failure_links}: "
            "measured vs O(log^2 n / (p l))"
        ),
        columns=["p_link_alive", "measured_hops", "failed_fraction", "bound_shape"],
    )
    base_build = build_ideal_network(failure_n, links_per_node=failure_links, seed=seed + 60)
    _link_failure_sweep(
        base_build.graph, probabilities, searches, recovery, engine,
        model_seed=seed + 70, measure_seed=seed + 80,
        add_row=lambda p, hops, failed: link_failures_random.add_row(
            p, hops, failed, bounds.upper_bound_link_failures_random(failure_n, failure_links, p)
        ),
    )

    # Row 5: link failures, deterministic powers-of-b scheme — hops ~ b log n / p.
    deterministic_base = 2
    link_failures_det = ExperimentTable(
        title=(
            f"Table 1 row 5 — link failures, deterministic base-{deterministic_base} powers, "
            f"n = {failure_n}: measured vs O(b log n / p)"
        ),
        columns=["p_link_alive", "measured_hops", "failed_fraction", "bound_shape"],
    )
    det_builder = DeterministicGraphBuilder(
        space=RingMetric(failure_n), base=deterministic_base, variant="powers", seed=seed + 90
    )
    det_build = det_builder.build()
    _link_failure_sweep(
        det_build.graph, probabilities, searches, recovery, engine,
        model_seed=seed + 100, measure_seed=seed + 110,
        add_row=lambda p, hops, failed: link_failures_det.add_row(
            p, hops, failed,
            bounds.upper_bound_link_failures_deterministic(failure_n, deterministic_base, p),
        ),
    )

    # Row 6: node failures after construction — hops ~ 1 / (1 - p).
    node_failures = ExperimentTable(
        title=(
            f"Table 1 row 6 — node failures, n = {failure_n}, l = {failure_links}: "
            "measured vs O(log^2 n / ((1-p) l))"
        ),
        columns=["p_node_failed", "measured_hops", "failed_fraction", "bound_shape"],
    )
    node_graph, node_base = _ideal_topology(failure_n, failure_links, seed + 120, engine)
    for index, p_alive in enumerate(probabilities):
        p_failed = round(1.0 - p_alive, 10)
        if node_graph is None:
            # Direct-built topology: failures are a derived alive mask with
            # the same victims NodeFailureModel would pick at this seed.
            failed_mask = sample_node_failures(node_base, p_failed, seed=seed + 130 + index)
            snapshot = node_base.with_alive(node_base.alive & ~failed_mask)
            hops, failed = measure_mean_hops(
                None, searches, seed + 140 + index, recovery=recovery, engine=engine, snapshot=snapshot
            )
        else:
            model = NodeFailureModel(p_failed, seed=seed + 130 + index)
            model.apply(node_graph)
            hops, failed = measure_mean_hops(node_graph, searches, seed + 140 + index, recovery=recovery, engine=engine)
            model.repair(node_graph)
        node_failures.add_row(
            p_failed, hops, failed,
            bounds.upper_bound_node_failures(failure_n, failure_links, p_failed),
        )

    # Section 4.3.4.1: binomially distributed nodes — delivery time unchanged.
    binomial = ExperimentTable(
        title=(
            "Section 4.3.4.1 — binomially placed nodes (links drawn to existing nodes only): "
            "measured vs O(log^2 n) of the occupied count"
        ),
        columns=["presence_p", "occupied_nodes", "measured_hops", "bound_shape_log2_sq"],
    )
    binomial_space = sizes[-1]
    for index, presence in enumerate([1.0, 0.75, 0.5, 0.25]):
        builder = RandomGraphBuilder(
            space=RingMetric(binomial_space),
            distribution=InversePowerLawDistribution(binomial_space),
            links_per_node=1,
            presence_probability=presence,
            seed=seed + 150 + index,
        )
        build = builder.build()
        hops, _ = measure_mean_hops(build.graph, searches, seed + 160 + index, recovery=recovery, engine=engine)
        occupied = len(build.present_labels)
        binomial.add_row(
            presence, occupied, hops, bounds.upper_bound_single_link(max(2, occupied))
        )

    return Table1Result(
        single_link=single,
        polylog_links=polylog,
        deterministic=deterministic,
        link_failures_random=link_failures_random,
        link_failures_deterministic=link_failures_det,
        node_failures=node_failures,
        binomial_nodes=binomial,
        parameters={
            "sizes": sizes,
            "link_counts": link_counts,
            "bases": bases,
            "probabilities": probabilities,
            "searches": searches,
            "seed": seed,
            "recovery": recovery.value,
            "engine": engine,
            "engine_used": select_engine(engine, recovery),
        },
    )

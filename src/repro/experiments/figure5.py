"""Figure 5: link-length distribution of the construction heuristic.

The paper builds ten networks of 2^14 nodes with 14 links each using the
Section-5 heuristic, averages the empirical distribution of long-distance
link lengths, and compares it to the ideal inverse power-law distribution
with exponent 1.  Figure 5(a) overlays the two distributions (log-log);
Figure 5(b) plots the absolute error, whose largest magnitude is roughly
0.022 at length 2.

``run_figure5`` reproduces both panels as numeric series.  The default
parameters are scaled down (2^11 nodes, 5 networks) so the experiment runs in
seconds; pass ``nodes=1 << 14, links_per_node=14, networks=10`` for the
paper-scale run.

Unlike the routing experiments (figure6/figure7/table1), Figure 5 measures
the *construction* heuristic only — no queries are routed — so it has no
``engine`` switch; the :mod:`repro.fastpath` engine accelerates routing
evaluation, not incremental construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import total_variation_distance
from repro.core.construction import (
    InverseDistanceReplacement,
    LinkReplacementPolicy,
    build_heuristic_network,
)
from repro.core.distributions import InversePowerLawDistribution
from repro.experiments.runner import ExperimentTable

__all__ = ["Figure5Result", "run_figure5", "empirical_link_distribution"]


@dataclass
class Figure5Result:
    """Numeric reproduction of Figure 5.

    Attributes
    ----------
    lengths:
        Link lengths (1 .. n/2) with non-zero ideal probability.
    derived:
        Average empirical probability of each length across the constructed
        networks (Figure 5a, DERIVED curve).
    ideal:
        Ideal inverse power-law probability of each length (Figure 5a, IDEAL).
    absolute_error:
        ``derived − ideal`` per length (Figure 5b).
    max_absolute_error:
        The largest magnitude of the absolute error.
    total_variation:
        Total variation distance between the derived and ideal distributions.
    parameters:
        The experiment parameters used.
    """

    lengths: np.ndarray
    derived: np.ndarray
    ideal: np.ndarray
    absolute_error: np.ndarray
    max_absolute_error: float
    total_variation: float
    parameters: dict

    def to_table(self, max_rows: int = 20) -> ExperimentTable:
        """Return the head of the distribution as a printable table."""
        table = ExperimentTable(
            title="Figure 5: heuristic link-length distribution vs ideal 1/d",
            columns=["length", "derived", "ideal", "absolute_error"],
            notes=(
                f"max |error| = {self.max_absolute_error:.4f}, "
                f"total variation distance = {self.total_variation:.4f}"
            ),
        )
        for index in range(min(max_rows, len(self.lengths))):
            table.add_row(
                int(self.lengths[index]),
                float(self.derived[index]),
                float(self.ideal[index]),
                float(self.absolute_error[index]),
            )
        return table


def empirical_link_distribution(lengths: list[int], n: int) -> np.ndarray:
    """Return the empirical probability of each ring distance ``1 .. n // 2``."""
    max_distance = n // 2
    histogram = np.zeros(max_distance, dtype=float)
    for length in lengths:
        if 1 <= length <= max_distance:
            histogram[length - 1] += 1
    total = histogram.sum()
    if total > 0:
        histogram /= total
    return histogram


def run_figure5(
    nodes: int = 1 << 11,
    links_per_node: int | None = None,
    networks: int = 5,
    replacement_policy: LinkReplacementPolicy | None = None,
    seed: int = 0,
) -> Figure5Result:
    """Reproduce Figure 5(a)/(b).

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"figure5"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.

    Parameters
    ----------
    nodes:
        Number of nodes (the paper uses 2^14).
    links_per_node:
        Long links per node (the paper uses 14; default ``ceil(lg nodes)``).
    networks:
        Number of independently constructed networks to average (paper: 10).
    replacement_policy:
        Link-replacement rule (default: the paper's inverse-distance rule).
    seed:
        Base seed; network ``i`` uses ``seed + i``.
    """
    from repro.scenarios import run
    from repro.scenarios.library import figure5_spec, policy_name

    name = policy_name(replacement_policy)
    if name is None:
        # A custom policy object cannot be expressed as declarative spec
        # data; run the implementation directly.
        return _run_figure5_impl(
            nodes=nodes,
            links_per_node=links_per_node,
            networks=networks,
            replacement_policy=replacement_policy,
            seed=seed,
        )
    spec = figure5_spec(
        nodes=nodes,
        links_per_node=links_per_node,
        networks=networks,
        replacement_policy=name,
        seed=seed,
    )
    return run(spec).raw


def _run_figure5_impl(
    nodes: int = 1 << 11,
    links_per_node: int | None = None,
    networks: int = 5,
    replacement_policy: LinkReplacementPolicy | None = None,
    seed: int = 0,
) -> Figure5Result:
    """The Figure-5 measurement (executed via the ``"figure5"`` scenario)."""
    if links_per_node is None:
        links_per_node = max(1, int(np.ceil(np.log2(nodes))))
    if replacement_policy is None:
        replacement_policy = InverseDistanceReplacement()

    max_distance = nodes // 2
    accumulated = np.zeros(max_distance, dtype=float)
    for network_index in range(networks):
        construction = build_heuristic_network(
            n=nodes,
            links_per_node=links_per_node,
            replacement_policy=replacement_policy,
            seed=seed + network_index,
        )
        lengths = construction.graph.long_link_lengths()
        accumulated += empirical_link_distribution(lengths, nodes)
    derived = accumulated / networks

    ideal_distribution = InversePowerLawDistribution(nodes, exponent=1.0)
    ideal = np.array(
        [ideal_distribution.link_probability(distance) for distance in range(1, max_distance + 1)]
    )

    error = derived - ideal
    return Figure5Result(
        lengths=np.arange(1, max_distance + 1),
        derived=derived,
        ideal=ideal,
        absolute_error=error,
        max_absolute_error=float(np.max(np.abs(error))),
        total_variation=total_variation_distance(derived, ideal),
        parameters={
            "nodes": nodes,
            "links_per_node": links_per_node,
            "networks": networks,
            "replacement_policy": type(replacement_policy).__name__,
            "seed": seed,
        },
    )

"""Command-line entry point for the experiment harness.

The CLI is collapsed onto the scenario registry: any registered scenario runs
through three generic subcommands::

    repro list                                         # what can I run?
    repro run figure7 --set topology.nodes=4096 --engine fastpath
    repro sweep figure7 --grid engine=object,fastpath \\
                        --grid topology.nodes=1024,4096 --jobs 4 \\
                        --output sweep.json

(``repro`` is the installed console script; ``python -m
repro.experiments.cli`` works from a checkout.)  ``--set key=value`` overrides
any spec field by dotted path, ``--grid key=v1,v2`` adds a sweep axis, and
``--format text|json|csv`` picks the output encoding.  Sweeps derive a
deterministic per-cell seed from ``--seed``, so ``--jobs N`` parallelism
produces byte-identical JSON to a serial run.

The historical per-figure subcommands (``figure5`` ... ``baselines``,
``route-bench``, ``all``) are kept as aliases; they run through the same
scenario layer::

    python -m repro.experiments.cli figure6 --nodes 8192 --searches 500
    python -m repro.experiments.cli figure7 --engine fastpath
    python -m repro.experiments.cli table1 --format json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.core.routing import RecoveryStrategy, RoutingMode
from repro.experiments.ablations import (
    run_backtrack_depth_ablation,
    run_byzantine_experiment,
    run_exponent_ablation,
    run_replacement_ablation,
)
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.runner import ExperimentTable, tables_to_csv
from repro.experiments.table1 import run_table1
from repro.overlay import PROTOCOLS

__all__ = ["build_parser", "main"]

FORMATS = ("text", "json", "csv")


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Aspnes, Diamadi & Shah (PODC 2002).",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_format_option(subparser, choices: Sequence[str] = FORMATS) -> None:
        subparser.add_argument(
            "--format",
            choices=tuple(choices),
            default="text",
            help="output encoding (default: aligned text tables)",
        )

    def add_telemetry_options(subparser) -> None:
        subparser.add_argument(
            "--telemetry",
            action="store_true",
            help="collect instrumentation and print the phase-tree summary",
        )
        subparser.add_argument(
            "--telemetry-json",
            default=None,
            metavar="PATH",
            help="collect instrumentation and dump the raw telemetry tree here",
        )

    # -- generic scenario commands ------------------------------------------

    list_command = subparsers.add_parser(
        "list", help="list every registered scenario with its description"
    )
    add_format_option(list_command, ("text", "json"))

    run_command = subparsers.add_parser(
        "run", help="run any registered scenario from its declarative spec"
    )
    run_command.add_argument("scenario", help="registered scenario name (see `repro list`)")
    run_command.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a spec field by dotted path, e.g. topology.nodes=4096, "
        "routing.recovery=terminate, extras.sizes=256,512",
    )
    run_command.add_argument(
        "--engine",
        choices=("object", "fastpath"),
        default=None,
        help="shorthand for --set engine=...",
    )
    run_command.add_argument(
        "--output", default=None, metavar="PATH", help="also write the RunResult JSON here"
    )
    add_telemetry_options(run_command)
    add_format_option(run_command)

    sweep_command = subparsers.add_parser(
        "sweep", help="expand a parameter grid over a scenario and run every cell"
    )
    sweep_command.add_argument("scenario", help="registered scenario name (see `repro list`)")
    sweep_command.add_argument(
        "--grid",
        dest="grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="one sweep axis; repeat for a cartesian product",
    )
    sweep_command.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="fixed override applied to every cell",
    )
    sweep_command.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial; results identical)"
    )
    sweep_command.add_argument(
        "--output", default=None, metavar="PATH", help="also write the sweep JSON here"
    )
    sweep_command.add_argument(
        "--resume", default=None, metavar="PATH",
        help="reuse matching cells from a previously saved sweep JSON",
    )
    sweep_command.add_argument(
        "--include-timing", action="store_true",
        help="keep per-cell wall-clock inline in the cell JSON (breaks "
        "byte-identical diffs; the default already preserves timings in a "
        "separate side table)",
    )
    add_telemetry_options(sweep_command)
    add_format_option(sweep_command, ("text", "json"))

    bench_diff = subparsers.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json artifacts metric-by-metric and flag regressions "
        "(exit 0: within threshold; exit 1: a directional metric regressed past --fail-over)",
    )
    bench_diff.add_argument("old", metavar="OLD.json", help="baseline BENCH artifact")
    bench_diff.add_argument("new", metavar="NEW.json", help="candidate BENCH artifact")
    bench_diff.add_argument(
        "--fail-over",
        type=float,
        default=50.0,
        metavar="PCT",
        help="exit non-zero when any directional metric regresses by more "
        "than PCT percent (default: 50)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant linter over src/tests/benchmarks "
        "(exit 0: clean; exit 1: findings; exit 2: usage error)",
    )
    from repro.devtools.cli import add_lint_arguments

    add_lint_arguments(lint)

    analyze = subparsers.add_parser(
        "analyze",
        help="run the NumPy dtype/shape dataflow analyzer over the fastpath, "
        "faults and overlay packages (exit 0: clean; exit 1: findings; "
        "exit 2: usage error)",
    )
    from repro.devtools.analyze.cli import add_analyze_arguments

    add_analyze_arguments(analyze)

    # -- legacy per-figure aliases ------------------------------------------

    figure5 = subparsers.add_parser("figure5", help="link-length distribution of the §5 heuristic")
    figure5.add_argument("--nodes", type=int, default=1 << 12)
    figure5.add_argument("--links", type=int, default=None)
    figure5.add_argument("--networks", type=int, default=3)
    add_format_option(figure5)

    def add_engine_option(subparser) -> None:
        subparser.add_argument(
            "--engine",
            choices=("object", "fastpath"),
            default="object",
            help="routing engine: scalar object router or batched fastpath "
            "(covers all three recovery strategies with identical results; "
            "ideal networks additionally build straight into CSR snapshots)",
        )

    figure6 = subparsers.add_parser("figure6", help="failed searches / delivery time vs node failures")
    figure6.add_argument("--nodes", type=int, default=1 << 12)
    figure6.add_argument("--searches", type=int, default=250)
    add_engine_option(figure6)
    add_format_option(figure6)

    figure7 = subparsers.add_parser("figure7", help="constructed vs ideal network under failures")
    figure7.add_argument("--nodes", type=int, default=1 << 11)
    figure7.add_argument("--searches", type=int, default=200)
    figure7.add_argument("--iterations", type=int, default=2)
    add_engine_option(figure7)
    add_format_option(figure7)

    table1 = subparsers.add_parser("table1", help="measured delivery time vs Table-1 bound shapes")
    table1.add_argument("--searches", type=int, default=150)
    table1.add_argument(
        "--recovery",
        choices=[strategy.value for strategy in RecoveryStrategy],
        default=RecoveryStrategy.BACKTRACK.value,
        help="recovery strategy for every Table-1 measurement",
    )
    add_engine_option(table1)
    add_format_option(table1)

    bench = subparsers.add_parser(
        "route-bench",
        help="route N random queries through a chosen engine; print throughput",
    )
    bench.add_argument("--nodes", type=int, default=10_000)
    bench.add_argument("--queries", type=int, default=10_000)
    bench.add_argument("--links", type=int, default=None)
    bench.add_argument(
        "--mode",
        choices=[mode.value for mode in RoutingMode],
        default=RoutingMode.TWO_SIDED.value,
        help="greedy routing mode",
    )
    bench.add_argument(
        "--fail",
        type=float,
        default=0.0,
        help="fraction of nodes to fail before routing",
    )
    bench.add_argument(
        "--recovery",
        choices=[strategy.value for strategy in RecoveryStrategy],
        default=RecoveryStrategy.TERMINATE.value,
        help="recovery strategy to benchmark (all three run on either engine)",
    )
    add_engine_option(bench)
    add_format_option(bench)

    ablations = subparsers.add_parser(
        "ablations", help="replacement-policy, backtrack-depth, exponent, Byzantine ablations"
    )
    add_format_option(ablations)

    baselines = subparsers.add_parser("baselines", help="Chord / Kleinberg / CAN / Plaxton comparison")
    baselines.add_argument("--bits", type=int, default=10)
    baselines.add_argument("--searches", type=int, default=200)
    baselines.add_argument(
        "--protocol",
        choices=("all",) + PROTOCOLS,
        default="all",
        help="restrict the comparison to one overlay protocol family",
    )
    add_engine_option(baselines)
    add_format_option(baselines)

    subparsers.add_parser("all", help="run every experiment at its default scale")
    return parser


# ---------------------------------------------------------------------------
# Output encoding
# ---------------------------------------------------------------------------


def _emit_tables(tables: Sequence[ExperimentTable], output_format: str = "text") -> None:
    """Print result tables in the requested encoding."""
    if output_format == "json":
        print(json.dumps([table.to_json_dict() for table in tables], indent=2, sort_keys=True))
    elif output_format == "csv":
        print(tables_to_csv(tables), end="")
    else:
        print("\n\n".join(table.to_text() for table in tables))


def _parse_overrides(tokens: Sequence[str]) -> dict[str, str]:
    from repro.scenarios import parse_assignment

    overrides: dict[str, str] = {}
    for token in tokens:
        key, value = parse_assignment(token)
        overrides[key] = value
    return overrides


# ---------------------------------------------------------------------------
# Generic scenario commands
# ---------------------------------------------------------------------------


def _run_list(args) -> None:
    from repro.scenarios import available_scenarios

    definitions = available_scenarios()
    if getattr(args, "format", "text") == "json":
        print(json.dumps(
            [{"name": d.name, "description": d.description} for d in definitions],
            indent=2,
            sort_keys=True,
        ))
        return
    width = max(len(d.name) for d in definitions)
    print("Registered scenarios (run with `repro run <name>`):")
    for definition in definitions:
        print(f"  {definition.name.ljust(width)}  {definition.description}")


def _run_scenario(args) -> None:
    from repro.scenarios import get_scenario, run
    from repro.telemetry import render_telemetry

    overrides = _parse_overrides(args.overrides)
    if args.engine is not None and "engine" not in overrides:
        overrides["engine"] = args.engine
    definition = get_scenario(args.scenario)
    spec = definition.make_spec(overrides=overrides, seed=args.seed)
    collect = bool(args.telemetry or args.telemetry_json)
    result = run(spec, collect_telemetry=collect)
    if args.output:
        Path(args.output).write_text(result.to_json() + "\n", encoding="utf-8")
    if args.format == "json":
        print(result.to_json(include_telemetry=bool(args.telemetry)))
    elif args.format == "csv":
        print(result.to_csv(), end="")
    else:
        print(result.to_text())
    if args.telemetry_json and result.telemetry is not None:
        Path(args.telemetry_json).write_text(
            json.dumps(result.telemetry, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.telemetry and args.format != "json" and result.telemetry is not None:
        print()
        print(render_telemetry(result.telemetry))


def _run_sweep(args) -> None:
    from repro import telemetry
    from repro.scenarios import Sweep, SweepResult

    grid: dict[str, list[str]] = {}
    for token in args.grid:
        key, values = next(iter(_parse_overrides([token]).items()))
        grid[key] = values.split(",")
    sweep = Sweep(
        args.scenario,
        grid=grid,
        base=_parse_overrides(args.overrides),
        master_seed=args.seed,
    )
    resume = SweepResult.load(args.resume) if args.resume else None
    collect = bool(args.telemetry or args.telemetry_json)
    sweep_telemetry = None
    if collect:
        with telemetry.session() as tel:
            result = sweep.run(jobs=args.jobs, resume=resume, collect_telemetry=True)
        sweep_telemetry = tel.to_dict()
    else:
        result = sweep.run(jobs=args.jobs, resume=resume)
    if args.output:
        result.save(args.output, include_timing=args.include_timing)
    if args.format == "json":
        print(result.to_json(include_timing=args.include_timing))
    else:
        print(result.to_text())
    if args.telemetry_json and sweep_telemetry is not None:
        payload = {
            "sweep": sweep_telemetry,
            "cells": {
                cell.key: cell.result.telemetry
                for cell in result.cells
                if cell.result.telemetry is not None
            },
        }
        Path(args.telemetry_json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if args.telemetry and sweep_telemetry is not None:
        print()
        print(telemetry.render_telemetry(sweep_telemetry))


def _run_bench_diff(args) -> int:
    from repro.telemetry import diff_bench, load_bench, render_bench_diff

    old = load_bench(args.old)
    new = load_bench(args.new)
    old_schema = old.get("bench_schema")
    new_schema = new.get("bench_schema")
    if old_schema != new_schema:
        print(
            f"bench-diff: schema note: old={old_schema or '<unstamped>'} "
            f"new={new_schema or '<unstamped>'}",
            file=sys.stderr,
        )
    diffs = diff_bench(old, new)
    print(render_bench_diff(diffs, fail_over=args.fail_over))
    failing = [
        diff
        for diff in diffs
        if diff.regression_pct is not None and diff.regression_pct > args.fail_over
    ]
    if failing:
        print(
            f"bench-diff: {len(failing)} metric(s) regressed more than "
            f"{args.fail_over:.1f}%: "
            + ", ".join(f"{d.name} ({d.regression_pct:+.1f}%)" for d in failing),
            file=sys.stderr,
        )
        return 1
    return 0


# ---------------------------------------------------------------------------
# Legacy per-figure aliases
# ---------------------------------------------------------------------------


def _run_figure5(args) -> None:
    result = run_figure5(
        nodes=args.nodes, links_per_node=args.links, networks=args.networks, seed=args.seed
    )
    _emit_tables([result.to_table(max_rows=20)], args.format)


def _run_figure6(args) -> None:
    result = run_figure6(
        nodes=args.nodes,
        searches_per_point=args.searches,
        seed=args.seed,
        engine=getattr(args, "engine", "object"),
    )
    _emit_tables(list(result.to_tables()), args.format)


def _run_figure7(args) -> None:
    result = run_figure7(
        nodes=args.nodes,
        searches_per_point=args.searches,
        iterations=args.iterations,
        seed=args.seed,
        engine=getattr(args, "engine", "object"),
    )
    _emit_tables([result.to_table()], args.format)


def _run_table1(args) -> None:
    result = run_table1(
        searches=args.searches,
        seed=args.seed,
        recovery=RecoveryStrategy(getattr(args, "recovery", "backtrack")),
        engine=getattr(args, "engine", "object"),
    )
    _emit_tables(result.tables(), args.format)


def _run_route_bench(args) -> None:
    """Route N random queries through one engine and report throughput."""
    import numpy as np

    from repro.core.builder import build_ideal_network
    from repro.core.failures import NodeFailureModel
    from repro.core.routing import GreedyRouter
    from repro.experiments.runner import route_sample
    from repro.fastpath import BatchGreedyRouter
    from repro.simulation.workload import LookupWorkload

    mode = RoutingMode(args.mode)
    recovery = RecoveryStrategy(args.recovery)
    if args.engine == "fastpath":
        # Direct-to-CSR build: no object graph at all on the fastpath side.
        from repro.fastpath import build_snapshot, sample_node_failures

        started = time.perf_counter()
        snapshot = build_snapshot(args.nodes, links_per_node=args.links, seed=args.seed)
        if args.fail > 0.0:
            failed = sample_node_failures(snapshot, args.fail, seed=args.seed + 1)
            snapshot = snapshot.with_alive(snapshot.alive & ~failed)
        built = time.perf_counter()
        live = snapshot.labels[snapshot.alive].tolist()
        if len(live) < 2:
            raise SystemExit(
                f"route-bench: --fail {args.fail} leaves {len(live)} live node(s); "
                "need at least two to generate queries — lower --fail or raise --nodes"
            )
        pairs = LookupWorkload(seed=args.seed + 2).pairs(live, args.queries)
        router = BatchGreedyRouter(
            snapshot=snapshot, mode=mode, recovery=recovery, seed=args.seed
        )
        started_route = time.perf_counter()
        result = router.route_pairs(pairs)
        finished = time.perf_counter()
        setup_seconds = built - started
        route_seconds = finished - started_route
        successes = int(result.success.sum())
        hops = result.mean_hops()
    else:
        build = build_ideal_network(args.nodes, links_per_node=args.links, seed=args.seed)
        graph = build.graph
        if args.fail > 0.0:
            NodeFailureModel(args.fail, seed=args.seed + 1).apply(graph)
        live = graph.labels(only_alive=True)
        if len(live) < 2:
            raise SystemExit(
                f"route-bench: --fail {args.fail} leaves {len(live)} live node(s); "
                "need at least two to generate queries — lower --fail or raise --nodes"
            )
        pairs = LookupWorkload(seed=args.seed + 2).pairs(live, args.queries)
        router = GreedyRouter(
            graph=graph, mode=mode, recovery=recovery, seed=args.seed
        )
        started = time.perf_counter()
        failures, hop_counts = route_sample(graph, router, pairs)
        finished = time.perf_counter()
        successes = len(pairs) - failures
        setup_seconds = 0.0
        route_seconds = finished - started
        hops = float(np.mean(hop_counts)) if hop_counts else 0.0

    table = ExperimentTable(
        title=f"route-bench: {args.engine} engine, {recovery.value} recovery, {mode.value} mode",
        columns=[
            "nodes", "queries", "failed_nodes", "setup_s", "route_s",
            "queries_per_sec", "success_rate", "mean_hops",
        ],
        notes="setup_s is the direct-to-CSR snapshot build (fastpath only); "
        "queries_per_sec counts routing time alone.",
    )
    table.add_row(
        args.nodes,
        len(pairs),
        args.fail,
        setup_seconds,
        route_seconds,
        len(pairs) / route_seconds if route_seconds > 0 else float("inf"),
        successes / len(pairs),
        hops,
    )
    _emit_tables([table], args.format)


def _run_ablations(args) -> None:
    tables = [
        run_replacement_ablation(seed=args.seed),
        run_backtrack_depth_ablation(seed=args.seed),
        run_exponent_ablation(seed=args.seed),
        run_byzantine_experiment(seed=args.seed),
    ]
    _emit_tables(tables, args.format)


def _run_baselines(args) -> None:
    _emit_tables(
        [
            run_baseline_comparison(
                bits=args.bits,
                searches=args.searches,
                seed=args.seed,
                engine=getattr(args, "engine", "object"),
                protocol="" if getattr(args, "protocol", "all") == "all" else args.protocol,
            )
        ],
        args.format,
    )


def _run_lint(args) -> int:
    from repro.devtools.cli import run_lint

    return run_lint(args)


def _run_analyze(args) -> int:
    from repro.devtools.analyze.cli import run_analyze

    return run_analyze(args)


_DISPATCH = {
    "list": _run_list,
    "run": _run_scenario,
    "sweep": _run_sweep,
    "bench-diff": _run_bench_diff,
    "lint": _run_lint,
    "analyze": _run_analyze,
    "figure5": _run_figure5,
    "figure6": _run_figure6,
    "figure7": _run_figure7,
    "table1": _run_table1,
    "ablations": _run_ablations,
    "baselines": _run_baselines,
    "route-bench": _run_route_bench,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "all":
        defaults = build_parser()
        for command in ("figure5", "figure6", "figure7", "table1", "ablations", "baselines"):
            print("=" * 78)
            print(f"== {command}")
            print("=" * 78)
            # --seed is a top-level option the subparsers do not re-declare;
            # parse the bare command and carry the seed over by hand.
            sub_args = defaults.parse_args([command])
            sub_args.seed = args.seed
            main_dispatch(sub_args)
            print()
        return 0
    return main_dispatch(args) or 0


def main_dispatch(args) -> int | None:
    """Dispatch a parsed namespace to its runner (used by the ``all`` command).

    Returns the handler's exit code; most handlers return ``None`` (success).
    ``bench-diff`` returns 1 when a metric regresses past ``--fail-over``;
    ``lint`` and ``analyze`` return 1 on findings and 2 on usage errors.
    """
    return _DISPATCH[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point for the experiment harness.

Run any of the paper's experiments from a shell::

    python -m repro.experiments.cli figure5 --nodes 4096 --networks 5
    python -m repro.experiments.cli figure6 --nodes 8192 --searches 500
    python -m repro.experiments.cli figure7
    python -m repro.experiments.cli table1
    python -m repro.experiments.cli ablations
    python -m repro.experiments.cli baselines --bits 12
    python -m repro.experiments.cli all

Each command prints the regenerated series as aligned text tables (the same
output the benchmarks produce) so results can be diffed or piped into other
tools.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.ablations import (
    run_backtrack_depth_ablation,
    run_byzantine_experiment,
    run_exponent_ablation,
    run_replacement_ablation,
)
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.table1 import run_table1

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Aspnes, Diamadi & Shah (PODC 2002).",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure5 = subparsers.add_parser("figure5", help="link-length distribution of the §5 heuristic")
    figure5.add_argument("--nodes", type=int, default=1 << 12)
    figure5.add_argument("--links", type=int, default=None)
    figure5.add_argument("--networks", type=int, default=3)

    figure6 = subparsers.add_parser("figure6", help="failed searches / delivery time vs node failures")
    figure6.add_argument("--nodes", type=int, default=1 << 12)
    figure6.add_argument("--searches", type=int, default=250)

    figure7 = subparsers.add_parser("figure7", help="constructed vs ideal network under failures")
    figure7.add_argument("--nodes", type=int, default=1 << 11)
    figure7.add_argument("--searches", type=int, default=200)
    figure7.add_argument("--iterations", type=int, default=2)

    table1 = subparsers.add_parser("table1", help="measured delivery time vs Table-1 bound shapes")
    table1.add_argument("--searches", type=int, default=150)

    subparsers.add_parser("ablations", help="replacement-policy, backtrack-depth, exponent, Byzantine ablations")

    baselines = subparsers.add_parser("baselines", help="Chord / Kleinberg / CAN / Plaxton comparison")
    baselines.add_argument("--bits", type=int, default=10)
    baselines.add_argument("--searches", type=int, default=200)

    subparsers.add_parser("all", help="run every experiment at its default scale")
    return parser


def _run_figure5(args) -> None:
    result = run_figure5(
        nodes=args.nodes, links_per_node=args.links, networks=args.networks, seed=args.seed
    )
    print(result.to_table(max_rows=20).to_text())


def _run_figure6(args) -> None:
    result = run_figure6(nodes=args.nodes, searches_per_point=args.searches, seed=args.seed)
    table_a, table_b = result.to_tables()
    print(table_a.to_text())
    print()
    print(table_b.to_text())


def _run_figure7(args) -> None:
    result = run_figure7(
        nodes=args.nodes,
        searches_per_point=args.searches,
        iterations=args.iterations,
        seed=args.seed,
    )
    print(result.to_table().to_text())


def _run_table1(args) -> None:
    result = run_table1(searches=args.searches, seed=args.seed)
    print(result.to_text())


def _run_ablations(args) -> None:
    print(run_replacement_ablation(seed=args.seed).to_text())
    print()
    print(run_backtrack_depth_ablation(seed=args.seed).to_text())
    print()
    print(run_exponent_ablation(seed=args.seed).to_text())
    print()
    print(run_byzantine_experiment(seed=args.seed).to_text())


def _run_baselines(args) -> None:
    print(run_baseline_comparison(bits=args.bits, searches=args.searches, seed=args.seed).to_text())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "figure5":
        _run_figure5(args)
    elif args.command == "figure6":
        _run_figure6(args)
    elif args.command == "figure7":
        _run_figure7(args)
    elif args.command == "table1":
        _run_table1(args)
    elif args.command == "ablations":
        _run_ablations(args)
    elif args.command == "baselines":
        _run_baselines(args)
    elif args.command == "all":
        defaults = build_parser()
        for command in ("figure5", "figure6", "figure7", "table1", "ablations", "baselines"):
            print("=" * 78)
            print(f"== {command}")
            print("=" * 78)
            sub_args = defaults.parse_args([command, "--seed", str(args.seed)]
                                           if command not in ("ablations", "all")
                                           else [command])
            sub_args.seed = args.seed
            main_dispatch(sub_args)
            print()
    return 0


def main_dispatch(args) -> None:
    """Dispatch a parsed namespace to its runner (used by the ``all`` command)."""
    dispatch = {
        "figure5": _run_figure5,
        "figure6": _run_figure6,
        "figure7": _run_figure7,
        "table1": _run_table1,
        "ablations": _run_ablations,
        "baselines": _run_baselines,
    }
    dispatch[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

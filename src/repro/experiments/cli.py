"""Command-line entry point for the experiment harness.

Run any of the paper's experiments from a shell::

    python -m repro.experiments.cli figure5 --nodes 4096 --networks 5
    python -m repro.experiments.cli figure6 --nodes 8192 --searches 500
    python -m repro.experiments.cli figure7 --engine fastpath
    python -m repro.experiments.cli table1
    python -m repro.experiments.cli ablations
    python -m repro.experiments.cli baselines --bits 12
    python -m repro.experiments.cli route-bench --nodes 10000 --queries 10000
    python -m repro.experiments.cli all

Each command prints the regenerated series as aligned text tables (the same
output the benchmarks produce) so results can be diffed or piped into other
tools.  The routing experiments accept ``--engine {object,fastpath}`` to pick
between the scalar per-query router and the batched array engine
(:mod:`repro.fastpath`); ``route-bench`` measures the raw throughput gap
between the two.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments.ablations import (
    run_backtrack_depth_ablation,
    run_byzantine_experiment,
    run_exponent_ablation,
    run_replacement_ablation,
)
from repro.core.routing import RecoveryStrategy, RoutingMode
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.table1 import run_table1

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Aspnes, Diamadi & Shah (PODC 2002).",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure5 = subparsers.add_parser("figure5", help="link-length distribution of the §5 heuristic")
    figure5.add_argument("--nodes", type=int, default=1 << 12)
    figure5.add_argument("--links", type=int, default=None)
    figure5.add_argument("--networks", type=int, default=3)

    def add_engine_option(subparser) -> None:
        subparser.add_argument(
            "--engine",
            choices=("object", "fastpath"),
            default="object",
            help="routing engine: scalar object router or batched fastpath "
            "(fastpath applies to terminate-recovery measurements; other "
            "strategies fall back to the object engine)",
        )

    figure6 = subparsers.add_parser("figure6", help="failed searches / delivery time vs node failures")
    figure6.add_argument("--nodes", type=int, default=1 << 12)
    figure6.add_argument("--searches", type=int, default=250)
    add_engine_option(figure6)

    figure7 = subparsers.add_parser("figure7", help="constructed vs ideal network under failures")
    figure7.add_argument("--nodes", type=int, default=1 << 11)
    figure7.add_argument("--searches", type=int, default=200)
    figure7.add_argument("--iterations", type=int, default=2)
    add_engine_option(figure7)

    table1 = subparsers.add_parser("table1", help="measured delivery time vs Table-1 bound shapes")
    table1.add_argument("--searches", type=int, default=150)
    table1.add_argument(
        "--recovery",
        choices=[strategy.value for strategy in RecoveryStrategy],
        default=RecoveryStrategy.BACKTRACK.value,
        help="recovery strategy for every Table-1 measurement",
    )
    add_engine_option(table1)

    bench = subparsers.add_parser(
        "route-bench",
        help="route N random queries through a chosen engine; print throughput",
    )
    bench.add_argument("--nodes", type=int, default=10_000)
    bench.add_argument("--queries", type=int, default=10_000)
    bench.add_argument("--links", type=int, default=None)
    bench.add_argument(
        "--mode",
        choices=[mode.value for mode in RoutingMode],
        default=RoutingMode.TWO_SIDED.value,
        help="greedy routing mode",
    )
    bench.add_argument(
        "--fail",
        type=float,
        default=0.0,
        help="fraction of nodes to fail before routing",
    )
    add_engine_option(bench)

    subparsers.add_parser("ablations", help="replacement-policy, backtrack-depth, exponent, Byzantine ablations")

    baselines = subparsers.add_parser("baselines", help="Chord / Kleinberg / CAN / Plaxton comparison")
    baselines.add_argument("--bits", type=int, default=10)
    baselines.add_argument("--searches", type=int, default=200)

    subparsers.add_parser("all", help="run every experiment at its default scale")
    return parser


def _run_figure5(args) -> None:
    result = run_figure5(
        nodes=args.nodes, links_per_node=args.links, networks=args.networks, seed=args.seed
    )
    print(result.to_table(max_rows=20).to_text())


def _run_figure6(args) -> None:
    result = run_figure6(
        nodes=args.nodes,
        searches_per_point=args.searches,
        seed=args.seed,
        engine=getattr(args, "engine", "object"),
    )
    table_a, table_b = result.to_tables()
    print(table_a.to_text())
    print()
    print(table_b.to_text())


def _run_figure7(args) -> None:
    result = run_figure7(
        nodes=args.nodes,
        searches_per_point=args.searches,
        iterations=args.iterations,
        seed=args.seed,
        engine=getattr(args, "engine", "object"),
    )
    print(result.to_table().to_text())


def _run_table1(args) -> None:
    result = run_table1(
        searches=args.searches,
        seed=args.seed,
        recovery=RecoveryStrategy(getattr(args, "recovery", "backtrack")),
        engine=getattr(args, "engine", "object"),
    )
    print(result.to_text())


def _run_route_bench(args) -> None:
    """Route N random queries through one engine and report throughput."""
    import numpy as np

    from repro.core.builder import build_ideal_network
    from repro.core.failures import NodeFailureModel
    from repro.core.routing import GreedyRouter
    from repro.experiments.runner import ExperimentTable, route_sample
    from repro.fastpath import BatchGreedyRouter, compile_snapshot
    from repro.simulation.workload import LookupWorkload

    mode = RoutingMode(args.mode)
    build = build_ideal_network(args.nodes, links_per_node=args.links, seed=args.seed)
    graph = build.graph
    if args.fail > 0.0:
        NodeFailureModel(args.fail, seed=args.seed + 1).apply(graph)
    live = graph.labels(only_alive=True)
    if len(live) < 2:
        raise SystemExit(
            f"route-bench: --fail {args.fail} leaves {len(live)} live node(s); "
            "need at least two to generate queries — lower --fail or raise --nodes"
        )
    pairs = LookupWorkload(seed=args.seed + 2).pairs(live, args.queries)

    if args.engine == "fastpath":
        started = time.perf_counter()
        router = BatchGreedyRouter(snapshot=compile_snapshot(graph), mode=mode)
        compiled = time.perf_counter()
        result = router.route_pairs(pairs)
        finished = time.perf_counter()
        setup_seconds = compiled - started
        route_seconds = finished - compiled
        successes = int(result.success.sum())
        hops = result.mean_hops()
    else:
        router = GreedyRouter(
            graph=graph, mode=mode, recovery=RecoveryStrategy.TERMINATE, seed=args.seed
        )
        started = time.perf_counter()
        failures, hop_counts = route_sample(graph, router, pairs)
        finished = time.perf_counter()
        successes = len(pairs) - failures
        setup_seconds = 0.0
        route_seconds = finished - started
        hops = float(np.mean(hop_counts)) if hop_counts else 0.0

    table = ExperimentTable(
        title=f"route-bench: {args.engine} engine, terminate recovery, {mode.value} mode",
        columns=[
            "nodes", "queries", "failed_nodes", "setup_s", "route_s",
            "queries_per_sec", "success_rate", "mean_hops",
        ],
        notes="setup_s is snapshot compilation (fastpath only); "
        "queries_per_sec counts routing time alone.",
    )
    table.add_row(
        args.nodes,
        len(pairs),
        args.fail,
        setup_seconds,
        route_seconds,
        len(pairs) / route_seconds if route_seconds > 0 else float("inf"),
        successes / len(pairs),
        hops,
    )
    print(table.to_text())


def _run_ablations(args) -> None:
    print(run_replacement_ablation(seed=args.seed).to_text())
    print()
    print(run_backtrack_depth_ablation(seed=args.seed).to_text())
    print()
    print(run_exponent_ablation(seed=args.seed).to_text())
    print()
    print(run_byzantine_experiment(seed=args.seed).to_text())


def _run_baselines(args) -> None:
    print(run_baseline_comparison(bits=args.bits, searches=args.searches, seed=args.seed).to_text())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "figure5":
        _run_figure5(args)
    elif args.command == "figure6":
        _run_figure6(args)
    elif args.command == "figure7":
        _run_figure7(args)
    elif args.command == "table1":
        _run_table1(args)
    elif args.command == "ablations":
        _run_ablations(args)
    elif args.command == "baselines":
        _run_baselines(args)
    elif args.command == "route-bench":
        _run_route_bench(args)
    elif args.command == "all":
        defaults = build_parser()
        for command in ("figure5", "figure6", "figure7", "table1", "ablations", "baselines"):
            print("=" * 78)
            print(f"== {command}")
            print("=" * 78)
            # --seed is a top-level option the subparsers do not re-declare;
            # parse the bare command and carry the seed over by hand.
            sub_args = defaults.parse_args([command])
            sub_args.seed = args.seed
            main_dispatch(sub_args)
            print()
    return 0


def main_dispatch(args) -> None:
    """Dispatch a parsed namespace to its runner (used by the ``all`` command)."""
    dispatch = {
        "figure5": _run_figure5,
        "figure6": _run_figure6,
        "figure7": _run_figure7,
        "table1": _run_table1,
        "ablations": _run_ablations,
        "baselines": _run_baselines,
        "route-bench": _run_route_bench,
    }
    dispatch[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

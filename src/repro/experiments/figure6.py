"""Figure 6: routing under node failures with three recovery strategies.

The paper simulates 2^17 nodes with 17 long links each, fails a fraction ``p``
of the nodes (``p`` from 0 to 0.8), and repeatedly routes between random live
source/destination pairs.  Figure 6(a) plots the fraction of failed searches
and Figure 6(b) the average delivery time of successful searches, for the
three recovery strategies: terminate, random re-route, and backtracking.

Expected qualitative shape (what ``run_figure6`` should show):

* the terminate strategy loses roughly (slightly fewer than) ``p`` of its
  searches;
* random re-route is noticeably better at moderate ``p``;
* backtracking is dramatically better (the paper reports under 30% failed
  searches even with 80% of the nodes dead at full scale) at the price of a
  longer average delivery time;
* delivery time grows only moderately with ``p`` for all strategies.

Defaults are scaled down (2^12 nodes, 200 searches per point); pass
``nodes=1 << 17, searches_per_point=100_000`` for a paper-scale run.  With
``engine="fastpath"`` the whole experiment is array-native: the network is
built straight into a CSR snapshot (:func:`repro.fastpath.build_snapshot`),
failures are bulk mask operations, and **all three** strategies route on the
batched engine — no object graph is ever materialised, and the numbers are
identical to ``engine="object"`` at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.builder import build_ideal_network
from repro.core.failures import NodeFailureModel, failure_sweep_levels
from repro.core.routing import RecoveryStrategy
from repro.experiments.runner import ExperimentTable, route_pairs_with_engine
from repro.fastpath import cached_build_snapshot, sample_node_failures
from repro.simulation.workload import LookupWorkload
from repro.util.rng import derive_seed

__all__ = ["Figure6Result", "run_figure6", "DEFAULT_STRATEGIES"]

DEFAULT_STRATEGIES = (
    RecoveryStrategy.TERMINATE,
    RecoveryStrategy.RANDOM_REROUTE,
    RecoveryStrategy.BACKTRACK,
)


@dataclass
class Figure6Result:
    """Numeric reproduction of Figure 6(a) and 6(b).

    ``failed_fraction[strategy]`` and ``mean_hops[strategy]`` are lists
    aligned with ``failure_levels``.
    """

    failure_levels: list[float]
    failed_fraction: dict[str, list[float]] = field(default_factory=dict)
    mean_hops: dict[str, list[float]] = field(default_factory=dict)
    parameters: dict = field(default_factory=dict)

    def to_tables(self) -> tuple[ExperimentTable, ExperimentTable]:
        """Return (Figure 6a, Figure 6b) as printable tables."""
        strategies = list(self.failed_fraction)
        table_a = ExperimentTable(
            title="Figure 6(a): fraction of failed searches vs fraction of failed nodes",
            columns=["failed_nodes"] + strategies,
        )
        table_b = ExperimentTable(
            title="Figure 6(b): mean delivery time (hops) of successful searches",
            columns=["failed_nodes"] + strategies,
        )
        for index, level in enumerate(self.failure_levels):
            table_a.add_row(level, *[self.failed_fraction[s][index] for s in strategies])
            table_b.add_row(level, *[self.mean_hops[s][index] for s in strategies])
        return table_a, table_b


def run_figure6(
    nodes: int = 1 << 12,
    links_per_node: int | None = None,
    failure_levels: list[float] | None = None,
    searches_per_point: int = 200,
    strategies=DEFAULT_STRATEGIES,
    seed: int = 0,
    engine: str = "object",
) -> Figure6Result:
    """Reproduce Figure 6(a)/(b).

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"figure6"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.

    With ``engine="fastpath"`` every strategy — terminate, random re-route,
    and backtracking — runs on the batched array engine over a direct-built
    snapshot, with statistics identical to the object engine at the same
    seed and far higher throughput at scale.
    """
    from repro.scenarios import run
    from repro.scenarios.library import figure6_spec

    spec = figure6_spec(
        nodes=nodes,
        links_per_node=links_per_node,
        failure_levels=failure_levels,
        searches_per_point=searches_per_point,
        strategies=tuple(strategy.value for strategy in strategies),
        seed=seed,
        engine=engine,
    )
    return run(spec).raw


def _run_figure6_impl(
    nodes: int = 1 << 12,
    links_per_node: int | None = None,
    failure_levels: list[float] | None = None,
    searches_per_point: int = 200,
    strategies=DEFAULT_STRATEGIES,
    seed: int = 0,
    engine: str = "object",
) -> Figure6Result:
    """The Figure-6 measurement (executed via the ``"figure6"`` scenario).

    The network is built once per failure level (as in the paper, "in each
    simulation, the network is set up afresh"), the failure model removes the
    requested fraction of nodes, and every strategy routes the same
    source/destination pairs so the comparison is paired.

    Per-level seeds are derived with :func:`repro.util.rng.derive_seed` (the
    same helper the sweep executor uses), namespaced by purpose — build,
    failures, workload, routing — so adding a consumer never perturbs the
    others.

    ``engine="fastpath"`` takes the array-native path end to end: the network
    is sampled straight into a CSR snapshot, node failures are drawn as a bulk
    mask (same victims as :class:`~repro.core.failures.NodeFailureModel` at
    the same seed), and all strategies route batched.  The object layer is
    never touched, yet every number matches ``engine="object"`` exactly.
    """
    if links_per_node is None:
        links_per_node = max(1, int(np.ceil(np.log2(nodes))))
    if failure_levels is None:
        failure_levels = failure_sweep_levels(maximum=0.8, step=0.1)

    result = Figure6Result(
        failure_levels=list(failure_levels),
        failed_fraction={s.value: [] for s in strategies},
        mean_hops={s.value: [] for s in strategies},
        parameters={
            "nodes": nodes,
            "links_per_node": links_per_node,
            "searches_per_point": searches_per_point,
            "seed": seed,
            "engine": engine,
        },
    )
    # Per-strategy, per-level record of the engine that actually routed.
    engines_used: dict[str, list[str]] = {s.value: [] for s in strategies}

    for level_index, level in enumerate(failure_levels):
        build_seed = derive_seed(seed, "figure6", "build", level_index)
        failure_seed = derive_seed(seed, "figure6", "failures", level_index)
        workload_seed = derive_seed(seed, "figure6", "workload", level_index)
        route_seed = derive_seed(seed, "figure6", "route", level_index)

        graph = None
        snapshot = None
        if engine == "fastpath":
            # Array-native topology: one batched build serves every strategy
            # at this failure level, and failures are a derived alive mask.
            # Both draws match the object path exactly (same streams, same
            # candidate order), so the two engines stay paired.
            base = cached_build_snapshot(
                nodes, links_per_node=links_per_node, seed=build_seed
            )
            failed = sample_node_failures(base, level, seed=failure_seed)
            snapshot = base.with_alive(base.alive & ~failed)
            live = snapshot.labels[snapshot.alive].tolist()
        else:
            build = build_ideal_network(
                nodes, links_per_node=links_per_node, seed=build_seed
            )
            graph = build.graph
            failure_model = NodeFailureModel(level, seed=failure_seed)
            failure_model.apply(graph)
            live = graph.labels(only_alive=True)

        workload = LookupWorkload(seed=workload_seed)
        pairs = workload.pairs(live, searches_per_point)

        for strategy in strategies:
            outcome = route_pairs_with_engine(
                graph,
                pairs,
                engine=engine,
                recovery=strategy,
                seed=route_seed,
                snapshot=snapshot,
            )
            engines_used[strategy.value].append(outcome.engine_used)
            result.failed_fraction[strategy.value].append(outcome.failures / len(pairs))
            result.mean_hops[strategy.value].append(
                float(np.mean(outcome.hops)) if outcome.hops else 0.0
            )

    # ``engine_used`` keeps the strategy -> engine summary shape; a strategy
    # routed by different engines at different levels shows up as e.g.
    # "fastpath+object".  The raw per-level record rides along for sweeps
    # that need to audit exactly which cells downgraded.
    result.parameters["engines_used_per_level"] = engines_used
    result.parameters["engine_used"] = {
        strategy: "+".join(sorted(set(levels_used))) if levels_used else engine
        for strategy, levels_used in engines_used.items()
    }
    return result

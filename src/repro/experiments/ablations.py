"""Ablation experiments for the design choices DESIGN.md calls out.

* **Link-replacement strategy** (Section 5): inverse-distance replacement vs
  the "replace the oldest link" alternative vs never replacing.  The paper
  reports the first two are nearly indistinguishable; never replacing should
  visibly distort the link-length distribution for late arrivals.
* **Backtrack depth**: the paper fixes the history to 5 nodes; the ablation
  sweeps the depth and measures the failed-search fraction.
* **Power-law exponent**: exponent 1 is optimal on the line (Kleinberg);
  exponents far from 1 should degrade routing, which is exactly what the
  paper's lower bound predicts for poorly chosen distributions.
* **Byzantine routing** (Section 7 future work): failed-search fraction vs
  fraction of Byzantine nodes, for plain greedy routing and for the redundant
  multi-path router.
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import build_ideal_network
from repro.core.byzantine import ByzantineAwareRouter, RedundantRouter
from repro.core.construction import (
    InverseDistanceReplacement,
    NeverReplace,
    OldestLinkReplacement,
)
from repro.core.failures import ByzantineBehavior, ByzantineModel, NodeFailureModel
from repro.core.routing import GreedyRouter, RecoveryStrategy
from repro.experiments.figure5 import _run_figure5_impl
from repro.experiments.runner import ExperimentTable
from repro.simulation.workload import LookupWorkload

__all__ = [
    "run_replacement_ablation",
    "run_backtrack_depth_ablation",
    "run_exponent_ablation",
    "run_byzantine_experiment",
]


def run_replacement_ablation(
    nodes: int = 1 << 10,
    links_per_node: int | None = None,
    networks: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """Compare link-replacement policies by distribution error (Section 5 ablation).

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"ablation-replacement"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.
    """
    from repro.scenarios import run
    from repro.scenarios.library import ablation_replacement_spec

    spec = ablation_replacement_spec(
        nodes=nodes, links_per_node=links_per_node, networks=networks, seed=seed
    )
    return run(spec).raw


def _run_replacement_ablation_impl(
    nodes: int = 1 << 10,
    links_per_node: int | None = None,
    networks: int = 3,
    seed: int = 0,
) -> ExperimentTable:
    """The replacement-policy ablation (scenario ``"ablation-replacement"``)."""
    policies = {
        "inverse-distance": InverseDistanceReplacement(),
        "oldest-link": OldestLinkReplacement(),
        "never-replace": NeverReplace(),
    }
    table = ExperimentTable(
        title="Ablation: link-replacement policy vs ideal 1/d distribution",
        columns=["policy", "max_absolute_error", "total_variation"],
        notes="The paper reports inverse-distance and oldest-link are nearly indistinguishable.",
    )
    for name, policy in policies.items():
        result = _run_figure5_impl(
            nodes=nodes,
            links_per_node=links_per_node,
            networks=networks,
            replacement_policy=policy,
            seed=seed,
        )
        table.add_row(name, result.max_absolute_error, result.total_variation)
    return table


def run_backtrack_depth_ablation(
    nodes: int = 1 << 12,
    depths: list[int] | None = None,
    failure_level: float = 0.5,
    searches: int = 300,
    seed: int = 0,
) -> ExperimentTable:
    """Sweep the backtracking history depth (the paper fixes it at 5).

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"ablation-backtrack"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.
    """
    from repro.scenarios import run
    from repro.scenarios.library import ablation_backtrack_spec

    spec = ablation_backtrack_spec(
        nodes=nodes,
        depths=depths,
        failure_level=failure_level,
        searches=searches,
        seed=seed,
    )
    return run(spec).raw


def _run_backtrack_depth_ablation_impl(
    nodes: int = 1 << 12,
    depths: list[int] | None = None,
    failure_level: float = 0.5,
    searches: int = 300,
    seed: int = 0,
) -> ExperimentTable:
    """The backtrack-depth ablation (scenario ``"ablation-backtrack"``)."""
    if depths is None:
        depths = [1, 2, 5, 10, 20]
    build = build_ideal_network(nodes, seed=seed)
    graph = build.graph
    model = NodeFailureModel(failure_level, seed=seed + 1)
    model.apply(graph)
    live = graph.labels(only_alive=True)
    pairs = LookupWorkload(seed=seed + 2).pairs(live, searches)

    table = ExperimentTable(
        title=f"Ablation: backtrack depth at {failure_level:.0%} failed nodes (n={nodes})",
        columns=["backtrack_depth", "failed_fraction", "mean_hops_successful"],
    )
    for depth in depths:
        router = GreedyRouter(
            graph=graph,
            recovery=RecoveryStrategy.BACKTRACK,
            backtrack_depth=depth,
            seed=seed + 3,
        )
        failures = 0
        hops: list[int] = []
        for source, target in pairs:
            route = router.route(source, target)
            if route.success:
                hops.append(route.hops)
            else:
                failures += 1
        table.add_row(
            depth, failures / len(pairs), float(np.mean(hops)) if hops else 0.0
        )
    model.repair(graph)
    return table


def run_exponent_ablation(
    nodes: int = 1 << 12,
    exponents: list[float] | None = None,
    searches: int = 300,
    seed: int = 0,
) -> ExperimentTable:
    """Sweep the power-law exponent; exponent 1 should minimise hops on the line.

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"ablation-exponent"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.
    """
    from repro.scenarios import run
    from repro.scenarios.library import ablation_exponent_spec

    spec = ablation_exponent_spec(
        nodes=nodes, exponents=exponents, searches=searches, seed=seed
    )
    return run(spec).raw


def _run_exponent_ablation_impl(
    nodes: int = 1 << 12,
    exponents: list[float] | None = None,
    searches: int = 300,
    seed: int = 0,
) -> ExperimentTable:
    """The exponent ablation (scenario ``"ablation-exponent"``)."""
    if exponents is None:
        exponents = [0.0, 0.5, 1.0, 1.5, 2.0]
    table = ExperimentTable(
        title=f"Ablation: link-distribution exponent (n={nodes}, l=lg n)",
        columns=["exponent", "mean_hops", "failed_fraction"],
        notes="Exponent 1 (harmonic) is the paper's choice and Kleinberg's 1-D optimum.",
    )
    for index, exponent in enumerate(exponents):
        build = build_ideal_network(nodes, seed=seed + index, exponent=exponent)
        live = build.graph.labels(only_alive=True)
        pairs = LookupWorkload(seed=seed + 100 + index).pairs(live, searches)
        router = GreedyRouter(graph=build.graph, seed=seed + 200 + index)
        failures = 0
        hops: list[int] = []
        for source, target in pairs:
            route = router.route(source, target)
            if route.success:
                hops.append(route.hops)
            else:
                failures += 1
        table.add_row(
            exponent, float(np.mean(hops)) if hops else 0.0, failures / len(pairs)
        )
    return table


def run_byzantine_experiment(
    nodes: int = 1 << 11,
    fractions: list[float] | None = None,
    behavior: str = ByzantineBehavior.DROP,
    redundancy: int = 3,
    searches: int = 200,
    seed: int = 0,
) -> ExperimentTable:
    """Failed searches vs fraction of Byzantine nodes, plain vs redundant routing.

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"byzantine"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.
    """
    from repro.scenarios import run
    from repro.scenarios.library import byzantine_spec

    spec = byzantine_spec(
        nodes=nodes,
        fractions=fractions,
        behavior=behavior,
        redundancy=redundancy,
        searches=searches,
        seed=seed,
    )
    return run(spec).raw


def _run_byzantine_experiment_impl(
    nodes: int = 1 << 11,
    fractions: list[float] | None = None,
    behavior: str = ByzantineBehavior.DROP,
    redundancy: int = 3,
    searches: int = 200,
    seed: int = 0,
) -> ExperimentTable:
    """The Byzantine-routing extension (scenario ``"byzantine"``).

    This is the Section-7 future-work extension: plain greedy routing fails
    whenever a compromised node sits on the greedy path, while redundant
    multi-path routing tolerates a substantially larger compromised fraction.
    """
    if fractions is None:
        fractions = [0.0, 0.05, 0.1, 0.2, 0.3]
    build = build_ideal_network(nodes, seed=seed)
    graph = build.graph
    table = ExperimentTable(
        title=f"Extension: Byzantine nodes ({behavior}) — plain vs redundant routing (n={nodes})",
        columns=[
            "byzantine_fraction",
            "plain_failed_fraction",
            "redundant_failed_fraction",
            "plain_mean_hops",
            "redundant_mean_hops",
        ],
    )
    for index, fraction in enumerate(fractions):
        adversary = ByzantineModel(fraction, behavior=behavior, seed=seed + 10 + index)
        adversary.apply(graph)
        live = [
            label for label in graph.labels(only_alive=True)
            if not adversary.is_compromised(label)
        ]
        pairs = LookupWorkload(seed=seed + 20 + index).pairs(live, searches)

        plain = ByzantineAwareRouter(graph=graph, adversary=adversary, seed=seed + 30 + index)
        redundant = RedundantRouter(
            graph=graph, adversary=adversary, redundancy=redundancy, seed=seed + 40 + index
        )
        plain_failures, plain_hops = 0, []
        redundant_failures, redundant_hops = 0, []
        for source, target in pairs:
            plain_result = plain.route(source, target)
            if plain_result.success:
                plain_hops.append(plain_result.hops)
            else:
                plain_failures += 1
            redundant_result = redundant.route(source, target)
            if redundant_result.success:
                redundant_hops.append(redundant_result.hops)
            else:
                redundant_failures += 1
        table.add_row(
            fraction,
            plain_failures / len(pairs),
            redundant_failures / len(pairs),
            float(np.mean(plain_hops)) if plain_hops else 0.0,
            float(np.mean(redundant_hops)) if redundant_hops else 0.0,
        )
        adversary.repair(graph)
    return table

"""Experiment harness regenerating every table and figure of the paper.

Each module corresponds to one experiment of the evaluation:

* :mod:`repro.experiments.figure5` — link-length distribution of the
  construction heuristic vs the ideal inverse power law (Figure 5a/5b).
* :mod:`repro.experiments.figure6` — failed searches and delivery time under
  node failures, for the three recovery strategies (Figure 6a/6b).
* :mod:`repro.experiments.figure7` — heuristically constructed vs ideal
  network under node failures (Figure 7).
* :mod:`repro.experiments.table1` — delivery-time scaling for every row of
  Table 1, compared against the theoretical bound shapes.
* :mod:`repro.experiments.ablations` — link-replacement strategy, backtrack
  depth, power-law exponent, and Byzantine-routing ablations.
* :mod:`repro.experiments.baseline_comparison` — hop counts and failure
  resilience of Chord / Kleinberg / CAN / Plaxton vs this paper's overlay.

Every experiment returns plain dataclasses/dicts and can print a text table,
so the benchmark harness and the examples reuse the same entry points.

.. deprecated::
    The ``run_*`` functions are thin shims over :mod:`repro.scenarios` — the
    declarative spec / registry / sweep API — and are kept for
    backwards-compatible kwargs and result types.  New code should build a
    :class:`~repro.scenarios.ScenarioSpec` and call
    :func:`repro.scenarios.run` (or the ``repro run`` / ``repro sweep`` CLI).
"""

from repro.experiments.ablations import (
    run_backtrack_depth_ablation,
    run_byzantine_experiment,
    run_exponent_ablation,
    run_replacement_ablation,
)
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.runner import (
    EngineRouteResult,
    ExperimentTable,
    FastpathFallbackWarning,
    format_table,
)
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "run_figure5",
    "Figure5Result",
    "run_figure6",
    "Figure6Result",
    "run_figure7",
    "Figure7Result",
    "run_table1",
    "Table1Result",
    "run_replacement_ablation",
    "run_backtrack_depth_ablation",
    "run_exponent_ablation",
    "run_byzantine_experiment",
    "run_baseline_comparison",
    "ExperimentTable",
    "EngineRouteResult",
    "FastpathFallbackWarning",
    "format_table",
]

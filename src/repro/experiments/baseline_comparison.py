"""Comparison of the paper's overlay against Chord, Kleinberg, CAN, and Plaxton.

Section 3 of the paper argues that the existing structured systems are
instances of one metric-space framework and should therefore behave
similarly; this experiment quantifies that claim by running the same
uniformly random lookup workload over each system (at matched network size)
with and without node failures and reporting mean hop counts and failed-search
fractions.

Every system implements the :class:`~repro.overlay.Overlay` protocol, so the
measurement is engine-agnostic: ``engine="object"`` walks each system's
scalar ``route()`` while ``engine="fastpath"`` compiles each topology into
its array snapshot (``compile_snapshot()``) and batch-routes the identical
workload — hop-for-hop identical numbers, 10x+ the throughput, which is what
lets ``repro sweep`` grid protocols x failure rates x n at scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.can import CanNetwork
from repro.baselines.chord import ChordNetwork
from repro.baselines.kleinberg_grid import KleinbergGridNetwork
from repro.baselines.plaxton import PlaxtonNetwork
from repro.core.builder import build_ideal_network
from repro.core.failures import NodeFailureModel
from repro.core.routing import RecoveryStrategy
from repro.experiments.runner import ExperimentTable, route_pairs_with_engine
from repro.overlay import PROTOCOLS, Overlay
from repro.simulation.workload import LookupWorkload

__all__ = ["run_baseline_comparison"]


def _measure(
    overlay: Overlay, searches: int, seed: int, engine: str
) -> tuple[float, float]:
    """Run ``searches`` random lookups; return (mean hops, failed fraction).

    The workload is drawn over the overlay's current live members; the two
    engines route the identical pairs and agree hop for hop, so the returned
    statistics are independent of ``engine``.
    """
    labels = overlay.labels(only_alive=True)
    pairs = LookupWorkload(seed=seed).pairs(labels, searches)
    if engine == "fastpath":
        from repro.fastpath import BatchGreedyRouter

        router = BatchGreedyRouter(
            overlay.compile_snapshot(), hop_limit=overlay.hop_limit
        )
        result = router.route_pairs(pairs)
        return result.mean_hops(), result.failed_count() / len(pairs)
    hops: list[int] = []
    failures = 0
    for source, target in pairs:
        result = overlay.route(source, target)
        if result.success:
            hops.append(result.hops)
        else:
            failures += 1
    return (float(np.mean(hops)) if hops else 0.0), failures / len(pairs)


def run_baseline_comparison(
    bits: int = 10,
    searches: int = 200,
    failure_level: float = 0.3,
    seed: int = 0,
    engine: str = "object",
    protocol: str = "",
) -> ExperimentTable:
    """Compare all systems at ``n = 2^bits`` nodes (grids use the nearest square).

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"baselines"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.
    """
    from repro.scenarios import run
    from repro.scenarios.library import baselines_spec

    spec = baselines_spec(
        bits=bits,
        searches=searches,
        failure_level=failure_level,
        seed=seed,
        engine=engine,
        protocol=protocol,
    )
    return run(spec).raw


def _power_law_row(n, searches, failure_level, seed, engine):
    """This paper's overlay (inverse power-law, lg n links, backtracking)."""
    build = build_ideal_network(n, seed=seed)
    graph = build.graph
    engines_used = set()

    def measure(workload_seed):
        pairs = LookupWorkload(seed=workload_seed).pairs(
            graph.labels(only_alive=True), searches
        )
        outcome = route_pairs_with_engine(
            graph, pairs, engine=engine,
            recovery=RecoveryStrategy.BACKTRACK, seed=seed,
        )
        engines_used.add(outcome.engine_used)
        mean_hops = float(np.mean(outcome.hops)) if outcome.hops else 0.0
        return mean_hops, outcome.failures / len(pairs)

    healthy = measure(seed + 1)
    failure_model = NodeFailureModel(failure_level, seed=seed + 2)
    failure_model.apply(graph)
    failed = measure(seed + 3)
    failure_model.repair(graph)
    row = (
        "this-paper (power-law + backtrack)", n, build.links_per_node + 2,
        healthy[0], healthy[1], failed[0], failed[1],
    )
    return row, engines_used


def _overlay_row(system, name, state, searches, failure_level, seed_block, engine):
    """One baseline system: measure intact, fail nodes, measure again, repair.

    ``seed_block`` is the system's historical seed base (``seed + 10*k``), so
    the per-system workload and failure draws are unchanged from the original
    hand-rolled comparison — and a single-protocol run reproduces exactly its
    row of the full table.
    """
    healthy = _measure(system, searches, seed_block + 1, engine)
    system.fail_fraction(failure_level, seed=seed_block + 2)
    failed = _measure(system, searches, seed_block + 3, engine)
    system.repair()
    nodes = len(system.labels(only_alive=False))
    row = (name, nodes, state, healthy[0], healthy[1], failed[0], failed[1])
    return row, {engine}


def _run_baseline_comparison_impl(
    bits: int = 10,
    searches: int = 200,
    failure_level: float = 0.3,
    seed: int = 0,
    engine: str = "object",
    protocol: str = "",
) -> tuple[ExperimentTable, set[str]]:
    """The baseline comparison (executed via the ``"baselines"`` scenario).

    Each system is measured twice: on the intact network and after failing
    ``failure_level`` of its nodes uniformly at random (without running any
    repair protocol, as in the paper's experiments).  ``protocol`` restricts
    the run to one overlay family (one of :data:`repro.overlay.PROTOCOLS`);
    ``""``/``"all"`` measures all five.  Returns the result table and the set
    of engines that actually routed.
    """
    n = 1 << bits
    side = int(round(math.sqrt(n)))
    table = ExperimentTable(
        title=f"Baseline comparison at n = {n} nodes ({failure_level:.0%} failures in second pass)",
        columns=[
            "system",
            "nodes",
            "state_per_node",
            "mean_hops",
            "failed_fraction",
            "mean_hops_after_failures",
            "failed_fraction_after_failures",
        ],
    )

    def chord_row():
        chord = ChordNetwork(bits=bits)
        return _overlay_row(
            chord, "chord", round(chord.average_table_size(), 1),
            searches, failure_level, seed + 10, engine,
        )

    def kleinberg_row():
        kleinberg = KleinbergGridNetwork(
            side=side, links_per_node=max(1, bits), seed=seed
        )
        return _overlay_row(
            kleinberg, "kleinberg-grid (r=2)", 4 + max(1, bits),
            searches, failure_level, seed + 20, engine,
        )

    def can_row():
        can = CanNetwork(side=side, dimensions=2)
        return _overlay_row(
            can, "can (d=2)", can.state_per_node(),
            searches, failure_level, seed + 30, engine,
        )

    def plaxton_row():
        plaxton = PlaxtonNetwork(digits=max(1, int(round(bits / 2))), base=4)
        return _overlay_row(
            plaxton, "plaxton (base 4)", plaxton.state_per_node(),
            searches, failure_level, seed + 40, engine,
        )

    builders = {
        "power-law": lambda: _power_law_row(n, searches, failure_level, seed, engine),
        "chord": chord_row,
        "kleinberg": kleinberg_row,
        "can": can_row,
        "plaxton": plaxton_row,
    }
    selected = PROTOCOLS if protocol in ("", "all") else (protocol,)
    engines_used: set[str] = set()
    for name in selected:
        row, used = builders[name]()
        table.add_row(*row)
        engines_used |= used
    return table, engines_used

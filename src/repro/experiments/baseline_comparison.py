"""Comparison of the paper's overlay against Chord, Kleinberg, CAN, and Plaxton.

Section 3 of the paper argues that the existing structured systems are
instances of one metric-space framework and should therefore behave
similarly; this experiment quantifies that claim by running the same
uniformly random lookup workload over each system (at matched network size)
with and without node failures and reporting mean hop counts and failed-search
fractions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.can import CanNetwork
from repro.baselines.chord import ChordNetwork
from repro.baselines.kleinberg_grid import KleinbergGridNetwork
from repro.baselines.plaxton import PlaxtonNetwork
from repro.core.builder import build_ideal_network
from repro.core.failures import NodeFailureModel
from repro.core.routing import GreedyRouter, RecoveryStrategy
from repro.experiments.runner import ExperimentTable
from repro.simulation.workload import LookupWorkload

__all__ = ["run_baseline_comparison"]


def _measure(route_function, labels, searches, seed) -> tuple[float, float]:
    """Run ``searches`` random lookups; return (mean hops, failed fraction)."""
    pairs = LookupWorkload(seed=seed).pairs(labels, searches)
    hops: list[int] = []
    failures = 0
    for source, target in pairs:
        result = route_function(source, target)
        if result.success:
            hops.append(result.hops)
        else:
            failures += 1
    return (float(np.mean(hops)) if hops else 0.0), failures / len(pairs)


def run_baseline_comparison(
    bits: int = 10,
    searches: int = 200,
    failure_level: float = 0.3,
    seed: int = 0,
) -> ExperimentTable:
    """Compare all systems at ``n = 2^bits`` nodes (grids use the nearest square).

    .. deprecated::
        This is a thin shim over the scenario API: it builds a
        :class:`~repro.scenarios.ScenarioSpec` and delegates to
        :func:`repro.scenarios.run` (scenario ``"baselines"``), returning
        identical numbers at a fixed seed.  New code should use the scenario
        API directly — it adds JSON results, sweeps, and the CLI surface.
    """
    from repro.scenarios import run
    from repro.scenarios.library import baselines_spec

    spec = baselines_spec(
        bits=bits, searches=searches, failure_level=failure_level, seed=seed
    )
    return run(spec).raw


def _run_baseline_comparison_impl(
    bits: int = 10,
    searches: int = 200,
    failure_level: float = 0.3,
    seed: int = 0,
) -> ExperimentTable:
    """The baseline comparison (executed via the ``"baselines"`` scenario).

    Each system is measured twice: on the intact network and after failing
    ``failure_level`` of its nodes uniformly at random (without running any
    repair protocol, as in the paper's experiments).
    """
    n = 1 << bits
    side = int(round(math.sqrt(n)))
    table = ExperimentTable(
        title=f"Baseline comparison at n = {n} nodes ({failure_level:.0%} failures in second pass)",
        columns=[
            "system",
            "nodes",
            "state_per_node",
            "mean_hops",
            "failed_fraction",
            "mean_hops_after_failures",
            "failed_fraction_after_failures",
        ],
    )

    # This paper's overlay (inverse power-law, lg n links, backtracking).
    build = build_ideal_network(n, seed=seed)
    graph = build.graph
    router = GreedyRouter(graph=graph, recovery=RecoveryStrategy.BACKTRACK, seed=seed)
    labels = graph.labels(only_alive=True)
    healthy = _measure(router.route, labels, searches, seed + 1)
    failure_model = NodeFailureModel(failure_level, seed=seed + 2)
    failure_model.apply(graph)
    failed = _measure(
        router.route, graph.labels(only_alive=True), searches, seed + 3
    )
    failure_model.repair(graph)
    table.add_row(
        "this-paper (power-law + backtrack)",
        n,
        build.links_per_node + 2,
        healthy[0], healthy[1], failed[0], failed[1],
    )

    # Chord.
    chord = ChordNetwork(bits=bits)
    healthy = _measure(chord.route, chord.labels(), searches, seed + 11)
    chord.fail_fraction(failure_level, seed=seed + 12)
    failed = _measure(chord.route, chord.labels(), searches, seed + 13)
    chord.repair()
    table.add_row(
        "chord", len(chord.members), round(chord.average_table_size(), 1),
        healthy[0], healthy[1], failed[0], failed[1],
    )

    # Kleinberg grid (exponent 2, lg n long contacts to match state).
    kleinberg = KleinbergGridNetwork(side=side, links_per_node=max(1, bits), seed=seed)
    healthy = _measure(kleinberg.route, kleinberg.labels(), searches, seed + 21)
    kleinberg.fail_fraction(failure_level, seed=seed + 22)
    failed = _measure(kleinberg.route, kleinberg.labels(), searches, seed + 23)
    kleinberg.repair()
    table.add_row(
        "kleinberg-grid (r=2)", kleinberg.size, 4 + max(1, bits),
        healthy[0], healthy[1], failed[0], failed[1],
    )

    # CAN (2-dimensional).
    can = CanNetwork(side=side, dimensions=2)
    healthy = _measure(can.route, can.labels(), searches, seed + 31)
    can.fail_fraction(failure_level, seed=seed + 32)
    failed = _measure(can.route, can.labels(), searches, seed + 33)
    can.repair()
    table.add_row(
        "can (d=2)", can.size, can.state_per_node(),
        healthy[0], healthy[1], failed[0], failed[1],
    )

    # Plaxton / Tapestry-style prefix routing (base 4).
    digits = max(1, int(round(bits / 2)))
    plaxton = PlaxtonNetwork(digits=digits, base=4)
    healthy = _measure(plaxton.route, plaxton.labels(), searches, seed + 41)
    plaxton.fail_fraction(failure_level, seed=seed + 42)
    failed = _measure(plaxton.route, plaxton.labels(), searches, seed + 43)
    plaxton.repair()
    table.add_row(
        "plaxton (base 4)", plaxton.size, plaxton.state_per_node(),
        healthy[0], healthy[1], failed[0], failed[1],
    )

    return table

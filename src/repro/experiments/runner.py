"""Shared infrastructure for the experiment harness.

Experiments produce :class:`ExperimentTable` objects — a header plus rows of
values — which can be printed as aligned text tables (the library has no
plotting dependency; the "figures" are reproduced as the numeric series the
paper plots).

The harness also owns the **engine switch**: every routing experiment accepts
``engine="object"`` (the scalar :class:`~repro.core.routing.GreedyRouter`,
one Python hop at a time) or ``engine="fastpath"`` (the batched NumPy engine
of :mod:`repro.fastpath`).  :func:`route_pairs_with_engine` is the single
place that arbitrates between them: fastpath covers both routing modes and
all three Section-6 recovery strategies, hop-for-hop identical to the object
engine at the same seed.  The rare configurations still outside the fastpath
envelope (a graph in a metric space the snapshot compiler cannot handle)
fall back to the object engine so sweeps keep working, but the downgrade is
not silent — the returned :class:`EngineRouteResult` records the engine
actually used and a :class:`FastpathFallbackWarning` is emitted.
"""

from __future__ import annotations

import csv
import io
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, NamedTuple, Sequence

from repro.core.routing import GreedyRouter, RecoveryStrategy, RoutingMode

__all__ = [
    "ExperimentTable",
    "EngineRouteResult",
    "FastpathFallbackWarning",
    "format_table",
    "jsonify_value",
    "tables_to_csv",
    "route_sample",
    "route_pairs_with_engine",
]


class FastpathFallbackWarning(RuntimeWarning):
    """Emitted when a requested ``engine="fastpath"`` run is downgraded.

    The fastpath engine implements all three recovery strategies, so the
    remaining downgrade triggers are structural: a graph whose metric space
    the snapshot compiler does not support, or a recovery configuration the
    batch router rejects (e.g. a multi-detour re-route budget).  The fallback
    still happens (sweeps must not fail half-way), but it is observable: this
    warning fires and :class:`EngineRouteResult.engine_used` reports
    ``"object"``.  Experiments that pre-resolve their engine (e.g.
    :func:`repro.experiments.figure6.run_figure6`) do so once up front, so
    the warning is emitted at most once per experiment rather than once per
    sweep cell.
    """


def jsonify_value(value: Any) -> Any:
    """Convert ``value`` to a JSON-serialisable equivalent.

    NumPy scalars and arrays are converted to native Python numbers/lists so
    result tables built from array computations serialise cleanly; anything
    already JSON-native passes through, everything else falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        # NumPy zero-dimensional scalar (np.int64, np.float64, ...).
        return jsonify_value(value.item())
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [jsonify_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): jsonify_value(item) for key, item in value.items()}
    return str(value)


@dataclass
class ExperimentTable:
    """A rectangular result table with a title and column names."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        """Append a row; the number of values must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """Return all values of the named column."""
        try:
            index = self.columns.index(name)
        except ValueError as error:
            raise KeyError(f"no column named {name!r}") from error
        return [row[index] for row in self.rows]

    def to_text(self) -> str:
        """Render the table as aligned monospace text."""
        return format_table(self.title, self.columns, self.rows, notes=self.notes)

    def to_csv(self) -> str:
        """Render the table as RFC-4180 CSV (header row + data rows).

        The title and notes are metadata, not data, and are omitted; use
        :meth:`to_json` when the full record is needed.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([jsonify_value(value) for value in row])
        return buffer.getvalue()

    def to_json_dict(self) -> dict:
        """Return the table as a JSON-serialisable dict."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [[jsonify_value(value) for value in row] for row in self.rows],
            "notes": self.notes,
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the table to a JSON string (deterministic key order)."""
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json_dict(cls, data: dict) -> "ExperimentTable":
        """Rebuild a table from :meth:`to_json_dict` output."""
        table = cls(
            title=data["title"],
            columns=list(data["columns"]),
            notes=data.get("notes", ""),
        )
        for row in data["rows"]:
            table.add_row(*row)
        return table

    @classmethod
    def from_json(cls, text: str) -> "ExperimentTable":
        """Rebuild a table from a :meth:`to_json` string."""
        return cls.from_json_dict(json.loads(text))

    def __str__(self) -> str:
        return self.to_text()


def tables_to_csv(tables: Sequence["ExperimentTable"]) -> str:
    """Render tables as CSV; multiple tables become ``#``-titled blocks."""
    blocks = []
    for table in tables:
        prefix = f"# {table.title}\n" if len(tables) > 1 else ""
        blocks.append(prefix + table.to_csv())
    return "\n".join(blocks)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: str = "",
) -> str:
    """Render a title, header, and rows as an aligned text table."""
    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered_rows = [[render(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [title, "-" * max(len(title), 8)]
    lines.append(format_row(list(columns)))
    lines.append(format_row(["-" * width for width in widths]))
    for row in rendered_rows:
        lines.append(format_row(row))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def route_sample(graph, router, pairs) -> tuple[int, list[int]]:
    """Route every (source, target) pair; return (failures, hops_of_successes)."""
    failures = 0
    hops: list[int] = []
    for source, target in pairs:
        result = router.route(source, target)
        if result.success:
            hops.append(result.hops)
        else:
            failures += 1
    return failures, hops


class EngineRouteResult(NamedTuple):
    """Outcome of :func:`route_pairs_with_engine`.

    ``failures`` and ``hops`` match the old ``(failures, hops)`` tuple;
    ``engine_used`` records which engine actually routed the pairs — it can
    differ from the requested engine when a fastpath request is downgraded
    because the recovery strategy is unsupported.
    """

    failures: int
    hops: list[int]
    engine_used: str


def route_pairs_with_engine(
    graph,
    pairs,
    engine: str = "object",
    mode: RoutingMode = RoutingMode.TWO_SIDED,
    recovery: RecoveryStrategy = RecoveryStrategy.TERMINATE,
    strict_best_neighbor: bool = False,
    seed: int = 0,
    snapshot=None,
) -> EngineRouteResult:
    """Route every pair through the requested engine.

    Returns an :class:`EngineRouteResult` ``(failures, hops_of_successes,
    engine_used)`` regardless of engine, so experiment code is
    engine-agnostic.  The two engines are hop-for-hop identical at the same
    seed for every configuration they both support, including all three
    recovery strategies.

    Parameters
    ----------
    graph:
        The overlay graph (with any failures already applied).  May be
        ``None`` for a pure-fastpath run when ``snapshot`` is given — e.g. a
        direct-built network (:func:`repro.fastpath.build_snapshot`) that
        never had an object graph.
    pairs:
        Sequence of (source, target) label pairs.
    engine:
        ``"object"`` or ``"fastpath"``.  A fastpath request whose graph
        cannot be compiled into a snapshot falls back to the object engine;
        the downgrade emits a :class:`FastpathFallbackWarning` and is
        recorded in the returned ``engine_used`` field.
    seed:
        Routing seed (the random re-route stream); both engines derive the
        same stream from it.
    snapshot:
        Optional precompiled :class:`~repro.fastpath.FastpathSnapshot` of
        the topology — pass it when several strategies share one topology so
        the graph is compiled once, not per strategy.  Ignored by the object
        engine.  The caller is responsible for the snapshot actually matching
        ``graph``'s current liveness.
    """
    from repro.fastpath import BatchGreedyRouter, compile_snapshot, select_engine

    resolved = select_engine(engine, recovery)
    if graph is None and snapshot is None:
        raise ValueError(
            "route_pairs_with_engine needs a graph or (for fastpath runs) a "
            "precompiled snapshot; got neither"
        )
    if resolved == "fastpath" and snapshot is None:
        try:
            snapshot = compile_snapshot(graph)
        except NotImplementedError as error:
            warnings.warn(
                f"engine='fastpath' cannot compile this graph ({error}); "
                "routing through the object engine instead",
                FastpathFallbackWarning,
                stacklevel=2,
            )
            resolved = "object"
    if resolved == "fastpath":
        reroute_pool = None
        if recovery is RecoveryStrategy.RANDOM_REROUTE and graph is not None:
            # Detour draws index the scalar router's live-node list; hand the
            # batch router the graph's own ordering so parity holds even for
            # graphs whose nodes were not inserted in sorted label order.
            reroute_pool = graph.labels(only_alive=True)
        router = BatchGreedyRouter(
            snapshot=snapshot,
            mode=mode,
            recovery=recovery,
            strict_best_neighbor=strict_best_neighbor,
            seed=seed,
            reroute_pool=reroute_pool,
        )
        result = router.route_pairs(pairs)
        return EngineRouteResult(
            result.failed_count(), result.hops[result.success].tolist(), resolved
        )

    if graph is None:
        raise ValueError(
            "the object engine needs an overlay graph; only snapshot-backed "
            "fastpath runs may pass graph=None"
        )
    router = GreedyRouter(
        graph=graph,
        mode=mode,
        recovery=recovery,
        strict_best_neighbor=strict_best_neighbor,
        seed=seed,
    )
    failures, hops = route_sample(graph, router, pairs)
    return EngineRouteResult(failures, hops, resolved)

"""Shared infrastructure for the experiment harness.

Experiments produce :class:`ExperimentTable` objects — a header plus rows of
values — which can be printed as aligned text tables (the library has no
plotting dependency; the "figures" are reproduced as the numeric series the
paper plots).

The harness also owns the **engine switch**: every routing experiment accepts
``engine="object"`` (the scalar :class:`~repro.core.routing.GreedyRouter`,
one Python hop at a time) or ``engine="fastpath"`` (the batched NumPy engine
of :mod:`repro.fastpath`).  :func:`route_pairs_with_engine` is the single
place that arbitrates between them: for the configurations fastpath supports
(terminate recovery, either routing mode) the two engines produce identical
statistics, and for unsupported recovery strategies the call silently falls
back to the object engine so mixed-strategy sweeps keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.routing import GreedyRouter, RecoveryStrategy, RoutingMode

__all__ = [
    "ExperimentTable",
    "format_table",
    "route_sample",
    "route_pairs_with_engine",
]


@dataclass
class ExperimentTable:
    """A rectangular result table with a title and column names."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        """Append a row; the number of values must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """Return all values of the named column."""
        try:
            index = self.columns.index(name)
        except ValueError as error:
            raise KeyError(f"no column named {name!r}") from error
        return [row[index] for row in self.rows]

    def to_text(self) -> str:
        """Render the table as aligned monospace text."""
        return format_table(self.title, self.columns, self.rows, notes=self.notes)

    def __str__(self) -> str:
        return self.to_text()


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: str = "",
) -> str:
    """Render a title, header, and rows as an aligned text table."""
    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered_rows = [[render(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [title, "-" * max(len(title), 8)]
    lines.append(format_row(list(columns)))
    lines.append(format_row(["-" * width for width in widths]))
    for row in rendered_rows:
        lines.append(format_row(row))
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def route_sample(graph, router, pairs) -> tuple[int, list[int]]:
    """Route every (source, target) pair; return (failures, hops_of_successes)."""
    failures = 0
    hops: list[int] = []
    for source, target in pairs:
        result = router.route(source, target)
        if result.success:
            hops.append(result.hops)
        else:
            failures += 1
    return failures, hops


def route_pairs_with_engine(
    graph,
    pairs,
    engine: str = "object",
    mode: RoutingMode = RoutingMode.TWO_SIDED,
    recovery: RecoveryStrategy = RecoveryStrategy.TERMINATE,
    strict_best_neighbor: bool = False,
    seed: int = 0,
    snapshot=None,
) -> tuple[int, list[int]]:
    """Route every pair through the requested engine.

    Returns ``(failures, hops_of_successes)`` regardless of engine, so
    experiment code is engine-agnostic.

    Parameters
    ----------
    graph:
        The overlay graph (with any failures already applied).
    pairs:
        Sequence of (source, target) label pairs.
    engine:
        ``"object"`` or ``"fastpath"``.  A fastpath request with an
        unsupported recovery strategy falls back to the object engine (see
        :func:`repro.fastpath.select_engine`).
    snapshot:
        Optional precompiled :class:`~repro.fastpath.FastpathSnapshot` of
        ``graph`` — pass it when several strategies share one topology so the
        graph is compiled once, not per strategy.  Ignored by the object
        engine.  The caller is responsible for the snapshot actually matching
        ``graph``'s current liveness.
    """
    from repro.fastpath import BatchGreedyRouter, compile_snapshot, select_engine

    resolved = select_engine(engine, recovery)
    if resolved == "fastpath":
        if snapshot is None:
            snapshot = compile_snapshot(graph)
        router = BatchGreedyRouter(
            snapshot=snapshot,
            mode=mode,
            recovery=recovery,
            strict_best_neighbor=strict_best_neighbor,
        )
        result = router.route_pairs(pairs)
        return result.failed_count(), result.hops[result.success].tolist()

    router = GreedyRouter(
        graph=graph,
        mode=mode,
        recovery=recovery,
        strict_best_neighbor=strict_best_neighbor,
        seed=seed,
    )
    return route_sample(graph, router, pairs)

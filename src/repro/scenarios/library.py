"""Built-in scenarios: every experiment of the paper, registered.

This module ports the repository's seven bespoke experiment entry points
(``run_figure5/6/7``, ``run_table1``, the ablations, and
``run_baseline_comparison``) onto the declarative scenario API.  Each
registration pairs a default :class:`~repro.scenarios.spec.ScenarioSpec`
(mirroring the legacy function defaults exactly, so the deprecation shims
reproduce identical numbers at a fixed seed) with an execute hook that maps
the spec onto the measurement implementation.

The ``*_spec`` helpers build specs from legacy keyword arguments; the
deprecation shims in :mod:`repro.experiments` call them and then delegate to
:func:`repro.scenarios.run`.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.construction import (
    InverseDistanceReplacement,
    NeverReplace,
    OldestLinkReplacement,
)
from repro.core.failures import ByzantineBehavior
from repro.core.routing import RecoveryStrategy
from repro.fastpath import select_engine
from repro.scenarios.registry import register_scenario
from repro.scenarios.run import ScenarioOutcome
from repro.scenarios.spec import (
    FailureSpec,
    RoutingSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "policy_name",
    "figure5_spec",
    "figure6_spec",
    "figure7_spec",
    "table1_spec",
    "ablation_replacement_spec",
    "ablation_backtrack_spec",
    "ablation_exponent_spec",
    "byzantine_spec",
    "baselines_spec",
]

_POLICIES = {
    "inverse-distance": InverseDistanceReplacement,
    "oldest-link": OldestLinkReplacement,
    "never-replace": NeverReplace,
}


def policy_name(policy) -> str | None:
    """Map a link-replacement policy object to its registry name.

    ``None`` (the "use the default" sentinel) maps to ``"inverse-distance"``;
    an instance of an unknown custom policy class returns ``None`` (not
    spec-representable).
    """
    if policy is None:
        return "inverse-distance"
    for name, cls in _POLICIES.items():
        if type(policy) is cls:
            return name
    return None


def _policy_from_name(name: str):
    try:
        return _POLICIES[name]()
    except KeyError:
        raise SpecError(
            f"unknown replacement policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None


def _levels(spec: ScenarioSpec) -> list[float] | None:
    """The failure sweep, or ``None`` for the scenario's default levels."""
    return list(spec.failures.levels) or None


def _combined_engine(engine: str, recoveries) -> str:
    """The engine(s) expected to be used across a set of recovery strategies.

    Since the fastpath engine covers all three recovery strategies this is a
    single engine in practice; mixed results (e.g. a partial fallback) join
    as ``"fastpath+object"``.
    """
    used = sorted({select_engine(engine, recovery) for recovery in recoveries})
    return "+".join(used)


# ---------------------------------------------------------------------------
# figure5
# ---------------------------------------------------------------------------


def figure5_spec(
    nodes: int = 1 << 11,
    links_per_node: int | None = None,
    networks: int = 5,
    replacement_policy: str = "inverse-distance",
    seed: int = 0,
) -> ScenarioSpec:
    """Spec for the ``"figure5"`` scenario from legacy keyword arguments."""
    return ScenarioSpec(
        scenario="figure5",
        topology=TopologySpec(kind="heuristic", nodes=nodes, links_per_node=links_per_node),
        failures=FailureSpec(kind="none"),
        workload=WorkloadSpec(searches=1, networks=networks),
        seed=seed,
        extras={"replacement_policy": replacement_policy, "max_rows": 20},
    )


@register_scenario(
    "figure5",
    description="link-length distribution of the §5 construction heuristic vs the ideal 1/d law (Figure 5a/5b)",
    defaults=figure5_spec(),
)
def _figure5(spec: ScenarioSpec) -> ScenarioOutcome:
    """Construction-only scenario: no queries are routed, so the engine field
    is ignored (reported as ``"object"``)."""
    from repro.experiments.figure5 import _run_figure5_impl

    result = _run_figure5_impl(
        nodes=spec.topology.nodes,
        links_per_node=spec.topology.links_per_node,
        networks=spec.workload.networks,
        replacement_policy=_policy_from_name(spec.extra("replacement_policy", "inverse-distance")),
        seed=spec.seed,
    )
    return ScenarioOutcome(
        tables=[result.to_table(max_rows=int(spec.extra("max_rows", 20)))],
        raw=result,
        engine_used="object",
    )


# ---------------------------------------------------------------------------
# figure6
# ---------------------------------------------------------------------------

_FIGURE6_STRATEGIES = tuple(strategy.value for strategy in (
    RecoveryStrategy.TERMINATE,
    RecoveryStrategy.RANDOM_REROUTE,
    RecoveryStrategy.BACKTRACK,
))


def figure6_spec(
    nodes: int = 1 << 12,
    links_per_node: int | None = None,
    failure_levels: Sequence[float] | None = None,
    searches_per_point: int = 200,
    strategies: Sequence[str] = _FIGURE6_STRATEGIES,
    seed: int = 0,
    engine: str = "object",
) -> ScenarioSpec:
    """Spec for the ``"figure6"`` scenario from legacy keyword arguments."""
    return ScenarioSpec(
        scenario="figure6",
        topology=TopologySpec(kind="ideal", nodes=nodes, links_per_node=links_per_node),
        failures=FailureSpec(kind="nodes", levels=tuple(failure_levels or ())),
        workload=WorkloadSpec(searches=searches_per_point),
        engine=engine,
        seed=seed,
        extras={"strategies": tuple(strategies)},
    )


@register_scenario(
    "figure6",
    description="failed searches and delivery time vs failed-node fraction, three recovery strategies (Figure 6a/6b)",
    defaults=figure6_spec(),
)
def _figure6(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.experiments.figure6 import _run_figure6_impl

    strategies = tuple(
        RecoveryStrategy(name) for name in spec.extra("strategies", _FIGURE6_STRATEGIES)
    )
    result = _run_figure6_impl(
        nodes=spec.topology.nodes,
        links_per_node=spec.topology.links_per_node,
        failure_levels=_levels(spec),
        searches_per_point=spec.workload.searches,
        strategies=strategies,
        seed=spec.seed,
        engine=spec.engine,
    )
    # Surface the engines that *actually* routed (recorded per strategy and
    # failure level by the measurement) rather than a prediction, so a
    # partial fallback shows up as a mixed "fastpath+object" run.
    recorded = {
        engine
        for levels_used in result.parameters["engines_used_per_level"].values()
        for engine in levels_used
    }
    return ScenarioOutcome(
        tables=list(result.to_tables()),
        raw=result,
        engine_used="+".join(sorted(recorded)) if recorded else spec.engine,
    )


# ---------------------------------------------------------------------------
# figure7
# ---------------------------------------------------------------------------


def figure7_spec(
    nodes: int = 1 << 11,
    links_per_node: int | None = None,
    failure_levels: Sequence[float] | None = None,
    searches_per_point: int = 200,
    iterations: int = 2,
    recovery: str = RecoveryStrategy.TERMINATE.value,
    seed: int = 0,
    engine: str = "object",
) -> ScenarioSpec:
    """Spec for the ``"figure7"`` scenario from legacy keyword arguments."""
    return ScenarioSpec(
        scenario="figure7",
        topology=TopologySpec(kind="ideal", nodes=nodes, links_per_node=links_per_node),
        failures=FailureSpec(kind="nodes", levels=tuple(failure_levels or ())),
        routing=RoutingSpec(recovery=recovery),
        workload=WorkloadSpec(searches=searches_per_point, iterations=iterations),
        engine=engine,
        seed=seed,
    )


@register_scenario(
    "figure7",
    description="failed searches on the heuristically constructed vs the ideal network under node failures (Figure 7)",
    defaults=figure7_spec(),
)
def _figure7(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.experiments.figure7 import _run_figure7_impl

    recovery = spec.routing.recovery_strategy()
    result = _run_figure7_impl(
        nodes=spec.topology.nodes,
        links_per_node=spec.topology.links_per_node,
        failure_levels=_levels(spec),
        searches_per_point=spec.workload.searches,
        iterations=spec.workload.iterations,
        recovery=recovery,
        seed=spec.seed,
        engine=spec.engine,
    )
    return ScenarioOutcome(
        tables=[result.to_table()],
        raw=result,
        engine_used=select_engine(spec.engine, recovery),
    )


# ---------------------------------------------------------------------------
# table1
# ---------------------------------------------------------------------------


def table1_spec(
    sizes: Sequence[int] | None = None,
    link_counts: Sequence[int] | None = None,
    bases: Sequence[int] | None = None,
    probabilities: Sequence[float] | None = None,
    searches: int = 150,
    seed: int = 0,
    recovery: str = RecoveryStrategy.BACKTRACK.value,
    engine: str = "object",
) -> ScenarioSpec:
    """Spec for the ``"table1"`` scenario from legacy keyword arguments.

    The four sweep axes live in ``extras``; ``None`` keeps the measurement's
    default sweep (``2^8..2^12`` sizes and the paper's link/base/probability
    lists).  The defaults are materialised in the spec so every axis has a
    typed template for ``--set``/``--grid`` coercion.
    """
    extras = {
        "sizes": tuple(sizes) if sizes is not None else tuple(1 << k for k in range(8, 13)),
        "link_counts": tuple(link_counts) if link_counts is not None else (1, 2, 4, 8, 12),
        "bases": tuple(bases) if bases is not None else (2, 4, 8, 16),
        "probabilities": tuple(probabilities)
        if probabilities is not None
        else (1.0, 0.9, 0.75, 0.5, 0.25),
    }
    return ScenarioSpec(
        scenario="table1",
        routing=RoutingSpec(recovery=recovery),
        workload=WorkloadSpec(searches=searches),
        engine=engine,
        seed=seed,
        extras=extras,
    )


@register_scenario(
    "table1",
    description="measured delivery time vs the theoretical bound shape for every Table-1 model",
    defaults=table1_spec(),
)
def _table1(spec: ScenarioSpec) -> ScenarioOutcome:
    from repro.experiments.table1 import _run_table1_impl

    def axis(key):
        values = spec.extra(key)
        if values is None:
            return None
        return list(values) if isinstance(values, (tuple, list)) else [values]

    recovery = spec.routing.recovery_strategy()
    result = _run_table1_impl(
        sizes=axis("sizes"),
        link_counts=axis("link_counts"),
        bases=axis("bases"),
        probabilities=axis("probabilities"),
        searches=spec.workload.searches,
        seed=spec.seed,
        recovery=recovery,
        engine=spec.engine,
    )
    return ScenarioOutcome(
        tables=result.tables(),
        raw=result,
        engine_used=select_engine(spec.engine, recovery),
    )


# ---------------------------------------------------------------------------
# ablations
# ---------------------------------------------------------------------------


def ablation_replacement_spec(
    nodes: int = 1 << 10,
    links_per_node: int | None = None,
    networks: int = 3,
    seed: int = 0,
) -> ScenarioSpec:
    """Spec for the ``"ablation-replacement"`` scenario."""
    return ScenarioSpec(
        scenario="ablation-replacement",
        topology=TopologySpec(kind="heuristic", nodes=nodes, links_per_node=links_per_node),
        failures=FailureSpec(kind="none"),
        workload=WorkloadSpec(searches=1, networks=networks),
        seed=seed,
    )


@register_scenario(
    "ablation-replacement",
    description="link-replacement policy ablation: inverse-distance vs oldest-link vs never-replace",
    defaults=ablation_replacement_spec(),
)
def _ablation_replacement(spec: ScenarioSpec) -> ScenarioOutcome:
    """Construction-only scenario (engine ignored, reported as ``"object"``)."""
    from repro.experiments.ablations import _run_replacement_ablation_impl

    table = _run_replacement_ablation_impl(
        nodes=spec.topology.nodes,
        links_per_node=spec.topology.links_per_node,
        networks=spec.workload.networks,
        seed=spec.seed,
    )
    return ScenarioOutcome(tables=[table], raw=table, engine_used="object")


def ablation_backtrack_spec(
    nodes: int = 1 << 12,
    depths: Sequence[int] | None = None,
    failure_level: float = 0.5,
    searches: int = 300,
    seed: int = 0,
) -> ScenarioSpec:
    """Spec for the ``"ablation-backtrack"`` scenario."""
    extras = {"depths": tuple(depths) if depths is not None else (1, 2, 5, 10, 20)}
    return ScenarioSpec(
        scenario="ablation-backtrack",
        topology=TopologySpec(kind="ideal", nodes=nodes),
        failures=FailureSpec(kind="nodes", levels=(failure_level,)),
        routing=RoutingSpec(recovery=RecoveryStrategy.BACKTRACK.value),
        workload=WorkloadSpec(searches=searches),
        seed=seed,
        extras=extras,
    )


@register_scenario(
    "ablation-backtrack",
    description="backtrack-depth ablation: failed-search fraction vs history depth at a fixed failure level",
    defaults=ablation_backtrack_spec(),
)
def _ablation_backtrack(spec: ScenarioSpec) -> ScenarioOutcome:
    """Object-engine scenario (the backtracking router is stateful)."""
    from repro.experiments.ablations import _run_backtrack_depth_ablation_impl

    depths = spec.extra("depths")
    table = _run_backtrack_depth_ablation_impl(
        nodes=spec.topology.nodes,
        depths=list(depths) if depths is not None else None,
        failure_level=spec.failures.levels[0] if spec.failures.levels else 0.5,
        searches=spec.workload.searches,
        seed=spec.seed,
    )
    return ScenarioOutcome(tables=[table], raw=table, engine_used="object")


def ablation_exponent_spec(
    nodes: int = 1 << 12,
    exponents: Sequence[float] | None = None,
    searches: int = 300,
    seed: int = 0,
) -> ScenarioSpec:
    """Spec for the ``"ablation-exponent"`` scenario."""
    extras = {
        "exponents": tuple(exponents) if exponents is not None else (0.0, 0.5, 1.0, 1.5, 2.0)
    }
    return ScenarioSpec(
        scenario="ablation-exponent",
        topology=TopologySpec(kind="ideal", nodes=nodes),
        failures=FailureSpec(kind="none"),
        workload=WorkloadSpec(searches=searches),
        seed=seed,
        extras=extras,
    )


@register_scenario(
    "ablation-exponent",
    description="link-distribution exponent ablation: routing performance vs power-law exponent",
    defaults=ablation_exponent_spec(),
)
def _ablation_exponent(spec: ScenarioSpec) -> ScenarioOutcome:
    """Object-engine scenario."""
    from repro.experiments.ablations import _run_exponent_ablation_impl

    exponents = spec.extra("exponents")
    table = _run_exponent_ablation_impl(
        nodes=spec.topology.nodes,
        exponents=list(exponents) if exponents is not None else None,
        searches=spec.workload.searches,
        seed=spec.seed,
    )
    return ScenarioOutcome(tables=[table], raw=table, engine_used="object")


def byzantine_spec(
    nodes: int = 1 << 11,
    fractions: Sequence[float] | None = None,
    behavior: str = ByzantineBehavior.DROP,
    redundancy: int = 3,
    searches: int = 200,
    seed: int = 0,
) -> ScenarioSpec:
    """Spec for the ``"byzantine"`` scenario."""
    return ScenarioSpec(
        scenario="byzantine",
        topology=TopologySpec(kind="ideal", nodes=nodes),
        failures=FailureSpec(
            kind="byzantine", levels=tuple(fractions or ()), behavior=behavior
        ),
        workload=WorkloadSpec(searches=searches),
        seed=seed,
        extras={"redundancy": redundancy},
    )


@register_scenario(
    "byzantine",
    description="Byzantine-node extension: plain vs redundant multi-path routing vs compromised fraction",
    defaults=byzantine_spec(),
)
def _byzantine(spec: ScenarioSpec) -> ScenarioOutcome:
    """Object-engine scenario (Byzantine behaviour is object-router only)."""
    from repro.experiments.ablations import _run_byzantine_experiment_impl

    table = _run_byzantine_experiment_impl(
        nodes=spec.topology.nodes,
        fractions=_levels(spec),
        behavior=spec.failures.behavior,
        redundancy=int(spec.extra("redundancy", 3)),
        searches=spec.workload.searches,
        seed=spec.seed,
    )
    return ScenarioOutcome(tables=[table], raw=table, engine_used="object")


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------


def baselines_spec(
    bits: int = 10,
    searches: int = 200,
    failure_level: float = 0.3,
    seed: int = 0,
    engine: str = "object",
    protocol: str = "",
) -> ScenarioSpec:
    """Spec for the ``"baselines"`` scenario.

    The network size is ``topology.nodes`` (the single source of truth); the
    execute hook converts it back to the bit width the comparison uses, so
    ``--set topology.nodes=...`` sweeps all systems at matched size.
    ``topology.protocol`` restricts the comparison to one overlay family
    (``""`` = all five), which is the sweep axis for protocol grids:
    ``repro sweep baselines --grid topology.protocol=chord,can --grid
    failures.levels=0.1,0.3 --set engine=fastpath``.
    """
    return ScenarioSpec(
        scenario="baselines",
        topology=TopologySpec(kind="ideal", nodes=1 << bits, protocol=protocol),
        failures=FailureSpec(kind="nodes", levels=(failure_level,)),
        workload=WorkloadSpec(searches=searches),
        engine=engine,
        seed=seed,
    )


@register_scenario(
    "baselines",
    description="hop counts and failure resilience of Chord / Kleinberg / CAN / Plaxton vs this paper's overlay (both engines, protocol-grid ready)",
    defaults=baselines_spec(),
)
def _baselines(spec: ScenarioSpec) -> ScenarioOutcome:
    """Every system implements the Overlay protocol, so both engines apply:
    ``engine="fastpath"`` batch-routes each topology's compiled snapshot with
    numbers identical to the scalar walk."""
    import math

    from repro.experiments.baseline_comparison import _run_baseline_comparison_impl

    table, engines_used = _run_baseline_comparison_impl(
        bits=max(1, round(math.log2(spec.topology.nodes))),
        searches=spec.workload.searches,
        failure_level=spec.failures.levels[0] if spec.failures.levels else 0.3,
        seed=spec.seed,
        engine=spec.engine,
        protocol=spec.topology.protocol,
    )
    return ScenarioOutcome(
        tables=[table],
        raw=table,
        engine_used="+".join(sorted(engines_used)) if engines_used else spec.engine,
    )

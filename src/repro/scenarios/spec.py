"""Declarative experiment specifications.

A :class:`ScenarioSpec` is a frozen, validated, JSON-round-trippable
description of one experiment run: what topology to build, which failures to
inject, how to route and recover, what query workload to apply, which engine
to evaluate on, and the seed everything derives from.  Encoding the
experiment in *data* rather than in per-figure function signatures is what
lets one ``run(spec)`` entrypoint serve every scenario and lets a sweep
expand a parameter grid mechanically.

The spec is deliberately a closed, flat vocabulary — common knobs live in the
typed sub-specs (:class:`TopologySpec`, :class:`FailureSpec`,
:class:`RoutingSpec`, :class:`WorkloadSpec`), and the handful of knobs only
one scenario understands (Table 1's size lists, the ablation sweep axes)
live in the ``extras`` mapping.  Overrides address fields by dotted path
(``"topology.nodes"``, ``"routing.recovery"``, ``"extras.sizes"``), which is
the same syntax the CLI exposes as ``--set key=value`` and ``--grid
key=v1,v2``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.failures import ByzantineBehavior
from repro.core.routing import RecoveryStrategy, RoutingMode
from repro.fastpath import ENGINES
from repro.overlay import PROTOCOLS

__all__ = [
    "SpecError",
    "TopologySpec",
    "FailureSpec",
    "RoutingSpec",
    "WorkloadSpec",
    "ScenarioSpec",
    "apply_overrides",
    "coerce_override",
    "parse_assignment",
    "parse_scalar",
]


class SpecError(ValueError):
    """Raised when a scenario specification (or an override) is invalid."""


TOPOLOGY_KINDS = ("ideal", "heuristic", "deterministic")
FAILURE_KINDS = ("none", "nodes", "links", "byzantine", "churn")
BYZANTINE_BEHAVIORS = (
    ByzantineBehavior.DROP,
    ByzantineBehavior.MISROUTE,
    ByzantineBehavior.RANDOM,
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


@dataclass(frozen=True)
class TopologySpec:
    """How the overlay graph is built.

    ``kind`` selects the builder: ``"ideal"`` samples every long link
    straight from the inverse power-law distribution, ``"heuristic"`` runs
    the Section-5 incremental construction, ``"deterministic"`` builds the
    base-``base`` scheme (``variant`` as in
    :class:`~repro.core.builder.DeterministicGraphBuilder`).

    ``protocol`` selects an overlay protocol family for scenarios that can
    compare several (the ``baselines`` comparison): one of
    :data:`repro.overlay.PROTOCOLS`, or ``""`` (the default) for the
    scenario's own choice — every protocol at once for ``baselines``.
    """

    kind: str = "ideal"
    nodes: int = 1 << 11
    links_per_node: int | None = None
    exponent: float = 1.0
    base: int = 2
    variant: str = "full"
    protocol: str = ""

    def validate(self) -> None:
        _require(self.kind in TOPOLOGY_KINDS, f"topology.kind must be one of {TOPOLOGY_KINDS}, got {self.kind!r}")
        _require(isinstance(self.nodes, int) and self.nodes >= 2, f"topology.nodes must be an integer >= 2, got {self.nodes!r}")
        _require(
            self.links_per_node is None or (isinstance(self.links_per_node, int) and self.links_per_node >= 1),
            f"topology.links_per_node must be None or an integer >= 1, got {self.links_per_node!r}",
        )
        _require(self.exponent >= 0.0, f"topology.exponent must be >= 0, got {self.exponent!r}")
        _require(isinstance(self.base, int) and self.base >= 2, f"topology.base must be an integer >= 2, got {self.base!r}")
        _require(
            self.protocol in ("",) + PROTOCOLS,
            f"topology.protocol must be '' or one of {PROTOCOLS}, got {self.protocol!r}",
        )


@dataclass(frozen=True)
class FailureSpec:
    """Which failures are injected before routing.

    ``levels`` is the sweep axis: node-failure fractions, link survival
    probabilities, Byzantine fractions, or — for ``kind="churn"`` — per-round
    churn rates (events per round as a fraction of the membership) depending
    on ``kind``.  An empty tuple means "use the scenario's default sweep".
    """

    kind: str = "nodes"
    levels: tuple[float, ...] = ()
    behavior: str = ByzantineBehavior.DROP

    def validate(self) -> None:
        _require(self.kind in FAILURE_KINDS, f"failures.kind must be one of {FAILURE_KINDS}, got {self.kind!r}")
        for level in self.levels:
            _require(0.0 <= float(level) <= 1.0, f"failures.levels entries must be in [0, 1], got {level!r}")
        _require(
            self.behavior in BYZANTINE_BEHAVIORS,
            f"failures.behavior must be one of {BYZANTINE_BEHAVIORS}, got {self.behavior!r}",
        )


@dataclass(frozen=True)
class RoutingSpec:
    """Greedy-routing and failure-recovery configuration."""

    mode: str = RoutingMode.TWO_SIDED.value
    recovery: str = RecoveryStrategy.BACKTRACK.value
    strict_best_neighbor: bool = False
    backtrack_depth: int = 5

    def validate(self) -> None:
        modes = tuple(mode.value for mode in RoutingMode)
        recoveries = tuple(strategy.value for strategy in RecoveryStrategy)
        _require(self.mode in modes, f"routing.mode must be one of {modes}, got {self.mode!r}")
        _require(self.recovery in recoveries, f"routing.recovery must be one of {recoveries}, got {self.recovery!r}")
        _require(
            isinstance(self.backtrack_depth, int) and self.backtrack_depth >= 1,
            f"routing.backtrack_depth must be an integer >= 1, got {self.backtrack_depth!r}",
        )

    def recovery_strategy(self) -> RecoveryStrategy:
        """The recovery field as its enum."""
        return RecoveryStrategy(self.recovery)

    def routing_mode(self) -> RoutingMode:
        """The mode field as its enum."""
        return RoutingMode(self.mode)


@dataclass(frozen=True)
class WorkloadSpec:
    """Query workload and repetition counts.

    ``searches`` is the number of routed (source, target) lookups per
    measurement point; ``networks`` is the number of independently built
    networks averaged by construction experiments; ``iterations`` is the
    number of build/measure repetitions averaged by routing experiments.
    """

    searches: int = 200
    networks: int = 1
    iterations: int = 1

    def validate(self) -> None:
        _require(isinstance(self.searches, int) and self.searches >= 1, f"workload.searches must be an integer >= 1, got {self.searches!r}")
        _require(isinstance(self.networks, int) and self.networks >= 1, f"workload.networks must be an integer >= 1, got {self.networks!r}")
        _require(isinstance(self.iterations, int) and self.iterations >= 1, f"workload.iterations must be an integer >= 1, got {self.iterations!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """Complete declarative description of one experiment run.

    Instances are immutable; derive variants with :func:`apply_overrides` or
    :meth:`with_overrides`, and serialise with :meth:`to_json_dict` /
    :meth:`from_json_dict`.  ``extras`` holds scenario-specific parameters as
    a sorted tuple of ``(key, value)`` pairs so the spec stays hashable; use
    :meth:`extra` / :meth:`extras_dict` to read it.
    """

    scenario: str
    topology: TopologySpec = TopologySpec()
    failures: FailureSpec = FailureSpec()
    routing: RoutingSpec = RoutingSpec()
    workload: WorkloadSpec = WorkloadSpec()
    engine: str = "object"
    seed: int = 0
    extras: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.extras, Mapping):
            object.__setattr__(
                self, "extras", tuple(sorted((str(k), _freeze(v)) for k, v in self.extras.items()))
            )
        else:
            object.__setattr__(
                self, "extras", tuple(sorted((str(k), _freeze(v)) for k, v in self.extras))
            )
        self.validate()

    def validate(self) -> None:
        """Check every field; raise :class:`SpecError` on the first problem."""
        _require(bool(self.scenario) and isinstance(self.scenario, str), f"scenario must be a non-empty string, got {self.scenario!r}")
        _require(self.engine in ENGINES, f"engine must be one of {ENGINES}, got {self.engine!r}")
        _require(isinstance(self.seed, int) and self.seed >= 0, f"seed must be a non-negative integer, got {self.seed!r}")
        self.topology.validate()
        self.failures.validate()
        self.routing.validate()
        self.workload.validate()

    # -- extras access -------------------------------------------------------

    def extras_dict(self) -> dict[str, Any]:
        """The extras pairs as a plain dict."""
        return dict(self.extras)

    def extra(self, key: str, default: Any = None) -> Any:
        """Read one extras entry."""
        return self.extras_dict().get(key, default)

    # -- derivation ----------------------------------------------------------

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """Return a copy with dotted-path overrides applied."""
        return apply_overrides(self, overrides)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """Return a copy with a different seed."""
        return dataclasses.replace(self, seed=seed)

    # -- serialisation -------------------------------------------------------

    def to_json_dict(self) -> dict:
        """Return a JSON-serialisable dict (inverse of :meth:`from_json_dict`)."""
        from repro.experiments.runner import jsonify_value

        return {
            "scenario": self.scenario,
            "topology": dataclasses.asdict(self.topology),
            "failures": {
                "kind": self.failures.kind,
                "levels": list(self.failures.levels),
                "behavior": self.failures.behavior,
            },
            "routing": dataclasses.asdict(self.routing),
            "workload": dataclasses.asdict(self.workload),
            "engine": self.engine,
            "seed": self.seed,
            "extras": {key: jsonify_value(value) for key, value in self.extras},
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json_dict` output."""
        failures = dict(data.get("failures", {}))
        if "levels" in failures:
            failures["levels"] = tuple(failures["levels"])
        return cls(
            scenario=data["scenario"],
            topology=TopologySpec(**data.get("topology", {})),
            failures=FailureSpec(**failures),
            routing=RoutingSpec(**data.get("routing", {})),
            workload=WorkloadSpec(**data.get("workload", {})),
            engine=data.get("engine", "object"),
            seed=data.get("seed", 0),
            extras=data.get("extras", {}),
        )


def _freeze(value: Any) -> Any:
    """Make an extras value hashable/immutable (lists become tuples)."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


# ---------------------------------------------------------------------------
# Dotted-path overrides and CLI value parsing
# ---------------------------------------------------------------------------

_SUB_SPECS = ("topology", "failures", "routing", "workload")
_TOP_FIELDS = ("engine", "seed")


def parse_scalar(text: str) -> Any:
    """Parse one CLI value: int, float, bool, None, or the raw string."""
    lowered = text.strip().lower()
    if lowered in ("none", "null"):
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text.strip()


def parse_assignment(text: str) -> tuple[str, str]:
    """Split a ``key=value`` CLI token; raise :class:`SpecError` if malformed."""
    key, separator, value = text.partition("=")
    if not separator or not key.strip():
        raise SpecError(f"expected KEY=VALUE, got {text!r}")
    return key.strip(), value


def _coerce(raw: Any, template: Any) -> Any:
    """Coerce a CLI string to the type of the field it overrides.

    Non-string values (programmatic use) pass through unchanged; strings are
    converted using the current field value as the type template, so
    ``"4096"`` becomes an int for ``topology.nodes`` and ``"0.1,0.5"``
    becomes a float tuple for ``failures.levels``.
    """
    if not isinstance(raw, str):
        return _freeze(raw)
    if isinstance(template, tuple):
        if not raw.strip():
            return ()
        return tuple(parse_scalar(part) for part in raw.split(","))
    if isinstance(template, bool):
        value = parse_scalar(raw)
        if not isinstance(value, bool):
            raise SpecError(f"expected a boolean (true/false), got {raw!r}")
        return value
    if isinstance(template, int):
        value = parse_scalar(raw)
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(f"expected an integer, got {raw!r}")
        return value
    if isinstance(template, float):
        value = parse_scalar(raw)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SpecError(f"expected a number, got {raw!r}")
        return float(value)
    if isinstance(template, str):
        return raw.strip()
    # template is None or an unknown type: best-effort parse.
    return parse_scalar(raw)


def override_template(spec: ScenarioSpec, key: str) -> Any:
    """Return the current value of dotted-path ``key`` (the coercion template)."""
    head, _, tail = key.partition(".")
    if head in _TOP_FIELDS and not tail:
        return getattr(spec, head)
    if head in _SUB_SPECS and tail:
        sub = getattr(spec, head)
        if tail in {field.name for field in dataclasses.fields(sub)}:
            return getattr(sub, tail)
        raise SpecError(
            f"unknown override key {key!r}: {head!r} has fields "
            f"{sorted(field.name for field in dataclasses.fields(sub))}"
        )
    if head == "extras" and tail:
        extras = spec.extras_dict()
        if tail not in extras:
            # Only declared extras are overridable; accepting arbitrary keys
            # would turn a typo'd --set into a silent no-op.
            raise SpecError(
                f"unknown extras key {key!r}; this spec declares "
                f"{sorted(extras) or 'no extras'}"
            )
        return extras[tail]
    valid = [*(f"{s}.<field>" for s in _SUB_SPECS), *_TOP_FIELDS, "extras.<key>"]
    raise SpecError(f"unknown override key {key!r}; expected one of {valid}")


def coerce_override(spec: ScenarioSpec, key: str, value: Any) -> Any:
    """Coerce one override value to the type of the field ``key`` addresses.

    Validates the key against ``spec`` (raising :class:`SpecError` for
    unknown paths) and converts CLI strings to the field's type; typed values
    pass through.  Used by sweeps to canonicalise grid values before seed
    derivation, so a CLI grid (``"128"``) and a Python grid (``128``) produce
    identical cells.
    """
    return _coerce(value, override_template(spec, key))


def apply_overrides(spec: ScenarioSpec, overrides: Mapping[str, Any]) -> ScenarioSpec:
    """Apply dotted-path overrides to ``spec``, returning a new validated spec.

    Keys address common fields through the sub-spec name
    (``"topology.nodes"``), the top-level fields directly (``"engine"``,
    ``"seed"``), and scenario-specific parameters through ``"extras.<key>"``.
    String values are coerced to the overridden field's type; non-string
    values are used as given.  Unknown keys and un-coercible values raise
    :class:`SpecError`.
    """
    updated = spec
    for key, raw in overrides.items():
        template = override_template(updated, key)
        value = _coerce(raw, template)
        head, _, tail = key.partition(".")
        if head in _TOP_FIELDS and not tail:
            updated = dataclasses.replace(updated, **{head: value})
        elif head in _SUB_SPECS:
            sub = dataclasses.replace(getattr(updated, head), **{tail: value})
            updated = dataclasses.replace(updated, **{head: sub})
        else:  # extras.<key> — override_template already rejected anything else
            extras = updated.extras_dict()
            extras[tail] = value
            updated = dataclasses.replace(updated, extras=extras)
    return updated

"""The scenario registry.

A *scenario* is a named, registered recipe that turns a
:class:`~repro.scenarios.spec.ScenarioSpec` into result tables.  The registry
maps names to :class:`ScenarioDefinition` objects so the single
:func:`repro.scenarios.run` entrypoint, the ``repro run`` / ``repro sweep``
CLI, and the parallel sweep workers all resolve scenarios the same way.

Registering a scenario takes a default spec plus an execute function::

    @register_scenario(
        "my-scenario",
        description="what it measures",
        defaults=ScenarioSpec(scenario="my-scenario", ...),
    )
    def _execute(spec: ScenarioSpec) -> ScenarioOutcome | ExperimentTable:
        ...

The execute function may return a :class:`~repro.scenarios.run.ScenarioOutcome`
(tables + raw result + the engine actually used) or, for simple scenarios,
one :class:`~repro.experiments.runner.ExperimentTable` or a list of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.scenarios.spec import ScenarioSpec, SpecError, apply_overrides

__all__ = [
    "ScenarioDefinition",
    "DuplicateScenarioError",
    "UnknownScenarioError",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
]


class DuplicateScenarioError(ValueError):
    """Raised when two scenarios are registered under the same name."""


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not in the registry."""


@dataclass(frozen=True)
class ScenarioDefinition:
    """A registered scenario: name, description, default spec, execute hook."""

    name: str
    description: str
    defaults: ScenarioSpec
    execute: Callable[[ScenarioSpec], Any]

    def make_spec(
        self, overrides: Mapping[str, Any] | None = None, seed: int | None = None
    ) -> ScenarioSpec:
        """Build a spec from the defaults plus optional overrides and seed."""
        spec = self.defaults
        if seed is not None:
            spec = spec.with_seed(seed)
        if overrides:
            spec = apply_overrides(spec, overrides)
        return spec


_REGISTRY: dict[str, ScenarioDefinition] = {}
_BUILTIN_LOADED = False


def _ensure_builtin_scenarios() -> None:
    """Import the built-in scenario library exactly once (lazy to avoid cycles)."""
    global _BUILTIN_LOADED
    if not _BUILTIN_LOADED:
        _BUILTIN_LOADED = True
        import repro.scenarios.churn  # noqa: F401  (registers on import)
        import repro.scenarios.degradation  # noqa: F401  (registers on import)
        import repro.scenarios.library  # noqa: F401  (registers on import)
        import repro.scenarios.service  # noqa: F401  (registers on import)


def register_scenario(
    name: str, *, description: str = "", defaults: ScenarioSpec
) -> Callable[[Callable[[ScenarioSpec], Any]], Callable[[ScenarioSpec], Any]]:
    """Decorator registering ``name`` with its default spec and execute hook.

    Raises
    ------
    DuplicateScenarioError
        If ``name`` is already registered.
    SpecError
        If ``defaults.scenario`` does not match ``name``.
    """
    if defaults.scenario != name:
        raise SpecError(
            f"defaults.scenario is {defaults.scenario!r} but the scenario is "
            f"registered as {name!r}"
        )

    def decorator(execute: Callable[[ScenarioSpec], Any]):
        if name in _REGISTRY:
            raise DuplicateScenarioError(f"scenario {name!r} is already registered")
        doc_lines = (execute.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = ScenarioDefinition(
            name=name,
            description=description or (doc_lines[0] if doc_lines else ""),
            defaults=defaults,
            execute=execute,
        )
        return execute

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent); for tests/plugins."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioDefinition:
    """Look up a registered scenario by name.

    Raises
    ------
    UnknownScenarioError
        Listing the registered names, so typos are self-diagnosing.
    """
    _ensure_builtin_scenarios()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def available_scenarios() -> list[ScenarioDefinition]:
    """All registered scenarios, sorted by name."""
    _ensure_builtin_scenarios()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]

"""The single ``run(spec) -> RunResult`` entrypoint.

Every experiment in the repository — each figure, the Table-1 sweep, every
ablation, the baseline comparison, and any user-defined scenario — executes
through this one function.  The returned :class:`RunResult` is a structured,
JSON-round-trippable record: it echoes the spec, reports the engine actually
used (which can differ from the requested one when a fastpath request is
downgraded), carries the result :class:`~repro.experiments.runner.ExperimentTable`
objects, and includes wall-clock timing.  Sweeps persist these records so
runs can be saved, diffed, and resumed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.experiments.runner import ExperimentTable
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec, SpecError
from repro.telemetry.core import session as telemetry_session

__all__ = ["ScenarioOutcome", "RunResult", "run"]

RUN_RESULT_SCHEMA = "repro.scenarios.run_result/v1"


@dataclass
class ScenarioOutcome:
    """What a scenario's execute hook hands back to :func:`run`.

    ``raw`` is the scenario's native result object (e.g. a
    :class:`~repro.experiments.figure6.Figure6Result`) for in-process callers;
    it is not serialised.  ``engine_used`` reports the engine that actually
    routed queries (``None`` means "as requested").
    """

    tables: list[ExperimentTable]
    raw: Any = None
    engine_used: str | None = None


@dataclass
class RunResult:
    """Structured record of one scenario run.

    JSON round-trip: ``RunResult.from_json(result.to_json())`` reconstructs
    everything except ``raw`` (the in-process result object) — by design, so
    saved sweeps are self-contained data.
    """

    scenario: str
    spec: ScenarioSpec
    engine_requested: str
    engine_used: str
    tables: list[ExperimentTable]
    #: Wall-clock duration; ``None`` when the record was deserialised from
    #: JSON saved without timing.  Resumed sweep cells regain their original
    #: measurement through the sweep file's ``timings`` side table (see
    #: :meth:`repro.scenarios.sweep.SweepResult.save`).
    seconds: float | None = 0.0
    #: Telemetry dump (:meth:`repro.telemetry.Telemetry.to_dict`) when the
    #: run was executed with ``collect_telemetry=True``; excluded from the
    #: deterministic JSON by default, same pattern as ``include_timing``.
    telemetry: dict | None = None
    raw: Any = field(default=None, repr=False, compare=False)

    def to_text(self) -> str:
        """Render every result table as aligned text."""
        return "\n\n".join(table.to_text() for table in self.tables)

    def to_csv(self) -> str:
        """Render the result tables as CSV blocks (titles as ``#`` comments)."""
        from repro.experiments.runner import tables_to_csv

        return tables_to_csv(self.tables)

    def to_json_dict(
        self, include_timing: bool = True, include_telemetry: bool = False
    ) -> dict:
        """Return a JSON-serialisable dict.

        ``include_timing=False`` drops the wall-clock field so two runs of
        the same spec serialise byte-identically (used by sweep determinism
        checks and resume).  ``include_telemetry`` opts the (equally
        nondeterministic) telemetry dump in; it is excluded by default for
        the same reason.
        """
        data = {
            "schema": RUN_RESULT_SCHEMA,
            "scenario": self.scenario,
            "spec": self.spec.to_json_dict(),
            "engine_requested": self.engine_requested,
            "engine_used": self.engine_used,
            "tables": [table.to_json_dict() for table in self.tables],
        }
        if include_timing and self.seconds is not None:
            data["seconds"] = self.seconds
        if include_telemetry and self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    def to_json(
        self,
        indent: int | None = 2,
        include_timing: bool = True,
        include_telemetry: bool = False,
    ) -> str:
        """Serialise to a JSON string with deterministic key order."""
        return json.dumps(
            self.to_json_dict(
                include_timing=include_timing, include_telemetry=include_telemetry
            ),
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_json_dict` output (``raw`` is lost)."""
        schema = data.get("schema", RUN_RESULT_SCHEMA)
        if schema != RUN_RESULT_SCHEMA:
            raise SpecError(f"unsupported RunResult schema {schema!r}")
        return cls(
            scenario=data["scenario"],
            spec=ScenarioSpec.from_json_dict(data["spec"]),
            engine_requested=data["engine_requested"],
            engine_used=data["engine_used"],
            tables=[ExperimentTable.from_json_dict(entry) for entry in data["tables"]],
            seconds=data.get("seconds"),
            telemetry=data.get("telemetry"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Rebuild a result from a :meth:`to_json` string."""
        return cls.from_json_dict(json.loads(text))


def _normalise_outcome(outcome: Any) -> ScenarioOutcome:
    """Accept the convenience return shapes the registry documents."""
    if isinstance(outcome, ScenarioOutcome):
        return outcome
    if isinstance(outcome, ExperimentTable):
        return ScenarioOutcome(tables=[outcome])
    if isinstance(outcome, (list, tuple)) and all(
        isinstance(item, ExperimentTable) for item in outcome
    ):
        return ScenarioOutcome(tables=list(outcome))
    raise SpecError(
        "a scenario must return a ScenarioOutcome, an ExperimentTable, or a "
        f"list of ExperimentTables, got {type(outcome).__name__}"
    )


def run(spec: ScenarioSpec, collect_telemetry: bool = False) -> RunResult:
    """Execute the scenario described by ``spec`` and return its result.

    The spec is validated (it validates itself on construction, but a spec
    deserialised from edited JSON is re-checked here), the scenario is looked
    up in the registry, executed, and timed.

    ``collect_telemetry=True`` executes the scenario inside its own
    :func:`repro.telemetry.session` and attaches the resulting dump to
    :attr:`RunResult.telemetry`; results are bit-identical either way (the
    instrumentation only observes).  When a session is already active and
    ``collect_telemetry`` is off, the scenario's spans and counters land in
    that outer session — which is how the benchmark scripts aggregate.
    """
    spec.validate()
    definition = get_scenario(spec.scenario)
    started = time.perf_counter()
    if collect_telemetry:
        with telemetry_session() as tel:
            outcome = _normalise_outcome(definition.execute(spec))
        telemetry_dump = tel.to_dict()
    else:
        outcome = _normalise_outcome(definition.execute(spec))
        telemetry_dump = None
    seconds = time.perf_counter() - started
    return RunResult(
        scenario=spec.scenario,
        spec=spec,
        engine_requested=spec.engine,
        engine_used=outcome.engine_used or spec.engine,
        tables=outcome.tables,
        seconds=seconds,
        telemetry=telemetry_dump,
        raw=outcome.raw,
    )

"""The ``service`` scenario: sustained mixed traffic as a first-class run.

The ROADMAP's north star is an overlay *serving* heavy lookup traffic while
membership churns underneath it — not a one-shot figure.  The churn scenario
measures round-by-round repair quality; this scenario measures **steady
state**: a deterministic interleaved schedule of lookup batches, churn
bursts, and periodic batched repair, sustained over a configurable round
budget, reporting throughput-facing numbers (success rate, hop and modelled
latency p50/p99 per round and in aggregate).

Determinism contract
--------------------
Every table cell is a pure function of the spec: churn events come from
:class:`~repro.simulation.workload.ChurnWorkload` under a derived seed, the
interleave is computed by the pure :func:`build_service_schedule`, lookups by
:class:`~repro.simulation.workload.LookupWorkload`, and per-lookup latency by
the log-normal per-hop model consumed in query order.  Both engines therefore
produce **identical tables** (the CI ``service`` job asserts it): the object
engine walks the mutating graph, the fastpath engine follows it through
recorded snapshot deltas and rebases its batch router at every burst.

Wall-clock numbers — steady-state QPS, per-batch milliseconds — are real
measurements and therefore live in telemetry only (``service.qps`` gauge,
``service.lookup_ms`` histogram), never in the deterministic tables; the
delta-refresh cost rides the existing ``refresh.*`` instrumentation plus a
``service.refresh_ops`` counter.  p50/p99 quantiles reuse the telemetry
:class:`~repro.telemetry.core.Histogram` (fixed buckets, deterministic
interpolation) so the tables stay engine- and process-independent.

Registered scenario
-------------------
``service``
    One table pair per ``failures.levels`` entry (the churn-rate sweep
    axis): per-round service quality plus a steady-state summary.
    Grid-ready axes: ``failures.levels``, ``topology.nodes``, ``engine``,
    ``routing.recovery``, ``workload.searches``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.construction import build_heuristic_network
from repro.core.maintenance import MaintenanceDaemon, MaintenanceReport
from repro.core.routing import GreedyRouter, RecoveryStrategy
from repro.experiments.runner import ExperimentTable
from repro.fastpath import (
    BatchGreedyRouter,
    DeltaRecorder,
    DeltaSnapshot,
    select_engine,
)
from repro.scenarios.churn import _route_round
from repro.scenarios.registry import register_scenario
from repro.scenarios.run import ScenarioOutcome
from repro.scenarios.spec import (
    FailureSpec,
    RoutingSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
)
from repro.simulation.latency import LogNormalLatency
from repro.simulation.workload import ChurnWorkload, LookupWorkload
from repro.telemetry.core import (
    HOP_BUCKETS,
    MS_BUCKETS,
    Histogram,
    current as telemetry_current,
)
from repro.util.rng import derive_seed

__all__ = [
    "ServiceRound",
    "build_service_schedule",
    "run_service_rounds",
    "service_spec",
]


def build_service_schedule(
    rounds: int,
    bursts_per_round: int,
    repair_every: int,
    events: list,
) -> list[tuple]:
    """The deterministic interleave: one op list driving the whole run.

    A *burst* is the scheduling quantum: each round is ``bursts_per_round``
    bursts, and each burst applies its slice of the churn schedule, then a
    batched repair pass when its global index hits the ``repair_every``
    cadence, then routes one lookup batch.  Returns the flat op list —
    ``("churn", round, burst, (event, ...))``, ``("repair", round, burst)``,
    ``("lookup", round, burst)`` — a pure function of its arguments, which is
    what the determinism unit test pins.

    ``events`` are :class:`~repro.simulation.workload.ChurnEvent` records
    with fractional times in ``[0, rounds)``; event ``time * bursts_per_round``
    picks the burst, clamped into range.
    """
    if rounds < 1:
        raise SpecError(f"rounds must be >= 1, got {rounds!r}")
    if bursts_per_round < 1:
        raise SpecError(f"bursts_per_round must be >= 1, got {bursts_per_round!r}")
    if repair_every < 1:
        raise SpecError(f"repair_every must be >= 1, got {repair_every!r}")
    total_bursts = rounds * bursts_per_round
    buckets: dict[int, list] = {}
    for event in events:
        slot = min(total_bursts - 1, max(0, int(event.time * bursts_per_round)))
        buckets.setdefault(slot, []).append(event)
    schedule: list[tuple] = []
    for round_index in range(rounds):
        for burst_index in range(bursts_per_round):
            slot = round_index * bursts_per_round + burst_index
            burst_events = buckets.get(slot)
            if burst_events:
                schedule.append(("churn", round_index, burst_index, tuple(burst_events)))
            if (slot + 1) % repair_every == 0:
                schedule.append(("repair", round_index, burst_index))
            schedule.append(("lookup", round_index, burst_index))
    return schedule


@dataclass
class ServiceRound:
    """Steady-state service quality measured over one round."""

    round_index: int
    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    live_nodes: int = 0
    lookups: int = 0
    successes: int = 0
    repair: MaintenanceReport = field(default_factory=MaintenanceReport)
    hop_hist: Histogram = field(
        default_factory=lambda: Histogram("service.hops", HOP_BUCKETS)
    )
    latency_hist: Histogram = field(
        default_factory=lambda: Histogram("service.latency", MS_BUCKETS)
    )

    @property
    def events(self) -> int:
        return self.joins + self.leaves + self.crashes

    @property
    def success_rate(self) -> float:
        return self.successes / self.lookups if self.lookups else 0.0


def _query_latencies(
    successful_hops, median: float, sigma: float, seed: int
) -> list[float]:
    """Per-query end-to-end latencies under the log-normal per-hop model.

    Draws are consumed in query order (hop by hop), so the list — and every
    quantile over it — is deterministic in ``seed`` and identical across
    engines whenever the hop counts are.
    """
    if successful_hops.size == 0 or median <= 0:
        return []
    model = LogNormalLatency(median=median, sigma=sigma, seed=seed)
    totals: list[float] = []
    for hop_count in successful_hops.tolist():
        totals.append(sum(model.sample(0, 0) for _ in range(hop_count)))
    return totals


def run_service_rounds(
    nodes: int,
    occupied: int,
    links_per_node: int | None,
    rounds: int,
    bursts_per_round: int,
    repair_every: int,
    churn_rate: float,
    crash_fraction: float,
    searches: int,
    recovery: RecoveryStrategy,
    seed: int,
    engine: str,
    latency_median: float = 1.0,
    latency_sigma: float = 0.4,
) -> tuple[list[ServiceRound], Histogram, Histogram, str]:
    """Drive the interleaved service schedule; measure every round.

    Returns ``(rounds, hop_hist, latency_hist, engine_used)`` — the two
    histograms aggregate every successful lookup of the whole run and feed
    the steady-state summary table.  On ``engine="fastpath"`` the batch
    router follows the overlay through recorded deltas, rebasing once per
    burst; numbers are identical to the object engine at the same seed.
    """
    tel = telemetry_current()
    construction = build_heuristic_network(
        nodes,
        occupied=occupied,
        links_per_node=links_per_node,
        seed=derive_seed(seed, "service-build"),
    )
    graph = construction.graph
    daemon = MaintenanceDaemon(construction)
    engine_used = select_engine(engine, recovery)

    recorder = mirror = batch_router = None
    route_seed = derive_seed(seed, "service-route")
    if engine_used == "fastpath":
        recorder = DeltaRecorder.attach(graph)
        mirror = DeltaSnapshot.from_graph(graph)
        batch_router = BatchGreedyRouter(
            mirror.snapshot(), recovery=recovery, seed=route_seed
        )
    scalar_router = None
    if engine_used == "object":
        scalar_router = GreedyRouter(graph, recovery=recovery, seed=route_seed)

    members = sorted(graph.labels())
    events: list = []
    if churn_rate > 0:
        workload = ChurnWorkload(
            space_size=nodes,
            join_rate=max(churn_rate * len(members) / 2.0, 1e-9),
            leave_rate=max(churn_rate * len(members) / 2.0, 1e-9),
            crash_fraction=crash_fraction,
            seed=derive_seed(seed, "service-events"),
        )
        events = workload.schedule(duration=float(rounds), initial_members=members)
    schedule = build_service_schedule(rounds, bursts_per_round, repair_every, events)

    lookups = LookupWorkload(seed=derive_seed(seed, "service-lookups"))
    results = [ServiceRound(round_index=index) for index in range(rounds)]
    hop_hist = Histogram("service.hops", HOP_BUCKETS)
    latency_hist = Histogram("service.latency", MS_BUCKETS)
    route_seconds = 0.0
    total_lookups = 0
    try:
        for op in schedule:
            record = results[op[1]]
            if op[0] == "churn":
                for event in op[3]:
                    if event.action == "join" and not graph.has_node(event.address):
                        construction.add_point(event.address)
                        record.joins += 1
                    elif event.action == "leave" and graph.has_node(event.address):
                        record.repair = record.repair.merge(
                            daemon.handle_departure(event.address)
                        )
                        record.leaves += 1
                    elif event.action == "crash" and graph.is_alive(event.address):
                        graph.fail_node(event.address)
                        record.crashes += 1
            elif op[0] == "repair":
                record.repair = record.repair.merge(daemon.repair_all_batched())
            else:  # lookup
                live = sorted(graph.labels(only_alive=True))
                record.live_nodes = len(live)
                if len(live) < 2 or searches < 1:
                    continue
                pairs = lookups.pairs(live, searches)
                if tel is not None and recorder is not None:
                    tel.count("service.refresh_ops", len(recorder))
                if tel is not None:
                    # repro: allow[RPR001] — timing only reachable with telemetry on
                    started = time.perf_counter()
                success, hops = _route_round(
                    pairs, engine_used, graph, scalar_router,
                    recorder, mirror, batch_router, recovery, live,
                )
                if tel is not None:
                    # repro: allow[RPR001] — timing only reachable with telemetry on
                    elapsed = time.perf_counter() - started
                    route_seconds += elapsed
                    tel.observe("service.lookup_ms", elapsed * 1e3, buckets=MS_BUCKETS)
                    tel.count("service.lookups", len(pairs))
                total_lookups += len(pairs)
                record.lookups += len(pairs)
                record.successes += int(success.sum())
                successful_hops = hops[success]
                record.hop_hist.record_many(successful_hops)
                hop_hist.record_many(successful_hops)
                latencies = _query_latencies(
                    successful_hops,
                    median=latency_median,
                    sigma=latency_sigma,
                    seed=derive_seed(seed, "service-latency", op[1], op[2]),
                )
                record.latency_hist.record_many(latencies)
                latency_hist.record_many(latencies)
        if tel is not None:
            tel.count("service.rounds", rounds)
            if route_seconds > 0.0:
                tel.gauge("service.qps", total_lookups / route_seconds)
    finally:
        if recorder is not None:
            recorder.detach()
    return results, hop_hist, latency_hist, engine_used


# ---------------------------------------------------------------------------
# service
# ---------------------------------------------------------------------------


def service_spec(
    nodes: int = 1 << 10,
    occupancy: float = 0.5,
    links_per_node: int | None = None,
    rounds: int = 4,
    bursts_per_round: int = 4,
    repair_every: int = 2,
    churn_rate: float = 0.02,
    crash_fraction: float = 0.5,
    searches: int = 40,
    recovery: str = RecoveryStrategy.BACKTRACK.value,
    seed: int = 0,
    engine: str = "object",
) -> ScenarioSpec:
    """Spec for the ``"service"`` scenario.

    ``topology.nodes`` is the identifier-space size; ``extras.occupancy`` of
    it is initially occupied.  ``workload.searches`` is the lookup-batch
    size *per burst* (``rounds * bursts_per_round`` batches total) and
    ``failures.levels`` carries the churn rate — the natural sweep axes,
    e.g.::

        repro sweep service --grid failures.levels=0.01,0.05 \\
            --grid engine=object,fastpath --set topology.nodes=2048
    """
    return ScenarioSpec(
        scenario="service",
        topology=TopologySpec(kind="heuristic", nodes=nodes, links_per_node=links_per_node),
        failures=FailureSpec(kind="churn", levels=(churn_rate,)),
        routing=RoutingSpec(recovery=recovery),
        workload=WorkloadSpec(searches=searches),
        engine=engine,
        seed=seed,
        extras={
            "occupancy": occupancy,
            "rounds": rounds,
            "bursts_per_round": bursts_per_round,
            "repair_every": repair_every,
            "crash_fraction": crash_fraction,
            "latency_median": 1.0,
            "latency_sigma": 0.4,
        },
    )


def _service_parameters(spec: ScenarioSpec) -> dict:
    """Decode and validate the service spec into run_service_rounds kwargs."""
    occupancy = float(spec.extra("occupancy", 0.5))
    if not 0.0 < occupancy <= 1.0:
        raise SpecError(f"extras.occupancy must be in (0, 1], got {occupancy!r}")
    rounds = int(spec.extra("rounds", 4))
    if rounds < 1:
        raise SpecError(f"extras.rounds must be >= 1, got {rounds!r}")
    bursts_per_round = int(spec.extra("bursts_per_round", 4))
    if bursts_per_round < 1:
        raise SpecError(
            f"extras.bursts_per_round must be >= 1, got {bursts_per_round!r}"
        )
    repair_every = int(spec.extra("repair_every", 2))
    if repair_every < 1:
        raise SpecError(f"extras.repair_every must be >= 1, got {repair_every!r}")
    return {
        "nodes": spec.topology.nodes,
        "occupied": max(4, int(spec.topology.nodes * occupancy)),
        "links_per_node": spec.topology.links_per_node,
        "rounds": rounds,
        "bursts_per_round": bursts_per_round,
        "repair_every": repair_every,
        "crash_fraction": float(spec.extra("crash_fraction", 0.5)),
        "searches": spec.workload.searches,
        "recovery": spec.routing.recovery_strategy(),
        "engine": spec.engine,
        "latency_median": float(spec.extra("latency_median", 1.0)),
        "latency_sigma": float(spec.extra("latency_sigma", 0.4)),
    }


def _quantiles(histogram: Histogram) -> tuple[float, float]:
    return round(histogram.quantile(0.5), 6), round(histogram.quantile(0.99), 6)


@register_scenario(
    "service",
    description="sustained mixed traffic: interleaved lookup batches, churn bursts, and periodic batched repair over a round budget — per-round and steady-state success/hop/latency quantiles (both engines, delta-driven fastpath; QPS in telemetry)",
    defaults=service_spec(),
)
def _service(spec: ScenarioSpec) -> ScenarioOutcome:
    """One per-round table plus a steady-state summary per churn-rate level."""
    parameters = _service_parameters(spec)
    rates = [float(level) for level in spec.failures.levels] or [0.02]
    tables: list[ExperimentTable] = []
    raw: list[tuple[float, list[ServiceRound]]] = []
    engine_used = spec.engine
    for index, rate in enumerate(rates):
        rows, hop_hist, latency_hist, engine_used = run_service_rounds(
            churn_rate=rate,
            # Derived per level, so a level's numbers never change when the
            # sweep grows more levels.
            seed=derive_seed(spec.seed, "service", index),
            **parameters,
        )
        raw.append((rate, rows))
        table = ExperimentTable(
            title=(
                f"service: n={parameters['nodes']} space, "
                f"{parameters['occupied']} initial nodes, rate {rate:.3f}/round, "
                f"{parameters['bursts_per_round']} bursts/round, "
                f"recovery {spec.routing.recovery}"
            ),
            columns=[
                "round", "events", "joins", "leaves", "crashes", "live",
                "lookups", "success_rate", "hop_p50", "hop_p99",
                "latency_p50", "latency_p99", "repair_messages",
            ],
            notes="quantiles interpolate the fixed-bucket telemetry histograms "
            "(deterministic); latency is the log-normal per-hop model over "
            "successful lookups; wall-clock QPS and per-batch milliseconds "
            "are telemetry-only (service.qps / service.lookup_ms).",
        )
        for record in rows:
            hop_p50, hop_p99 = _quantiles(record.hop_hist)
            lat_p50, lat_p99 = _quantiles(record.latency_hist)
            table.add_row(
                record.round_index, record.events, record.joins, record.leaves,
                record.crashes, record.live_nodes, record.lookups,
                round(record.success_rate, 6), hop_p50, hop_p99,
                lat_p50, lat_p99, record.repair.messages,
            )
        tables.append(table)

        total_lookups = sum(record.lookups for record in rows)
        total_successes = sum(record.successes for record in rows)
        total_repair = MaintenanceReport()
        for record in rows:
            total_repair = total_repair.merge(record.repair)
        hop_p50, hop_p99 = _quantiles(hop_hist)
        lat_p50, lat_p99 = _quantiles(latency_hist)
        summary = ExperimentTable(
            title=f"service steady state: rate {rate:.3f}/round",
            columns=[
                "rounds", "lookups", "events", "success_rate",
                "hop_p50", "hop_p99", "latency_p50", "latency_p99",
                "repair_messages",
            ],
            notes="aggregates over every lookup batch of the run.",
        )
        summary.add_row(
            parameters["rounds"], total_lookups,
            sum(record.events for record in rows),
            round(total_successes / total_lookups, 6) if total_lookups else 0.0,
            hop_p50, hop_p99, lat_p50, lat_p99, total_repair.messages,
        )
        tables.append(summary)
    return ScenarioOutcome(tables=tables, raw=raw, engine_used=engine_used)

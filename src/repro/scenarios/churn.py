"""Churn and maintenance scenarios: the dynamic half of the paper, registered.

The paper's central claim is not that the power-law overlay routes well once,
but that it *stays* routable while nodes join, leave, and crash — with repair
work cheap enough to amortise over searches (Sections 2 and 5).  These
scenarios make that claim measurable through the same declarative API as the
static figures, wiring together:

* the :mod:`repro.simulation` workload generators
  (:class:`~repro.simulation.workload.ChurnWorkload` schedules,
  :class:`~repro.simulation.workload.LookupWorkload` query traffic,
  :class:`~repro.simulation.latency.LogNormalLatency` per-hop latencies);
* the Section-5 construction heuristic and the
  :class:`~repro.core.maintenance.MaintenanceDaemon` repair pass
  (:meth:`~repro.core.maintenance.MaintenanceDaemon.repair_all_batched`);
* both routing engines — the object engine walks the mutating graph, the
  fastpath engine follows it through **incremental snapshot deltas**
  (:class:`~repro.fastpath.DeltaRecorder` /
  :class:`~repro.fastpath.DeltaSnapshot`), never recompiling.  The two
  report identical numbers, which the CI churn smoke job asserts.

Registered scenarios
--------------------
``churn``
    Round-by-round evolution under a given churn rate: membership, repair
    traffic, lookup success/hops/latency per round.  Grid-ready axes:
    ``failures.levels`` (churn rate), ``topology.nodes``,
    ``routing.recovery``, ``engine``.
``maintenance-cost``
    Repair traffic as a function of churn rate: one row per rate level with
    aggregate maintenance counters, messages per event, and a post-churn
    routability probe.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.construction import build_heuristic_network
from repro.core.maintenance import MaintenanceDaemon, MaintenanceReport
from repro.core.routing import GreedyRouter, RecoveryStrategy
from repro.experiments.runner import ExperimentTable
from repro.fastpath import (
    BatchGreedyRouter,
    DeltaRecorder,
    DeltaSnapshot,
    select_engine,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.run import ScenarioOutcome
from repro.scenarios.spec import (
    FailureSpec,
    RoutingSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
)
from repro.simulation.latency import LogNormalLatency
from repro.simulation.workload import ChurnWorkload, LookupWorkload
from repro.telemetry.core import current as telemetry_current
from repro.util.rng import derive_seed

__all__ = ["churn_spec", "maintenance_cost_spec", "ChurnRound", "run_churn_rounds"]


@dataclass
class ChurnRound:
    """Everything measured in one churn round."""

    round_index: int
    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    live_nodes: int = 0
    repair: MaintenanceReport = field(default_factory=MaintenanceReport)
    departure_repairs: MaintenanceReport = field(default_factory=MaintenanceReport)
    success_rate: float = 0.0
    mean_hops: float = 0.0
    mean_latency: float = 0.0

    @property
    def events(self) -> int:
        return self.joins + self.leaves + self.crashes

    def total_repair(self) -> MaintenanceReport:
        """Departure-triggered plus periodic repair work of this round."""
        return self.repair.merge(self.departure_repairs)


def run_churn_rounds(
    nodes: int,
    occupied: int,
    links_per_node: int | None,
    rounds: int,
    churn_rate: float,
    crash_fraction: float,
    searches: int,
    recovery: RecoveryStrategy,
    seed: int,
    engine: str,
    latency_median: float = 1.0,
    latency_sigma: float = 0.4,
) -> tuple[list[ChurnRound], str]:
    """Run ``rounds`` churn rounds and measure each; return (rounds, engine used).

    One round = apply this round's scheduled join/leave/crash events, run a
    batched repair pass, then route ``searches`` uniform lookups between live
    nodes.  On ``engine="fastpath"`` the router follows the overlay through
    recorded snapshot deltas (never recompiling); numbers are identical to
    the object engine at the same seed — the engines are hop-for-hop
    compatible and every draw is derived from ``seed``.
    """
    tel = telemetry_current()
    with tel.span("build") if tel is not None else nullcontext():
        construction = build_heuristic_network(
            nodes,
            occupied=occupied,
            links_per_node=links_per_node,
            seed=derive_seed(seed, "churn-build"),
        )
    graph = construction.graph
    daemon = MaintenanceDaemon(construction)
    engine_used = select_engine(engine, recovery)

    recorder = mirror = batch_router = None
    route_seed = derive_seed(seed, "churn-route")
    if engine_used == "fastpath":
        recorder = DeltaRecorder.attach(graph)
        with tel.span("compile") if tel is not None else nullcontext():
            mirror = DeltaSnapshot.from_graph(graph)
            batch_router = BatchGreedyRouter(
                mirror.snapshot(), recovery=recovery, seed=route_seed
            )
    scalar_router = None
    if engine_used == "object":
        scalar_router = GreedyRouter(graph, recovery=recovery, seed=route_seed)

    members = sorted(graph.labels())
    events_by_round: dict[int, list] = {}
    if churn_rate > 0 and rounds > 0:
        workload = ChurnWorkload(
            space_size=nodes,
            join_rate=max(churn_rate * len(members) / 2.0, 1e-9),
            leave_rate=max(churn_rate * len(members) / 2.0, 1e-9),
            crash_fraction=crash_fraction,
            seed=derive_seed(seed, "churn-events"),
        )
        for event in workload.schedule(duration=float(rounds), initial_members=members):
            bucket = min(rounds - 1, max(0, int(event.time)))
            events_by_round.setdefault(bucket, []).append(event)

    lookups = LookupWorkload(seed=derive_seed(seed, "churn-lookups"))
    results: list[ChurnRound] = []
    try:
        for round_index in range(rounds):
            record = ChurnRound(round_index=round_index)
            for event in events_by_round.get(round_index, []):
                if event.action == "join" and not graph.has_node(event.address):
                    construction.add_point(event.address)
                    record.joins += 1
                elif event.action == "leave" and graph.has_node(event.address):
                    record.departure_repairs = record.departure_repairs.merge(
                        daemon.handle_departure(event.address)
                    )
                    record.leaves += 1
                elif event.action == "crash" and graph.is_alive(event.address):
                    graph.fail_node(event.address)
                    record.crashes += 1
            record.repair = daemon.repair_all_batched()
            live = sorted(graph.labels(only_alive=True))
            record.live_nodes = len(live)
            if len(live) >= 2 and searches > 0:
                pairs = lookups.pairs(live, searches)
                success, hops = _route_round(
                    pairs, engine_used, graph, scalar_router,
                    recorder, mirror, batch_router, recovery, live,
                )
                record.success_rate = float(success.mean()) if success.size else 0.0
                successful_hops = hops[success]
                record.mean_hops = (
                    float(successful_hops.mean()) if successful_hops.size else 0.0
                )
                record.mean_latency = _mean_latency(
                    successful_hops,
                    median=latency_median,
                    sigma=latency_sigma,
                    seed=derive_seed(seed, "churn-latency", round_index),
                )
            results.append(record)
    finally:
        if recorder is not None:
            recorder.detach()
    return results, engine_used


def _route_round(
    pairs, engine_used, graph, scalar_router, recorder, mirror, batch_router,
    recovery, live,
) -> tuple[np.ndarray, np.ndarray]:
    """Route one round's lookups; return per-query (success, hops) arrays."""
    if engine_used == "fastpath":
        mirror.apply(recorder.drain())
        batch_router.rebase(mirror.snapshot())
        if recovery is RecoveryStrategy.RANDOM_REROUTE:
            # The scalar detour pool is graph.labels(only_alive=True) in
            # node-table order; hand the batch router the same order.
            batch_router.reroute_pool = graph.labels(only_alive=True)
        result = batch_router.route_pairs(pairs)
        return result.success.copy(), result.hops.copy()
    success = np.zeros(len(pairs), dtype=bool)
    hops = np.zeros(len(pairs), dtype=np.int64)
    for index, (source, target) in enumerate(pairs):
        route = scalar_router.route(source, target)
        success[index] = route.success
        hops[index] = route.hops
    return success, hops


def _mean_latency(
    successful_hops: np.ndarray, median: float, sigma: float, seed: int
) -> float:
    """Mean end-to-end latency of the successful lookups.

    Each hop's latency is drawn from the simulation package's log-normal
    model; draws are consumed in query order, so the value is deterministic
    in ``seed`` and identical across engines (the hop counts are).
    """
    if successful_hops.size == 0 or median <= 0:
        return 0.0
    model = LogNormalLatency(median=median, sigma=sigma, seed=seed)
    total = 0.0
    for hop_count in successful_hops.tolist():
        total += sum(model.sample(0, 0) for _ in range(hop_count))
    return total / successful_hops.size


# ---------------------------------------------------------------------------
# churn
# ---------------------------------------------------------------------------


def churn_spec(
    nodes: int = 1 << 10,
    occupancy: float = 0.5,
    links_per_node: int | None = None,
    rounds: int = 6,
    churn_rate: float = 0.05,
    crash_fraction: float = 0.5,
    searches: int = 100,
    recovery: str = RecoveryStrategy.BACKTRACK.value,
    seed: int = 0,
    engine: str = "object",
) -> ScenarioSpec:
    """Spec for the ``"churn"`` scenario.

    ``topology.nodes`` is the identifier-space size; ``extras.occupancy``
    of it is initially occupied (leaving room for joins).
    ``failures.levels`` carries the per-round churn rate — the natural
    ``repro sweep`` axis, e.g.::

        repro sweep churn --grid failures.levels=0.02,0.05,0.1 \\
            --grid engine=object,fastpath --set topology.nodes=2048
    """
    return ScenarioSpec(
        scenario="churn",
        topology=TopologySpec(kind="heuristic", nodes=nodes, links_per_node=links_per_node),
        failures=FailureSpec(kind="churn", levels=(churn_rate,)),
        routing=RoutingSpec(recovery=recovery),
        workload=WorkloadSpec(searches=searches),
        engine=engine,
        seed=seed,
        extras={
            "occupancy": occupancy,
            "rounds": rounds,
            "crash_fraction": crash_fraction,
            "latency_median": 1.0,
            "latency_sigma": 0.4,
        },
    )


def _churn_parameters(spec: ScenarioSpec) -> dict:
    """Shared spec decoding for the two churn scenarios."""
    occupancy = float(spec.extra("occupancy", 0.5))
    if not 0.0 < occupancy <= 1.0:
        raise SpecError(f"extras.occupancy must be in (0, 1], got {occupancy!r}")
    rounds = int(spec.extra("rounds", 6))
    if rounds < 1:
        raise SpecError(f"extras.rounds must be >= 1, got {rounds!r}")
    occupied = max(4, int(spec.topology.nodes * occupancy))
    return {
        "nodes": spec.topology.nodes,
        "occupied": occupied,
        "links_per_node": spec.topology.links_per_node,
        "rounds": rounds,
        "crash_fraction": float(spec.extra("crash_fraction", 0.5)),
        "searches": spec.workload.searches,
        "recovery": spec.routing.recovery_strategy(),
        "engine": spec.engine,
    }


@register_scenario(
    "churn",
    description="round-by-round join/leave/crash churn with batched repair: membership, repair traffic, and lookup quality per round (both engines, delta-driven fastpath)",
    defaults=churn_spec(),
)
def _churn(spec: ScenarioSpec) -> ScenarioOutcome:
    """One table per ``failures.levels`` entry (the churn-rate sweep axis);
    each rate runs an independently seeded network."""
    parameters = _churn_parameters(spec)
    rates = [float(level) for level in spec.failures.levels] or [0.05]
    tables: list[ExperimentTable] = []
    raw: list[tuple[float, list[ChurnRound]]] = []
    engine_used = spec.engine
    for index, rate in enumerate(rates):
        rows, engine_used = run_churn_rounds(
            churn_rate=rate,
            # Always derived per level, so a rate's numbers do not change
            # when further levels are added to the sweep.
            seed=derive_seed(spec.seed, "churn", index),
            latency_median=float(spec.extra("latency_median", 1.0)),
            latency_sigma=float(spec.extra("latency_sigma", 0.4)),
            **parameters,
        )
        raw.append((rate, rows))
        table = ExperimentTable(
            title=(
                f"churn: n={parameters['nodes']} space, {parameters['occupied']} initial nodes, "
                f"rate {rate:.3f}/round, recovery {spec.routing.recovery}"
            ),
            columns=[
                "round", "joins", "leaves", "crashes", "live",
                "links_dropped", "links_regenerated", "ring_repairs",
                "repair_messages", "success_rate", "mean_hops", "mean_latency",
            ],
            notes="repair counters include departure-triggered and periodic repair; "
            "latency is the log-normal per-hop model over successful lookups.",
        )
        for record in rows:
            repair = record.total_repair()
            table.add_row(
                record.round_index, record.joins, record.leaves, record.crashes,
                record.live_nodes, repair.dead_links_dropped, repair.links_regenerated,
                repair.ring_repairs, repair.messages,
                round(record.success_rate, 6), round(record.mean_hops, 6),
                round(record.mean_latency, 6),
            )
        tables.append(table)
    return ScenarioOutcome(tables=tables, raw=raw, engine_used=engine_used)


# ---------------------------------------------------------------------------
# maintenance-cost
# ---------------------------------------------------------------------------


def maintenance_cost_spec(
    nodes: int = 1 << 10,
    occupancy: float = 0.5,
    links_per_node: int | None = None,
    rounds: int = 4,
    churn_rates: tuple[float, ...] = (0.01, 0.02, 0.05, 0.1),
    crash_fraction: float = 0.5,
    searches: int = 100,
    recovery: str = RecoveryStrategy.BACKTRACK.value,
    seed: int = 0,
    engine: str = "object",
) -> ScenarioSpec:
    """Spec for the ``"maintenance-cost"`` scenario.

    ``failures.levels`` is the churn-rate sweep; each level runs its own
    independently built network (seed derived per level).
    """
    return ScenarioSpec(
        scenario="maintenance-cost",
        topology=TopologySpec(kind="heuristic", nodes=nodes, links_per_node=links_per_node),
        failures=FailureSpec(kind="churn", levels=tuple(churn_rates)),
        routing=RoutingSpec(recovery=recovery),
        workload=WorkloadSpec(searches=searches),
        engine=engine,
        seed=seed,
        extras={
            "occupancy": occupancy,
            "rounds": rounds,
            "crash_fraction": crash_fraction,
        },
    )


@register_scenario(
    "maintenance-cost",
    description="repair traffic vs churn rate: maintenance counters, messages per event, and post-churn routability at each rate level",
    defaults=maintenance_cost_spec(),
)
def _maintenance_cost(spec: ScenarioSpec) -> ScenarioOutcome:
    parameters = _churn_parameters(spec)
    rates = [float(level) for level in spec.failures.levels] or [0.05]
    table = ExperimentTable(
        title=(
            f"maintenance cost: n={parameters['nodes']} space, "
            f"{parameters['occupied']} initial nodes, {parameters['rounds']} rounds per rate"
        ),
        columns=[
            "churn_rate", "events", "joins", "leaves", "crashes",
            "links_dropped", "links_regenerated", "ring_repairs", "messages",
            "messages_per_event", "final_success_rate", "final_mean_hops",
        ],
        notes="messages follow the paper's accounting: one per dead-link probe "
        "plus one search per regenerated link; the routability probe routes "
        "the workload's searches after the final repair pass.",
    )
    engine_used = spec.engine
    raw: list[tuple[float, list[ChurnRound]]] = []
    for index, rate in enumerate(rates):
        rows, engine_used = run_churn_rounds(
            churn_rate=rate,
            seed=derive_seed(spec.seed, "maintenance-cost", index),
            **parameters,
        )
        raw.append((rate, rows))
        total = MaintenanceReport()
        joins = leaves = crashes = 0
        for record in rows:
            total = total.merge(record.total_repair())
            joins += record.joins
            leaves += record.leaves
            crashes += record.crashes
        events = joins + leaves + crashes
        last = rows[-1]
        table.add_row(
            rate, events, joins, leaves, crashes,
            total.dead_links_dropped, total.links_regenerated,
            total.ring_repairs, total.messages,
            round(total.messages / events, 6) if events else 0.0,
            round(last.success_rate, 6), round(last.mean_hops, 6),
        )
    return ScenarioOutcome(tables=[table], raw=raw, engine_used=engine_used)

"""Parameter-grid sweeps with deterministic seeding and parallel execution.

A :class:`Sweep` expands a grid of dotted-path overrides (the same syntax as
``--set``) into cells, derives an independent seed for every cell from the
master seed via :func:`repro.util.rng.derive_seed`, and executes the cells
either serially or over a :class:`concurrent.futures.ProcessPoolExecutor`.

Because each cell's seed depends only on the master seed, the scenario name,
and the cell's own overrides — never on execution order — a parallel sweep
produces **byte-identical** JSON to the serial sweep with the same master
seed.  :meth:`SweepResult.to_json` therefore excludes wall-clock timings by
default; :meth:`SweepResult.save` keeps the measurements anyway, in a
separate top-level ``timings`` side table (cell key → seconds) outside the
deterministic cell payload, so resumed cells regain their original timing on
:meth:`SweepResult.load` while the cells themselves stay diffable.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.experiments.runner import jsonify_value
from repro.scenarios.registry import get_scenario
from repro.scenarios.run import RunResult, run
from repro.scenarios.spec import SpecError, coerce_override
from repro.telemetry.core import (
    SECONDS_BUCKETS,
    current as telemetry_current,
)
from repro.util.rng import derive_seed

__all__ = ["Sweep", "SweepCellResult", "SweepResult"]

SWEEP_SCHEMA = "repro.scenarios.sweep_result/v1"


def _canonical(value: Any) -> str:
    """A stable, process-independent string form of an override value."""
    return json.dumps(jsonify_value(value), sort_keys=True, separators=(",", ":"))


def cell_key(overrides: Mapping[str, Any]) -> str:
    """Canonical identity of one grid cell: sorted ``key=value`` joined by ``|``."""
    return "|".join(f"{key}={_canonical(value)}" for key, value in sorted(overrides.items()))


def _execute_cell(payload: tuple[str, dict, int, bool, float]) -> dict:
    """Worker: run one cell, return the RunResult plus execution metadata.

    Module-level so :class:`ProcessPoolExecutor` can pickle it; returns plain
    dicts (not RunResult objects) so the parent reconstructs every cell the
    same way regardless of serial or parallel execution.  ``submitted_at`` is
    the parent's wall clock at submission, so ``queue_wait_s`` measures how
    long the cell sat before a worker picked it up.
    """
    scenario, overrides, seed, collect_telemetry, submitted_at = payload
    queue_wait = max(0.0, time.time() - submitted_at)
    definition = get_scenario(scenario)
    spec = definition.make_spec(overrides=overrides).with_seed(seed)
    result = run(spec, collect_telemetry=collect_telemetry)
    return {
        "cell": result.to_json_dict(include_timing=True, include_telemetry=True),
        "queue_wait_s": queue_wait,
        "worker": os.getpid(),
    }


@dataclass
class SweepCellResult:
    """One executed grid cell."""

    key: str
    overrides: dict[str, Any]
    seed: int
    result: RunResult

    def to_json_dict(self, include_timing: bool = False) -> dict:
        return {
            "key": self.key,
            "overrides": {k: jsonify_value(v) for k, v in sorted(self.overrides.items())},
            "seed": self.seed,
            "result": self.result.to_json_dict(include_timing=include_timing),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepCellResult":
        return cls(
            key=data["key"],
            overrides=dict(data["overrides"]),
            seed=data["seed"],
            result=RunResult.from_json_dict(data["result"]),
        )


@dataclass
class SweepResult:
    """All cells of one sweep, in deterministic grid order."""

    scenario: str
    master_seed: int
    grid: dict[str, list[Any]]
    base: dict[str, Any] = field(default_factory=dict)
    cells: list[SweepCellResult] = field(default_factory=list)

    def cell(self, key: str) -> SweepCellResult | None:
        """Look up a cell by its canonical key."""
        for entry in self.cells:
            if entry.key == key:
                return entry
        return None

    def to_json_dict(self, include_timing: bool = False) -> dict:
        return {
            "schema": SWEEP_SCHEMA,
            "scenario": self.scenario,
            "master_seed": self.master_seed,
            "grid": {k: [jsonify_value(v) for v in values] for k, values in sorted(self.grid.items())},
            "base": {k: jsonify_value(v) for k, v in sorted(self.base.items())},
            "cells": [cell.to_json_dict(include_timing=include_timing) for cell in self.cells],
        }

    def to_json(self, indent: int | None = 2, include_timing: bool = False) -> str:
        """Serialise the sweep; deterministic (timing excluded) by default."""
        return json.dumps(
            self.to_json_dict(include_timing=include_timing), indent=indent, sort_keys=True
        )

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        if data.get("schema", SWEEP_SCHEMA) != SWEEP_SCHEMA:
            raise SpecError(f"unsupported SweepResult schema {data.get('schema')!r}")
        result = cls(
            scenario=data["scenario"],
            master_seed=data["master_seed"],
            grid={k: list(v) for k, v in data.get("grid", {}).items()},
            base=dict(data.get("base", {})),
            cells=[SweepCellResult.from_json_dict(cell) for cell in data.get("cells", [])],
        )
        # Restore per-cell wall-clock measurements from the ``timings`` side
        # table :meth:`save` writes — resumed cells keep their original
        # timing instead of losing it to the deterministic serialisation.
        timings = data.get("timings") or {}
        for cell in result.cells:
            if cell.result.seconds is None and cell.key in timings:
                cell.result.seconds = float(timings[cell.key])
        return result

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_json_dict(json.loads(text))

    def save(self, path: str | Path, include_timing: bool = False) -> Path:
        """Write the sweep JSON to ``path``; returns the path.

        The default serialisation keeps the cells deterministic (no inline
        timing), but the measured per-cell seconds are preserved in a
        top-level ``timings`` side table so that :meth:`load` — and therefore
        sweep resume — never loses them.  :meth:`diff` and the in-memory
        :meth:`to_json` ignore the side table.
        """
        path = Path(path)
        data = self.to_json_dict(include_timing=include_timing)
        if not include_timing:
            timings = {
                cell.key: cell.result.seconds
                for cell in self.cells
                if cell.result.seconds is not None
            }
            if timings:
                data["timings"] = timings
        path.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        """Read a sweep previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def diff(self, other: "SweepResult") -> list[str]:
        """Human-readable differences against another sweep (empty = identical).

        Compares scenario, master seed, and every cell's deterministic JSON
        (timings excluded); useful for checking a re-run against a saved
        baseline.
        """
        differences: list[str] = []
        if self.scenario != other.scenario:
            differences.append(f"scenario: {self.scenario!r} != {other.scenario!r}")
        if self.master_seed != other.master_seed:
            differences.append(f"master_seed: {self.master_seed} != {other.master_seed}")
        mine = {cell.key: cell for cell in self.cells}
        theirs = {cell.key: cell for cell in other.cells}
        for key in sorted(mine.keys() - theirs.keys()):
            differences.append(f"cell only in self: {key}")
        for key in sorted(theirs.keys() - mine.keys()):
            differences.append(f"cell only in other: {key}")
        for key in sorted(mine.keys() & theirs.keys()):
            left = json.dumps(mine[key].to_json_dict(), sort_keys=True)
            right = json.dumps(theirs[key].to_json_dict(), sort_keys=True)
            if left != right:
                differences.append(f"cell differs: {key}")
        return differences

    def to_text(self) -> str:
        """Render every cell's tables, prefixed by the cell header."""
        blocks = []
        for cell in self.cells:
            header = cell.key or "<base spec>"
            blocks.append(
                f"== cell {header} (seed={cell.seed}, engine={cell.result.engine_used})\n"
                + cell.result.to_text()
            )
        return "\n\n".join(blocks)


class Sweep:
    """Expand a parameter grid over one scenario and execute every cell.

    Parameters
    ----------
    scenario:
        Registered scenario name.
    grid:
        Mapping of dotted override key to the sequence of values to sweep.
        The cartesian product of all axes (axes sorted by key, values in the
        given order) forms the cells; an empty grid is a single-cell sweep.
    base:
        Fixed overrides applied to every cell before the cell's own.
    master_seed:
        Root of per-cell seed derivation: every cell gets
        ``derive_seed(master_seed, "sweep", scenario, cell_key)``.
    """

    def __init__(
        self,
        scenario: str,
        grid: Mapping[str, Sequence[Any]] | None = None,
        base: Mapping[str, Any] | None = None,
        master_seed: int = 0,
    ) -> None:
        defaults = get_scenario(scenario).defaults  # fail fast on unknown names
        self.scenario = scenario
        # Coerce every value against the scenario's default spec up front, so
        # CLI strings and typed Python values produce identical cell keys and
        # therefore identical derived seeds — and unknown keys fail here, not
        # half-way through a grid.
        self.grid = {
            key: [coerce_override(defaults, key, value) for value in values]
            for key, values in sorted((grid or {}).items())
        }
        for key, values in self.grid.items():
            if not values:
                raise SpecError(f"grid axis {key!r} has no values")
        self.base = {
            key: coerce_override(defaults, key, value)
            for key, value in (base or {}).items()
        }
        self.master_seed = master_seed

    def cells(self) -> list[dict[str, Any]]:
        """The per-cell override dicts, in deterministic grid order."""
        axes = list(self.grid.items())
        combos = itertools.product(*(values for _key, values in axes))
        return [
            {**self.base, **{key: value for (key, _values), value in zip(axes, combo)}}
            for combo in combos
        ]

    def cell_seed(self, overrides: Mapping[str, Any]) -> int:
        """Deterministic seed for one cell, independent of execution order."""
        return derive_seed(self.master_seed, "sweep", self.scenario, cell_key(overrides))

    def run(
        self,
        jobs: int = 1,
        resume: SweepResult | None = None,
        progress: Callable[[str], None] | None = None,
        collect_telemetry: bool = False,
    ) -> SweepResult:
        """Execute every cell; ``jobs > 1`` fans out over worker processes.

        ``resume`` reuses matching cells (same scenario, master seed, cell
        key, and seed) from a previously saved sweep instead of re-running
        them.  Serial and parallel execution produce identical results — the
        per-cell seeds depend only on the cell, and cells are assembled in
        grid order either way.

        ``collect_telemetry=True`` makes every executed cell record its own
        telemetry session (attached to the cell's
        :attr:`~repro.scenarios.run.RunResult.telemetry`).  Independently,
        when the *parent* process has an active telemetry session, the sweep
        records per-cell wall clock (``sweep.cell_seconds``), queue wait
        (``sweep.queue_wait_s``), and per-worker cell counts
        (``sweep.worker.<pid>.cells``) into it.
        """
        if resume is not None and (
            resume.scenario != self.scenario or resume.master_seed != self.master_seed
        ):
            raise SpecError(
                "resume sweep does not match: "
                f"scenario {resume.scenario!r} (want {self.scenario!r}), "
                f"master_seed {resume.master_seed} (want {self.master_seed})"
            )

        pending: list[tuple[int, tuple[str, dict, int, bool, float]]] = []
        reused: dict[int, SweepCellResult] = {}
        cell_overrides = self.cells()
        submitted_at = time.time()
        for index, overrides in enumerate(cell_overrides):
            key = cell_key(overrides)
            seed = self.cell_seed(overrides)
            previous = resume.cell(key) if resume is not None else None
            if previous is not None and previous.seed == seed:
                reused[index] = previous
                if progress:
                    progress(f"cell {key or '<base>'}: reused from resume")
            else:
                pending.append(
                    (index, (self.scenario, overrides, seed, collect_telemetry, submitted_at))
                )

        executed: dict[int, dict] = {}
        if pending:
            if jobs > 1:
                with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                    for (index, payload), data in zip(
                        pending, pool.map(_execute_cell, [p for _i, p in pending])
                    ):
                        executed[index] = data
                        if progress:
                            progress(f"cell {cell_key(payload[1]) or '<base>'}: done")
            else:
                for index, payload in pending:
                    executed[index] = _execute_cell(payload)
                    if progress:
                        progress(f"cell {cell_key(payload[1]) or '<base>'}: done")

        tel = telemetry_current()
        if tel is not None:
            for data in executed.values():
                seconds = data["cell"].get("seconds")
                if seconds is not None:
                    tel.observe("sweep.cell_seconds", seconds, buckets=SECONDS_BUCKETS)
                tel.observe(
                    "sweep.queue_wait_s", data["queue_wait_s"], buckets=SECONDS_BUCKETS
                )
                tel.count(f"sweep.worker.{data['worker']}.cells")
            tel.count("sweep.cells_executed", len(executed))
            tel.count("sweep.cells_reused", len(reused))

        cells: list[SweepCellResult] = []
        for index, overrides in enumerate(cell_overrides):
            if index in reused:
                cells.append(reused[index])
            else:
                cells.append(
                    SweepCellResult(
                        key=cell_key(overrides),
                        overrides=dict(overrides),
                        seed=self.cell_seed(overrides),
                        result=RunResult.from_json_dict(executed[index]["cell"]),
                    )
                )
        return SweepResult(
            scenario=self.scenario,
            master_seed=self.master_seed,
            grid=self.grid,
            base=self.base,
            cells=cells,
        )

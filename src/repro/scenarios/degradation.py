"""Graceful-degradation scenarios: routing quality along a fault timeline.

The paper's robustness claims (Sections 4.3.3, 4.3.4, 6) are measured with
one static failure model per data point.  The ``degradation`` scenario
instead replays the canonical escalating
:func:`~repro.faults.schedule.degradation_schedule` — independent link
failures, a crash wave, a targeted attack on the highest-degree nodes, a
correlated region outage, then the overlay's own repair machinery — and
measures routing after *every* event, producing the degradation curve the
graceful-degradation argument actually talks about.

The sweep axis is fault intensity (``failures.levels``); ``topology.protocol``
selects the overlay family (the paper's power-law overlay by default, or any
of the structured baselines), and ``engine`` selects the routing engine.  On
``engine="fastpath"`` the router follows the overlay through the edge-liveness
delta tier (:class:`~repro.fastpath.DeltaSnapshot`), never recompiling; the
reported numbers are identical to the object engine at the same seed, which
the CI faults smoke job asserts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.can import CanNetwork
from repro.baselines.chord import ChordNetwork
from repro.baselines.kleinberg_grid import KleinbergGridNetwork
from repro.baselines.plaxton import PlaxtonNetwork
from repro.core.builder import build_ideal_network
from repro.core.routing import GreedyRouter, RecoveryStrategy
from repro.experiments.runner import ExperimentTable
from repro.faults import FaultDriver, degradation_schedule
from repro.fastpath import (
    BatchGreedyRouter,
    DeltaRecorder,
    DeltaSnapshot,
    select_engine,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.run import ScenarioOutcome
from repro.scenarios.spec import (
    FailureSpec,
    RoutingSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
)
from repro.simulation.workload import LookupWorkload
from repro.util.rng import derive_seed

__all__ = ["degradation_spec", "run_degradation"]


def degradation_spec(
    nodes: int = 1 << 10,
    protocol: str = "",
    intensities: tuple[float, ...] = (0.05, 0.15, 0.3),
    searches: int = 200,
    recovery: str = RecoveryStrategy.BACKTRACK.value,
    seed: int = 0,
    engine: str = "object",
    targeted_count: int = 0,
    include_stabilize: bool = True,
) -> ScenarioSpec:
    """Spec for the ``"degradation"`` scenario.

    ``failures.levels`` carries the fault-intensity sweep (each level runs
    the full escalating schedule at that intensity on a fresh overlay);
    ``topology.protocol`` picks the overlay family.  ``extras.targeted_count``
    overrides the targeted-attack victim count (0 means "scaled to the
    intensity"); ``extras.include_stabilize`` drops the stabilize event when
    false.  Grid-ready, e.g.::

        repro sweep degradation --grid failures.levels=0.1,0.2,0.4 \\
            --grid engine=object,fastpath --grid topology.protocol=chord,can
    """
    return ScenarioSpec(
        scenario="degradation",
        topology=TopologySpec(kind="ideal", nodes=nodes, protocol=protocol),
        failures=FailureSpec(kind="links", levels=tuple(intensities)),
        routing=RoutingSpec(recovery=recovery),
        workload=WorkloadSpec(searches=searches),
        engine=engine,
        seed=seed,
        extras={
            "targeted_count": targeted_count,
            "include_stabilize": include_stabilize,
        },
    )


def _build_system(protocol: str, nodes: int, seed: int):
    """Build one overlay family at (approximately) ``nodes`` members.

    Returns the object handed to :class:`~repro.faults.FaultDriver`: the
    construction result (exposing ``.graph``) for the paper's power-law
    overlay, or the protocol instance itself for the table baselines — the
    same sizing recipes as the ``baselines`` comparison, so the families are
    directly comparable.
    """
    bits = max(2, int(round(math.log2(nodes))))
    side = max(2, int(round(math.sqrt(nodes))))
    if protocol in ("", "power-law"):
        return build_ideal_network(nodes, seed=seed)
    if protocol == "chord":
        return ChordNetwork(bits=bits)
    if protocol == "kleinberg":
        return KleinbergGridNetwork(side=side, links_per_node=max(1, bits), seed=seed)
    if protocol == "can":
        return CanNetwork(side=side, dimensions=2)
    if protocol == "plaxton":
        return PlaxtonNetwork(digits=max(1, int(round(bits / 2))), base=4)
    raise SpecError(f"unknown degradation protocol {protocol!r}")


def _repair_actions(entry: dict) -> int:
    """Repair cost of one event entry, engine-independently.

    Repair events report revived nodes + links; stabilize reports the table
    rebuild size (every member recomputes its table).  Both are derived from
    the overlay itself, so the column is identical across engines.
    """
    return int(
        entry.get("revived_nodes", 0)
        + entry.get("revived_links", 0)
        + entry.get("members", 0)
    )


def run_degradation(
    protocol: str,
    nodes: int,
    intensity: float,
    searches: int,
    recovery: RecoveryStrategy,
    seed: int,
    engine: str,
    targeted_count: int | None = None,
    include_stabilize: bool = True,
) -> tuple[list[dict], str]:
    """Replay one escalating schedule at ``intensity``; measure after each event.

    Returns (per-event measurement rows, engine used).  The first row is the
    healthy baseline (``event=-1``); each following row measures routing
    right after one schedule event.  ``hop_stretch`` is the mean successful
    hop count relative to the healthy baseline.
    """
    system = _build_system(protocol, nodes, seed=derive_seed(seed, "degradation-build"))
    graph = getattr(system, "graph", None)
    overlay = system if graph is None else graph
    engine_used = select_engine(engine, recovery)
    route_seed = derive_seed(seed, "degradation-route")
    lookups = LookupWorkload(seed=derive_seed(seed, "degradation-lookups"))

    recorder = mirror = batch_router = scalar_router = None
    if engine_used == "fastpath":
        if graph is not None:
            recorder = DeltaRecorder.attach(graph)
            mirror = DeltaSnapshot.from_graph(graph)
            batch_router = BatchGreedyRouter(
                mirror.snapshot(), recovery=recovery, seed=route_seed
            )
        else:
            mirror = DeltaSnapshot.from_overlay(overlay)
            batch_router = BatchGreedyRouter(
                mirror.snapshot(), hop_limit=overlay.hop_limit
            )
    elif graph is not None:
        scalar_router = GreedyRouter(graph, recovery=recovery, seed=route_seed)

    def live_labels() -> list[int]:
        if graph is not None:
            return sorted(graph.labels(only_alive=True))
        return list(overlay.labels(only_alive=True))

    def measure() -> tuple[float, float]:
        live = live_labels()
        if len(live) < 2 or searches <= 0:
            return 0.0, 0.0
        pairs = lookups.pairs(live, searches)
        if engine_used == "fastpath":
            batch_router.rebase(mirror.snapshot())
            if graph is not None and recovery is RecoveryStrategy.RANDOM_REROUTE:
                # Match the scalar detour pool order (node-table order).
                batch_router.reroute_pool = graph.labels(only_alive=True)
            result = batch_router.route_pairs(pairs)
            success, hops = result.success, result.hops
            successful = hops[success]
            mean_hops = float(successful.mean()) if successful.size else 0.0
            return float(success.mean()), mean_hops
        success_count = 0
        hop_counts: list[int] = []
        for source, target in pairs:
            route = (
                scalar_router.route(source, target)
                if scalar_router is not None
                else overlay.route(source, target)
            )
            if route.success:
                success_count += 1
                hop_counts.append(route.hops)
        mean_hops = float(np.mean(hop_counts)) if hop_counts else 0.0
        return success_count / len(pairs), mean_hops

    rows: list[dict] = []
    healthy_success, healthy_hops = measure()
    rows.append(
        {
            "event": -1,
            "kind": "healthy",
            "live_nodes": len(live_labels()),
            "failed_nodes": 0,
            "failed_links": 0,
            "repair_actions": 0,
            "success_rate": healthy_success,
            "mean_hops": healthy_hops,
            "hop_stretch": 1.0 if healthy_hops else 0.0,
        }
    )

    def on_event(index: int, event, entry: dict) -> None:
        success, mean_hops = measure()
        rows.append(
            {
                "event": index,
                "kind": event.kind,
                "live_nodes": len(live_labels()),
                "failed_nodes": int(entry.get("failed_nodes", 0)),
                "failed_links": int(entry.get("failed_links", 0)),
                "repair_actions": _repair_actions(entry),
                "success_rate": success,
                "mean_hops": mean_hops,
                "hop_stretch": mean_hops / healthy_hops if healthy_hops else 0.0,
            }
        )

    schedule = degradation_schedule(
        intensity,
        seed=derive_seed(seed, "degradation-schedule"),
        targeted_count=targeted_count,
        include_stabilize=include_stabilize,
    )
    try:
        FaultDriver(system, schedule, mirror=mirror, on_event=on_event).run()
    finally:
        if recorder is not None:
            recorder.detach()
    return rows, engine_used


@register_scenario(
    "degradation",
    description="graceful degradation under an escalating fault schedule: routing success, hop stretch, and repair cost after every fault event (all protocols, both engines, delta-driven fastpath)",
    defaults=degradation_spec(),
)
def _degradation(spec: ScenarioSpec) -> ScenarioOutcome:
    """One table per ``failures.levels`` intensity; rows follow the schedule."""
    intensities = [float(level) for level in spec.failures.levels] or [0.15]
    targeted = int(spec.extra("targeted_count", 0)) or None
    include_stabilize = bool(spec.extra("include_stabilize", True))
    protocol = spec.topology.protocol
    tables: list[ExperimentTable] = []
    raw: list[tuple[float, list[dict]]] = []
    engine_used = spec.engine
    columns = [
        "event", "kind", "live_nodes", "failed_nodes", "failed_links",
        "repair_actions", "success_rate", "mean_hops", "hop_stretch",
    ]
    for index, intensity in enumerate(intensities):
        rows, engine_used = run_degradation(
            protocol=protocol,
            nodes=spec.topology.nodes,
            intensity=intensity,
            searches=spec.workload.searches,
            recovery=spec.routing.recovery_strategy(),
            # Derived per level, so a level's numbers are stable under sweep
            # reshaping (same convention as the churn scenarios).
            seed=derive_seed(spec.seed, "degradation", index),
            engine=spec.engine,
            targeted_count=targeted,
            include_stabilize=include_stabilize,
        )
        raw.append((intensity, rows))
        table = ExperimentTable(
            title=(
                f"degradation: {protocol or 'power-law'}, n={spec.topology.nodes}, "
                f"intensity {intensity:.3f}, recovery {spec.routing.recovery}"
            ),
            columns=columns,
            notes="event -1 is the healthy baseline; hop_stretch is mean "
            "successful hops relative to it; repair_actions counts revived "
            "nodes/links plus stabilize table rebuilds.",
        )
        for row in rows:
            table.add_row(
                row["event"], row["kind"], row["live_nodes"], row["failed_nodes"],
                row["failed_links"], row["repair_actions"],
                round(row["success_rate"], 6), round(row["mean_hops"], 6),
                round(row["hop_stretch"], 6),
            )
        tables.append(table)
    return ScenarioOutcome(tables=tables, raw=raw, engine_used=engine_used)

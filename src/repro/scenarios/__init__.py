"""repro.scenarios — the unified, declarative experiment API.

Every result in the paper (Figures 5–7, Table 1, the ablations, the baseline
comparison) is one shape of computation: build an overlay, inject failures,
route a query sample, aggregate statistics.  This package encodes that shape
as data instead of per-figure functions:

* :mod:`repro.scenarios.spec` — frozen, validated, JSON-round-trippable
  :class:`ScenarioSpec` dataclasses (topology, failure model, routing and
  recovery, workload, engine choice, seed) with dotted-path overrides;
* :mod:`repro.scenarios.registry` — the ``@register_scenario`` registry
  mapping names to default specs and execute hooks;
* :mod:`repro.scenarios.run` — the single :func:`run(spec) -> RunResult
  <run>` entrypoint, with :class:`RunResult` as the structured record (spec
  echo, engine actually used, result tables, timing);
* :mod:`repro.scenarios.sweep` — the :class:`Sweep` executor: expand a
  parameter grid, derive a deterministic per-cell seed from the master seed
  (:mod:`repro.util.rng`), and fan cells out over a process pool — parallel
  sweeps are byte-identical to serial ones;
* :mod:`repro.scenarios.library` — the built-in scenarios porting all seven
  legacy experiments (``repro list`` shows them).

Quickstart — run a registered scenario::

    >>> from repro.scenarios import get_scenario, run
    >>> spec = get_scenario("figure7").make_spec(
    ...     overrides={"topology.nodes": 256, "workload.searches": 50,
    ...                "workload.iterations": 1, "engine": "fastpath"})
    >>> result = run(spec)
    >>> result.engine_used
    'fastpath'

and sweep a grid in parallel::

    >>> from repro.scenarios import Sweep
    >>> sweep = Sweep("figure7",
    ...               grid={"engine": ["object", "fastpath"],
    ...                     "topology.nodes": [128, 256]},
    ...               base={"workload.searches": 20, "workload.iterations": 1},
    ...               master_seed=7)
    >>> len(sweep.run(jobs=4).cells)
    4

Defining a new scenario takes ~20 lines; see the README's "Define your own
scenario" example or any registration in :mod:`repro.scenarios.library`.
"""

from __future__ import annotations

from repro.scenarios.registry import (
    DuplicateScenarioError,
    ScenarioDefinition,
    UnknownScenarioError,
    available_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.scenarios.run import RunResult, ScenarioOutcome, run
from repro.scenarios.spec import (
    FailureSpec,
    RoutingSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
    apply_overrides,
    coerce_override,
    parse_assignment,
    parse_scalar,
)
from repro.scenarios.sweep import Sweep, SweepCellResult, SweepResult

__all__ = [
    "ScenarioSpec",
    "TopologySpec",
    "FailureSpec",
    "RoutingSpec",
    "WorkloadSpec",
    "SpecError",
    "apply_overrides",
    "coerce_override",
    "parse_assignment",
    "parse_scalar",
    "ScenarioDefinition",
    "DuplicateScenarioError",
    "UnknownScenarioError",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "ScenarioOutcome",
    "RunResult",
    "run",
    "Sweep",
    "SweepCellResult",
    "SweepResult",
]

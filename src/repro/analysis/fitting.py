"""Curve fitting for comparing measured scaling against the paper's bounds.

Asymptotic bounds (``O(log^2 n)``, ``O(log_b n)``, ...) only constrain growth
rates, so the experiments fit simple parametric models and compare fitted
exponents / coefficients rather than absolute values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["fit_power_law", "fit_log_squared_model", "goodness_of_fit_r2"]


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Fit ``y = c * x^alpha`` by least squares in log-log space.

    Returns ``(alpha, c)``.  All inputs must be positive.
    """
    x_array = np.asarray(list(x), dtype=float)
    y_array = np.asarray(list(y), dtype=float)
    if x_array.shape != y_array.shape or x_array.size < 2:
        raise ValueError("x and y must have equal length >= 2")
    if np.any(x_array <= 0) or np.any(y_array <= 0):
        raise ValueError("power-law fitting requires strictly positive data")
    slope, intercept = np.polyfit(np.log(x_array), np.log(y_array), deg=1)
    return float(slope), float(np.exp(intercept))


def fit_log_squared_model(n: Sequence[float], hops: Sequence[float]) -> tuple[float, float]:
    """Fit ``hops = a * log2(n)^2 + b`` by linear least squares.

    Returns ``(a, b)``.  A good fit (positive ``a``, high R²) over a range of
    ``n`` is the experimental signature of the paper's ``Θ(log^2 n)``
    delivery time with a single long link.
    """
    n_array = np.asarray(list(n), dtype=float)
    hops_array = np.asarray(list(hops), dtype=float)
    if n_array.shape != hops_array.shape or n_array.size < 2:
        raise ValueError("n and hops must have equal length >= 2")
    if np.any(n_array < 2):
        raise ValueError("n values must be >= 2")
    feature = np.log2(n_array) ** 2
    a, b = np.polyfit(feature, hops_array, deg=1)
    return float(a), float(b)


def goodness_of_fit_r2(observed: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination R² between observed and predicted values."""
    observed_array = np.asarray(list(observed), dtype=float)
    predicted_array = np.asarray(list(predicted), dtype=float)
    if observed_array.shape != predicted_array.shape or observed_array.size < 2:
        raise ValueError("observed and predicted must have equal length >= 2")
    residual = float(np.sum((observed_array - predicted_array) ** 2))
    total = float(np.sum((observed_array - observed_array.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total

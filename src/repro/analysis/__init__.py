"""Analysis utilities: statistics and curve fitting for the experiments."""

from repro.analysis.fitting import (
    fit_log_squared_model,
    fit_power_law,
    goodness_of_fit_r2,
)
from repro.analysis.stats import (
    binomial_confidence_interval,
    mean_confidence_interval,
    total_variation_distance,
)

__all__ = [
    "mean_confidence_interval",
    "binomial_confidence_interval",
    "total_variation_distance",
    "fit_power_law",
    "fit_log_squared_model",
    "goodness_of_fit_r2",
]

"""Statistical helpers used when reporting experiment results."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.util.validation import ensure_in_range, ensure_probability

__all__ = [
    "mean_confidence_interval",
    "binomial_confidence_interval",
    "total_variation_distance",
]


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """Return ``(mean, low, high)`` for a normal-approximation confidence interval.

    Uses the z-quantile of the normal distribution (adequate for the sample
    sizes the experiments use); an empty input returns ``(0, 0, 0)``.
    """
    ensure_in_range(confidence, "confidence", 0.0, 1.0)
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return 0.0, 0.0, 0.0
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean, mean
    z = _normal_quantile(0.5 + confidence / 2.0)
    half_width = z * float(data.std(ddof=1)) / math.sqrt(data.size)
    return mean, mean - half_width, mean + half_width


def binomial_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float, float]:
    """Wilson score interval ``(proportion, low, high)`` for a binomial proportion."""
    if trials <= 0:
        return 0.0, 0.0, 0.0
    if not 0 <= successes <= trials:
        raise ValueError(f"successes ({successes}) must be in [0, {trials}]")
    ensure_in_range(confidence, "confidence", 0.0, 1.0)
    z = _normal_quantile(0.5 + confidence / 2.0)
    proportion = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (proportion + z * z / (2 * trials)) / denominator
    half_width = (
        z
        * math.sqrt(proportion * (1 - proportion) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return proportion, max(0.0, centre - half_width), min(1.0, centre + half_width)


def total_variation_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Total variation distance ``0.5 * sum |p_i − q_i|`` between two distributions.

    Inputs are normalised first, so unnormalised histograms are accepted.
    """
    p_array = np.asarray(list(p), dtype=float)
    q_array = np.asarray(list(q), dtype=float)
    if p_array.shape != q_array.shape:
        raise ValueError("p and q must have the same length")
    if p_array.sum() <= 0 or q_array.sum() <= 0:
        raise ValueError("p and q must each have positive total mass")
    p_array = p_array / p_array.sum()
    q_array = q_array / q_array.sum()
    return float(0.5 * np.abs(p_array - q_array).sum())


def _normal_quantile(probability: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation)."""
    ensure_probability(probability, "probability")
    if probability <= 0.0:
        return -math.inf
    if probability >= 1.0:
        return math.inf
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if probability < p_low:
        q = math.sqrt(-2 * math.log(probability))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if probability > 1 - p_low:
        q = math.sqrt(-2 * math.log(1 - probability))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = probability - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )

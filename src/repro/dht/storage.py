"""Per-node key-value storage for the DHT layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["StoredItem", "NodeStorage"]


@dataclass
class StoredItem:
    """One stored key-value pair.

    Attributes
    ----------
    key:
        The resource key.
    value:
        The stored payload.
    point:
        The metric-space point the key hashes to.
    version:
        Monotonically increasing per-key version; puts with an older version
        are ignored so that delayed replication traffic cannot resurrect stale
        data.
    is_replica:
        ``True`` when this copy is held for fault tolerance rather than
        because this node is the key's responsible node.
    """

    key: str
    value: Any
    point: int
    version: int = 0
    is_replica: bool = False


class NodeStorage:
    """The key-value store kept by a single DHT node."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._items: dict[str, StoredItem] = {}

    def put(
        self,
        key: str,
        value: Any,
        point: int,
        version: int = 0,
        is_replica: bool = False,
    ) -> bool:
        """Store ``key`` unless a strictly newer version is already present.

        Returns ``True`` when the write was applied.
        """
        existing = self._items.get(key)
        if existing is not None and existing.version > version:
            return False
        self._items[key] = StoredItem(
            key=key, value=value, point=point, version=version, is_replica=is_replica
        )
        return True

    def get(self, key: str) -> StoredItem | None:
        """Return the stored item for ``key``, or ``None``."""
        return self._items.get(key)

    def delete(self, key: str) -> bool:
        """Remove ``key``; return whether it was present."""
        return self._items.pop(key, None) is not None

    def keys(self) -> list[str]:
        """All stored keys (primary and replica)."""
        return list(self._items)

    def primary_items(self) -> Iterator[StoredItem]:
        """Iterate over items for which this node is the responsible node."""
        return (item for item in self._items.values() if not item.is_replica)

    def replica_items(self) -> Iterator[StoredItem]:
        """Iterate over items held only as replicas."""
        return (item for item in self._items.values() if item.is_replica)

    def promote_to_primary(self, key: str) -> bool:
        """Mark a replica as primary (after the original responsible node died)."""
        item = self._items.get(key)
        if item is None:
            return False
        item.is_replica = False
        return True

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

"""The distributed hash table facade.

:class:`DistributedHashTable` combines the overlay construction heuristic,
greedy routing, per-node storage, and a replication policy into the put/get
service the paper's introduction motivates.  Every operation is routed over
the overlay from a caller-chosen origin node, and the message cost of each
operation is reported so that applications can observe the
``O(log^2 n / l)``-style behaviour the paper proves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.construction import HeuristicConstruction, InverseDistanceReplacement
from repro.core.identifiers import KeyHasher, Sha256Hasher
from repro.core.maintenance import MaintenanceDaemon
from repro.core.metric import RingMetric
from repro.core.routing import GreedyRouter, RecoveryStrategy, RouteResult
from repro.dht.replication import ReplicationPolicy, SuccessorReplication
from repro.dht.storage import NodeStorage
from repro.util.rng import RandomSource
from repro.util.validation import ensure_positive

__all__ = ["DhtConfig", "DhtOperationResult", "DistributedHashTable"]


@dataclass
class DhtConfig:
    """Configuration of a :class:`DistributedHashTable`.

    Attributes
    ----------
    space_size:
        Size of the identifier ring.
    links_per_node:
        Long links per node; defaults to ``ceil(lg space_size)`` when ``None``.
    replication:
        Replication policy (default: two successor replicas).
    recovery:
        Routing recovery strategy (default: backtracking).
    seed:
        Base seed for all randomness.
    """

    space_size: int
    links_per_node: int | None = None
    replication: ReplicationPolicy = field(default_factory=SuccessorReplication)
    recovery: RecoveryStrategy = RecoveryStrategy.BACKTRACK
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_positive(self.space_size, "space_size")
        if self.links_per_node is None:
            self.links_per_node = max(1, int(np.ceil(np.log2(max(2, self.space_size)))))


@dataclass
class DhtOperationResult:
    """Result of a DHT operation (put / get / delete).

    Attributes
    ----------
    ok:
        Whether the operation succeeded.
    key:
        The key operated on.
    value:
        The value read (for ``get``) or written (for ``put``).
    holder:
        The node that served the operation (responsible node or replica).
    messages:
        Total overlay messages the operation cost (routing + replication).
    route:
        The primary routing result underlying the operation.
    """

    ok: bool
    key: str
    value: Any = None
    holder: int | None = None
    messages: int = 0
    route: RouteResult | None = None


class DistributedHashTable:
    """A put/get key-value service over the fault-tolerant overlay.

    Examples
    --------
    >>> dht = DistributedHashTable(DhtConfig(space_size=256, seed=3))
    >>> dht.join_many(range(0, 256, 4))
    >>> result = dht.put("language", "python", origin=0)
    >>> dht.get("language", origin=128).value
    'python'
    """

    def __init__(self, config: DhtConfig) -> None:
        self.config = config
        self.space = RingMetric(config.space_size)
        self.construction = HeuristicConstruction(
            space=self.space,
            links_per_node=config.links_per_node,
            replacement_policy=InverseDistanceReplacement(),
            seed=config.seed,
        )
        self.maintenance = MaintenanceDaemon(self.construction)
        self.hasher: KeyHasher = Sha256Hasher(config.space_size)
        self.storage: dict[int, NodeStorage] = {}
        self._versions: dict[str, int] = {}
        self._random = RandomSource(seed=config.seed)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def graph(self):
        """The underlying overlay graph."""
        return self.construction.graph

    def members(self) -> list[int]:
        """Labels of all live member nodes."""
        return self.graph.labels(only_alive=True)

    def join(self, address: int) -> None:
        """Add a node and transfer to it the keys it is now responsible for."""
        self.construction.add_point(int(address))
        self.storage.setdefault(int(address), NodeStorage(owner=int(address)))
        self._transfer_keys_to(int(address))

    def join_many(self, addresses) -> None:
        """Add several nodes in order."""
        for address in addresses:
            self.join(int(address))

    def crash(self, address: int) -> None:
        """Abruptly fail a node (its stored data becomes unreachable)."""
        self.graph.fail_node(int(address))

    def leave(self, address: int) -> None:
        """Gracefully remove a node, handing its primaries to the next closest node."""
        address = int(address)
        if not self.graph.has_node(address):
            raise ValueError(f"no node at address {address}")
        departing_storage = self.storage.pop(address, None)
        self.maintenance.handle_departure(address)
        if departing_storage is None:
            return
        for item in list(departing_storage.primary_items()):
            new_home = self.graph.closest_live_vertex(item.point)
            if new_home is None:
                continue
            self._store_at(new_home, item.key, item.value, item.point,
                           item.version, is_replica=False)

    def repair(self) -> int:
        """Run a maintenance pass: excise crashed nodes and promote replicas.

        Returns the number of keys re-homed from replicas.
        """
        crashed = [node.label for node in self.graph.nodes() if not node.alive]
        for label in crashed:
            self.storage.pop(label, None)
            self.maintenance.handle_departure(label)
        rehomed = 0
        for storage in list(self.storage.values()):
            if not self.graph.is_alive(storage.owner):
                continue
            for item in list(storage.replica_items()):
                responsible = self.graph.closest_live_vertex(item.point)
                if responsible == storage.owner:
                    storage.promote_to_primary(item.key)
                    rehomed += 1
        return rehomed

    # ------------------------------------------------------------------ #
    # Key-value operations
    # ------------------------------------------------------------------ #

    def put(self, key: str, value: Any, origin: int | None = None) -> DhtOperationResult:
        """Store ``key -> value`` at the responsible node plus its replicas."""
        origin = self._resolve_origin(origin)
        point = self.hasher.hash_key(key)
        responsible = self.graph.closest_live_vertex(point)
        if responsible is None:
            return DhtOperationResult(ok=False, key=key)

        route = self._route(origin, responsible)
        messages = route.hops
        if not route.success:
            return DhtOperationResult(
                ok=False, key=key, messages=messages, route=route
            )

        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        self._store_at(responsible, key, value, point, version, is_replica=False)

        for replica in self.config.replication.replica_holders(
            self.graph, self.space, point, responsible
        ):
            replica_route = self._route(responsible, replica)
            messages += replica_route.hops
            if replica_route.success:
                self._store_at(replica, key, value, point, version, is_replica=True)

        return DhtOperationResult(
            ok=True, key=key, value=value, holder=responsible,
            messages=messages, route=route,
        )

    def get(self, key: str, origin: int | None = None) -> DhtOperationResult:
        """Look up ``key`` starting from ``origin``.

        The lookup routes to the live node closest to the key's point; if that
        node does not hold the key (e.g. the primary died before repair), the
        nearby replica holders are probed directly.
        """
        origin = self._resolve_origin(origin)
        point = self.hasher.hash_key(key)
        responsible = self.graph.closest_live_vertex(point)
        if responsible is None:
            return DhtOperationResult(ok=False, key=key)

        route = self._route(origin, responsible)
        messages = route.hops
        if route.success:
            item = self._read_from(responsible, key)
            if item is not None:
                return DhtOperationResult(
                    ok=True, key=key, value=item.value, holder=responsible,
                    messages=messages, route=route,
                )

        # Primary miss: probe the replica set around the key's point.
        for holder in self.config.replication.replica_holders(
            self.graph, self.space, point, responsible
        ):
            probe = self._route(origin, holder)
            messages += probe.hops
            if not probe.success:
                continue
            item = self._read_from(holder, key)
            if item is not None:
                return DhtOperationResult(
                    ok=True, key=key, value=item.value, holder=holder,
                    messages=messages, route=probe,
                )
        return DhtOperationResult(ok=False, key=key, messages=messages, route=route)

    def delete(self, key: str, origin: int | None = None) -> DhtOperationResult:
        """Delete ``key`` from the responsible node and its replicas."""
        origin = self._resolve_origin(origin)
        point = self.hasher.hash_key(key)
        responsible = self.graph.closest_live_vertex(point)
        if responsible is None:
            return DhtOperationResult(ok=False, key=key)
        route = self._route(origin, responsible)
        messages = route.hops
        if not route.success:
            return DhtOperationResult(ok=False, key=key, messages=messages, route=route)
        removed = False
        holders = [responsible] + self.config.replication.replica_holders(
            self.graph, self.space, point, responsible
        )
        for holder in holders:
            storage = self.storage.get(holder)
            if storage is not None and storage.delete(key):
                removed = True
        self._versions.pop(key, None)
        return DhtOperationResult(
            ok=removed, key=key, holder=responsible, messages=messages, route=route
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resolve_origin(self, origin: int | None) -> int:
        members = self.members()
        if not members:
            raise RuntimeError("the DHT has no live members")
        if origin is not None and self.graph.is_alive(int(origin)):
            return int(origin)
        index = int(self._random.stream("origin").integers(0, len(members)))
        return members[index]

    def _route(self, source: int, target: int) -> RouteResult:
        if source == target:
            return RouteResult(success=True, hops=0, path=[source])
        router = GreedyRouter(
            graph=self.graph,
            recovery=self.config.recovery,
            seed=self.config.seed,
        )
        return router.route(source, target)

    def _store_at(
        self, holder: int, key: str, value: Any, point: int, version: int, is_replica: bool
    ) -> None:
        storage = self.storage.setdefault(holder, NodeStorage(owner=holder))
        storage.put(key, value, point, version=version, is_replica=is_replica)

    def _read_from(self, holder: int, key: str):
        storage = self.storage.get(holder)
        if storage is None:
            return None
        return storage.get(key)

    def _transfer_keys_to(self, newcomer: int) -> None:
        """Move primaries whose point is now closest to ``newcomer`` onto it."""
        for storage in list(self.storage.values()):
            if storage.owner == newcomer or not self.graph.is_alive(storage.owner):
                continue
            for item in list(storage.primary_items()):
                if (
                    self.space.distance(newcomer, item.point)
                    < self.space.distance(storage.owner, item.point)
                ):
                    self._store_at(
                        newcomer, item.key, item.value, item.point,
                        item.version, is_replica=False,
                    )
                    storage.delete(item.key)

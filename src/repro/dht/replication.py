"""Replication policies for the DHT layer.

The routing layer tolerates failures, but a key stored at exactly one node is
lost when that node crashes.  Replication stores every key at the responsible
node *and* at a small set of additional nodes so that, after failures, some
live node still holds the value and can be found by greedy routing (which
naturally lands on the closest live node to the key's point).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.graph import OverlayGraph
from repro.core.metric import MetricSpace

__all__ = ["ReplicationPolicy", "SuccessorReplication"]


class ReplicationPolicy(abc.ABC):
    """Chooses where the replicas of a key should live."""

    @abc.abstractmethod
    def replica_holders(
        self, graph: OverlayGraph, space: MetricSpace, point: int, primary: int
    ) -> list[int]:
        """Return the labels of the nodes that should hold replicas.

        The primary (responsible) node is not included in the returned list.
        """


@dataclass
class SuccessorReplication(ReplicationPolicy):
    """Replicate at the ``degree`` live nodes closest to the key's point.

    This mirrors Chord's successor-list replication: the replicas are exactly
    the nodes that will become responsible if the primary fails, so a lookup
    that greedily lands on the closest live node finds a copy without any
    extra machinery.

    Parameters
    ----------
    degree:
        Number of replicas in addition to the primary copy.
    """

    degree: int = 2

    def __post_init__(self) -> None:
        if self.degree < 0:
            raise ValueError(f"degree must be non-negative, got {self.degree}")

    def replica_holders(
        self, graph: OverlayGraph, space: MetricSpace, point: int, primary: int
    ) -> list[int]:
        if self.degree == 0:
            return []
        live = [label for label in graph.labels(only_alive=True) if label != primary]
        if not live:
            return []
        live.sort(key=lambda label: space.distance(label, point))
        return live[: self.degree]

"""Distributed hash table built on the fault-tolerant routing layer.

The paper motivates its overlay as providing "hash table-like functionality"
(Section 1) but evaluates only the routing layer.  This package supplies the
missing application layer:

* :mod:`repro.dht.storage` — the per-node key-value store.
* :mod:`repro.dht.replication` — successor-set replication so that keys
  survive the node failures the routing layer is designed to tolerate.
* :mod:`repro.dht.dht` — the :class:`~repro.dht.dht.DistributedHashTable`
  facade with ``put`` / ``get`` / ``delete`` and failure handling.
"""

from repro.dht.dht import DhtConfig, DhtOperationResult, DistributedHashTable
from repro.dht.replication import ReplicationPolicy, SuccessorReplication
from repro.dht.storage import NodeStorage, StoredItem

__all__ = [
    "DistributedHashTable",
    "DhtConfig",
    "DhtOperationResult",
    "NodeStorage",
    "StoredItem",
    "ReplicationPolicy",
    "SuccessorReplication",
]

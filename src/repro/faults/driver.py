"""Replay a :class:`~repro.faults.schedule.FaultSchedule` against an overlay.

The driver is the bridge between fault timelines (data) and the two overlay
families (state):

* **graph-backed overlays** — an :class:`~repro.core.graph.OverlayGraph` (or
  any object exposing one as ``.graph``, e.g. the paper's power-law
  networks): every mutation goes through the graph's observable mutators, so
  an attached :class:`~repro.fastpath.delta.DeltaRecorder` captures the
  exact op stream and the structural-tier mirror replays it;
* **table-backed overlays** — :class:`~repro.overlay.mixin.OverlayMixin`
  protocols (Chord, CAN, Kleinberg, Plaxton): the driver mutates the overlay
  through its liveness/link methods and emits the equivalent delta ops
  itself, feeding a liveness-tier mirror
  (:meth:`~repro.fastpath.delta.DeltaSnapshot.from_overlay`).

Either way, after every event the optional mirror is delta-updated and the
optional ``on_event`` callback fires — which is how the ``degradation``
scenario measures routing along the timeline without ever recompiling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core.graph import OverlayGraph
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.fastpath.delta import (
    OP_FAIL,
    OP_LINK_FAIL,
    OP_LINK_REVIVE,
    OP_REBUILD,
    OP_REVIVE,
    DeltaRecorder,
    DeltaSnapshot,
    SnapshotDelta,
)
from repro.telemetry.core import current as telemetry_current

if TYPE_CHECKING:
    from repro.overlay.protocol import Overlay
    from repro.telemetry.core import Telemetry

__all__ = ["FaultDriver"]


class FaultDriver:
    """Deterministically replay a fault schedule against one overlay.

    Parameters
    ----------
    overlay:
        An :class:`~repro.core.graph.OverlayGraph`, an object exposing one as
        ``.graph``, or a table-based Overlay (anything with the mixin's
        liveness/link API).
    schedule:
        The timeline to replay.
    mirror:
        Optional :class:`~repro.fastpath.delta.DeltaSnapshot` kept current
        with one :meth:`~repro.fastpath.delta.DeltaSnapshot.apply` per event.
        Graph-backed runs reuse an already-attached
        :class:`~repro.fastpath.delta.DeltaRecorder` or attach (and detach)
        their own; table-backed runs synthesize the op stream directly.
    on_event:
        Optional ``callback(index, event, entry)`` fired after each event has
        mutated the overlay and updated the mirror.
    """

    def __init__(
        self,
        overlay: Any,
        schedule: FaultSchedule,
        mirror: DeltaSnapshot | None = None,
        on_event: Callable[[int, FaultEvent, dict], None] | None = None,
    ) -> None:
        self.overlay = overlay
        self.schedule = schedule
        self.mirror = mirror
        self.on_event = on_event
        graph = overlay if isinstance(overlay, OverlayGraph) else getattr(overlay, "graph", None)
        self.graph: OverlayGraph | None = graph if isinstance(graph, OverlayGraph) else None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> dict:
        """Replay every event in order; return the per-event report.

        The report maps ``"events"`` to one entry dict per event (kind plus
        what it touched) and ``"ops"`` to the aggregated delta-op counts when
        a mirror was attached.
        """
        tel = telemetry_current()
        if tel is not None:
            tel.count("faults.runs")
        if self.graph is not None:
            return self._run_graph(tel)
        return self._run_table(tel)

    def _run_graph(self, tel: "Telemetry | None") -> dict:
        graph = self.graph
        recorder = None
        attached_here = False
        if self.mirror is not None:
            observer = graph.observer
            if isinstance(observer, DeltaRecorder):
                recorder = observer
            else:
                recorder = DeltaRecorder.attach(graph)
                attached_here = True
        entries: list[dict] = []
        op_totals: dict[str, int] = {}
        try:
            for index, event in enumerate(self.schedule.events):
                rng = self.schedule.event_rng(index)
                entry = self._apply_graph_event(graph, event, rng)
                if tel is not None:
                    tel.count(f"faults.events.{event.kind}")
                if recorder is not None:
                    delta = recorder.drain()
                    self.mirror.apply(delta)
                    for kind, count in delta.counts().items():
                        op_totals[kind] = op_totals.get(kind, 0) + count
                    entry["ops"] = len(delta)
                entries.append(entry)
                if self.on_event is not None:
                    self.on_event(index, event, entry)
        finally:
            if attached_here:
                recorder.detach()
        return {"events": entries, "ops": op_totals}

    def _run_table(self, tel: "Telemetry | None") -> dict:
        overlay = self.overlay
        entries: list[dict] = []
        op_totals: dict[str, int] = {}
        for index, event in enumerate(self.schedule.events):
            rng = self.schedule.event_rng(index)
            ops: list[tuple] = []
            entry = self._apply_table_event(overlay, event, rng, ops)
            if tel is not None:
                tel.count(f"faults.events.{event.kind}")
            if self.mirror is not None:
                delta = SnapshotDelta(ops=ops)
                self.mirror.apply(delta)
                for kind, count in delta.counts().items():
                    op_totals[kind] = op_totals.get(kind, 0) + count
                entry["ops"] = len(delta)
            entries.append(entry)
            if self.on_event is not None:
                self.on_event(index, event, entry)
        return {"events": entries, "ops": op_totals}

    # ------------------------------------------------------------------ #
    # Graph-backed events
    # ------------------------------------------------------------------ #

    def _apply_graph_event(
        self, graph: OverlayGraph, event: FaultEvent, rng: np.random.Generator
    ) -> dict:
        kind = event.kind
        entry: dict = {"kind": kind}
        if kind == "crash":
            victims = _draw(sorted(graph.labels(only_alive=True)), event.level, rng)
            for label in victims:
                graph.fail_node(label)
            entry["failed_nodes"] = len(victims)
        elif kind == "revive":
            dead = sorted(
                label for label in graph.labels() if not graph.is_alive(label)
            )
            victims = _draw(dead, event.level, rng)
            for label in victims:
                graph.revive_node(label)
            entry["revived_nodes"] = len(victims)
        elif kind == "link_fail":
            failed = 0
            # One draw per live link in sorted-holder order: the per-event
            # stream makes the victim set a pure function of (seed, index).
            for label in sorted(graph.labels()):
                for link in graph.node(label).long_links:
                    if link.alive and rng.random() < event.level:
                        graph.fail_long_link(label, link.target)
                        failed += 1
            entry["failed_links"] = failed
        elif kind == "region_fail":
            size = graph.space.size()
            span = int(round(event.level * size))
            start = int(rng.integers(size))
            failed = 0
            for label in sorted(graph.labels()):
                if span <= 0 or (label - start) % size >= span:
                    continue
                for link in graph.node(label).long_links:
                    if link.alive:
                        graph.fail_long_link(label, link.target)
                        failed += 1
            entry.update(region_start=start, region_span=span, failed_links=failed)
        elif kind == "targeted":
            live = sorted(graph.labels(only_alive=True))
            ranked = sorted(
                live,
                key=lambda label: (-graph.node(label).out_degree(), label),
            )
            victims = ranked[: event.count]
            for label in victims:
                graph.fail_node(label)
            entry["failed_nodes"] = len(victims)
        elif kind == "byzantine":
            compromised = _draw(sorted(graph.labels(only_alive=True)), event.level, rng)
            entry["compromised"] = compromised
        elif kind == "repair":
            revived_nodes = 0
            revived_links = 0
            for label in sorted(graph.labels()):
                node = graph.node(label)
                if not node.alive:
                    graph.revive_node(label)
                    revived_nodes += 1
                for link in node.long_links:
                    if not link.alive:
                        graph.revive_long_link(label, link.target)
                        revived_links += 1
            entry.update(revived_nodes=revived_nodes, revived_links=revived_links)
        elif kind == "stabilize":
            # Graph overlays repair through the maintenance daemon; the
            # stabilize event is a table-overlay concept, so it is a no-op.
            entry["noop"] = True
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault event kind {kind!r}")
        return entry

    # ------------------------------------------------------------------ #
    # Table-backed events
    # ------------------------------------------------------------------ #

    def _apply_table_event(
        self,
        overlay: "Overlay",
        event: FaultEvent,
        rng: np.random.Generator,
        ops: list,
    ) -> dict:
        kind = event.kind
        entry: dict = {"kind": kind}
        if kind == "crash":
            victims = _draw(overlay.labels(only_alive=True), event.level, rng)
            for label in victims:
                overlay.fail_node(label)
                ops.append((OP_FAIL, label))
            entry["failed_nodes"] = len(victims)
        elif kind == "revive":
            dead = [
                label
                for label in overlay.labels(only_alive=False)
                if not overlay.is_alive(label)
            ]
            victims = _draw(dead, event.level, rng)
            for label in victims:
                overlay.revive_node(label)
                ops.append((OP_REVIVE, label))
            entry["revived_nodes"] = len(victims)
        elif kind == "link_fail":
            failed = 0
            for holder, target in _table_pairs(overlay):
                if overlay.link_is_alive(holder, target) and rng.random() < event.level:
                    overlay.fail_link(holder, target)
                    ops.append((OP_LINK_FAIL, holder, target))
                    failed += 1
            entry["failed_links"] = failed
        elif kind == "region_fail":
            size = overlay.space.size()
            span = int(round(event.level * size))
            start = int(rng.integers(size))
            failed = 0
            for holder, target in _table_pairs(overlay):
                if span <= 0 or (holder - start) % size >= span:
                    continue
                if overlay.link_is_alive(holder, target):
                    overlay.fail_link(holder, target)
                    ops.append((OP_LINK_FAIL, holder, target))
                    failed += 1
            entry.update(region_start=start, region_span=span, failed_links=failed)
        elif kind == "targeted":
            live = overlay.labels(only_alive=True)
            ranked = sorted(
                live,
                key=lambda label: (-len(dict.fromkeys(overlay.neighbors_of(label))), label),
            )
            victims = ranked[: event.count]
            for label in victims:
                overlay.fail_node(label)
                ops.append((OP_FAIL, label))
            entry["failed_nodes"] = len(victims)
        elif kind == "byzantine":
            compromised = _draw(overlay.labels(only_alive=True), event.level, rng)
            entry["compromised"] = compromised
        elif kind == "repair":
            revived_nodes = 0
            revived_links = 0
            for label in overlay.labels(only_alive=False):
                if not overlay.is_alive(label):
                    ops.append((OP_REVIVE, label))
                    revived_nodes += 1
            for holder, target in _table_pairs(overlay):
                if not overlay.link_is_alive(holder, target):
                    ops.append((OP_LINK_REVIVE, holder, target))
                    revived_links += 1
            # The ops are computed first: overlay.repair() clears the dead
            # sets in bulk (and runs the protocol's repair hook, an identity
            # rebuild — tables depend on membership, not liveness).
            overlay.repair()
            entry.update(revived_nodes=revived_nodes, revived_links=revived_links)
        elif kind == "stabilize":
            stabilize = getattr(overlay, "stabilize", None)
            if stabilize is None:
                entry["noop"] = True
            else:
                stabilize()
                ops.append((OP_REBUILD,))
                entry["members"] = len(overlay.labels(only_alive=False))
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault event kind {kind!r}")
        return entry


def _draw(candidates: list[int], level: float, rng: np.random.Generator) -> list[int]:
    """Draw a ``level`` fraction of ``candidates`` without replacement."""
    count = min(len(candidates), int(round(level * len(candidates))))
    if count <= 0:
        return []
    chosen = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in chosen]


def _table_pairs(overlay):
    """Every distinct ``(holder, target)`` table entry, in deterministic order."""
    for holder in overlay.labels(only_alive=False):
        for target in dict.fromkeys(overlay.neighbors_of(holder)):
            if target != holder:
                yield holder, int(target)

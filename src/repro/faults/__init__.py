"""Deterministic fault-schedule injection (PR 8).

Fault timelines as data (:mod:`repro.faults.schedule`) replayed against any
overlay through recorded delta mutations (:mod:`repro.faults.driver`), so
routing under an evolving fault process is measurable on both engines with
identical tables.
"""

from repro.faults.driver import FaultDriver
from repro.faults.schedule import (
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
    degradation_schedule,
    random_schedule,
)

__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultDriver",
    "degradation_schedule",
    "random_schedule",
]

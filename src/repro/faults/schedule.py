"""Fault schedules: adversarial fault timelines as data.

The paper's experiments apply one static failure model per measurement
(Sections 4.3.3, 4.3.4, 6); its *claims*, though, are about graceful
degradation under an evolving fault process — the adversary-schedule
abstraction of the distributed-computing literature.  This module makes that
abstraction a first-class value: a :class:`FaultSchedule` is an ordered
timeline of typed :class:`FaultEvent`\\ s (crashes, revivals, independent and
correlated link failures, targeted attacks, Byzantine flips, repair and
stabilize rounds) that :class:`~repro.faults.driver.FaultDriver` replays
deterministically against any overlay — recording every mutation through the
delta vocabulary instead of ad-hoc model ``.apply()`` calls.

Schedules are pure data (frozen dataclasses): the same schedule + seed
replays the same fault process on the object engine and on the fastpath
mirror, which is what the engine-identity tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import spawn_rng
from repro.util.validation import ensure_probability

__all__ = [
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "degradation_schedule",
    "random_schedule",
]

#: The typed event vocabulary, in documentation order.
#:
#: ``crash``       — fail a ``level`` fraction of the live nodes.
#: ``revive``      — revive a ``level`` fraction of the dead nodes.
#: ``link_fail``   — fail each live link independently with probability ``level``.
#: ``region_fail`` — fail every link held by a contiguous label region
#:                   spanning a ``level`` fraction of the space (correlated
#:                   failure: one rack / one AS going dark).
#: ``targeted``    — crash the ``count`` highest-out-degree live nodes
#:                   (adversarial attack; label order breaks degree ties).
#: ``byzantine``   — mark a ``level`` fraction of live nodes compromised
#:                   (report-only: routing state is not mutated).
#: ``repair``      — revive every dead node and link.
#: ``stabilize``   — run the overlay's repair protocol (Chord's table
#:                   rebuild over the live membership); no-op elsewhere.
EVENT_KINDS = (
    "crash",
    "revive",
    "link_fail",
    "region_fail",
    "targeted",
    "byzantine",
    "repair",
    "stabilize",
)


@dataclass(frozen=True)
class FaultEvent:
    """One typed entry of a fault timeline.

    Parameters
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    level:
        Fraction/probability parameter in ``[0, 1]`` (meaning depends on the
        kind; unused by ``targeted``/``repair``/``stabilize``).
    count:
        Victim count for ``targeted`` events.
    """

    kind: str
    level: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown fault event kind {self.kind!r}; expected one of {EVENT_KINDS}"
            )
        ensure_probability(self.level, "level")
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, seeded fault timeline.

    The seed controls every random draw the driver makes; each event draws
    from its own derived stream (``spawn_rng(seed, "faults", index, kind)``),
    so inserting or removing one event does not perturb the draws of the
    others.
    """

    events: tuple[FaultEvent, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def event_rng(self, index: int) -> np.random.Generator:
        """The derived RNG stream for the event at ``index``."""
        event = self.events[index]
        return spawn_rng(self.seed, "faults", index, event.kind)


def degradation_schedule(
    intensity: float,
    seed: int = 0,
    targeted_count: int | None = None,
    include_stabilize: bool = True,
) -> FaultSchedule:
    """The canonical escalating schedule the ``degradation`` scenario sweeps.

    One intensity knob drives every phase: independent link failures at
    ``intensity``, a crash wave at half of it, a targeted attack scaled to
    it, a correlated region outage, then the overlay's repair protocol
    (``stabilize``) and finally a full ``repair`` — so the degradation curve
    shows damage accumulating *and* the recovery machinery clawing it back.
    """
    ensure_probability(intensity, "intensity")
    if targeted_count is None:
        targeted_count = max(1, int(round(8 * intensity)))
    events = [
        FaultEvent("link_fail", level=intensity),
        FaultEvent("crash", level=round(intensity / 2, 10)),
        FaultEvent("targeted", count=targeted_count),
        FaultEvent("region_fail", level=round(intensity / 2, 10)),
    ]
    if include_stabilize:
        events.append(FaultEvent("stabilize"))
    events.append(FaultEvent("repair"))
    return FaultSchedule(events=tuple(events), seed=seed)


def random_schedule(
    seed: int,
    length: int = 8,
    max_level: float = 0.4,
    kinds: tuple[str, ...] = EVENT_KINDS,
) -> FaultSchedule:
    """A seeded random timeline, for property tests and CI identity checks.

    Draws ``length`` events with kinds from ``kinds`` and levels uniform in
    ``[0, max_level]``; ``targeted`` counts are small (1..4).  Byzantine
    events are included by default — they are report-only, so identity
    checks see them as no-ops, which is itself worth covering.
    """
    rng = spawn_rng(seed, "fault-schedule")
    events = []
    for _ in range(length):
        kind = kinds[int(rng.integers(len(kinds)))]
        events.append(
            FaultEvent(
                kind=kind,
                level=float(round(rng.random() * max_level, 6)),
                count=int(rng.integers(1, 5)),
            )
        )
    return FaultSchedule(events=tuple(events), seed=seed)

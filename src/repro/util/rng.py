"""Deterministic random-number management.

All stochastic components of the library (link-distribution sampling, failure
injection, workload generation, the dynamic-construction heuristic) draw their
randomness through this module.  The goals are:

* **Reproducibility** — every experiment can be replayed exactly from a single
  integer seed.
* **Independence** — subsystems receive *derived* generators so that, for
  example, adding extra failure sampling does not perturb the link choices of
  an otherwise identical run.
* **Convenience** — a thin :class:`RandomSource` wrapper exposes the handful
  of sampling primitives the library needs with clear names.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "RandomSource"]

# A fixed, arbitrary namespace string mixed into derived seeds so that the
# library's seed derivation cannot collide with a user's own use of the same
# base seed elsewhere.
_NAMESPACE = "repro.p2p.fault-tolerant-routing"


def derive_seed(base_seed: int, *labels: str | int) -> int:
    """Derive a child seed from ``base_seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the namespace, base seed, and labels,
    truncated to 63 bits.  Distinct label sequences give (with overwhelming
    probability) independent child seeds, and the mapping is stable across
    processes and Python versions.

    Parameters
    ----------
    base_seed:
        The experiment-level seed chosen by the caller.
    labels:
        Any number of strings or integers identifying the consumer, e.g.
        ``derive_seed(42, "link-choice", node_id)``.

    Returns
    -------
    int
        A non-negative integer suitable for seeding :class:`numpy.random.Generator`.
    """
    hasher = hashlib.sha256()
    hasher.update(_NAMESPACE.encode("utf-8"))
    hasher.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        hasher.update(b"\x00")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") >> 1


def spawn_rng(base_seed: int, *labels: str | int) -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator` for a subsystem.

    Equivalent to ``np.random.default_rng(derive_seed(base_seed, *labels))``.
    """
    return np.random.default_rng(derive_seed(base_seed, *labels))


@dataclass
class RandomSource:
    """A seeded source of randomness with named sub-streams.

    A :class:`RandomSource` wraps one root seed and hands out independent
    generators keyed by label.  Repeated requests for the same label return
    the same generator object, so a component can call
    :meth:`stream` lazily without worrying about double-seeding.

    Examples
    --------
    >>> source = RandomSource(seed=7)
    >>> links = source.stream("links")
    >>> failures = source.stream("failures")
    >>> links is source.stream("links")
    True
    """

    seed: int
    _streams: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def stream(self, label: str) -> np.random.Generator:
        """Return the generator associated with ``label``, creating it if needed."""
        if label not in self._streams:
            self._streams[label] = spawn_rng(self.seed, label)
        return self._streams[label]

    def child(self, *labels: str | int) -> "RandomSource":
        """Return a new :class:`RandomSource` with a seed derived from this one."""
        return RandomSource(seed=derive_seed(self.seed, *labels))

    # -- convenience sampling primitives -------------------------------------

    def integers(self, label: str, low: int, high: int, size: int | None = None) -> Any:
        """Sample uniform integers in ``[low, high)`` from the named stream.

        Returns a scalar when ``size`` is ``None``, else an ndarray (hence
        the ``Any`` — numpy's own overloads decide).
        """
        return self.stream(label).integers(low, high, size=size)

    def random(self, label: str, size: int | None = None) -> Any:
        """Sample uniform floats in ``[0, 1)`` from the named stream."""
        return self.stream(label).random(size=size)

    def choice(
        self,
        label: str,
        options: Sequence[Any] | np.ndarray,
        size: int | None = None,
        p: Sequence[float] | np.ndarray | None = None,
        replace: bool = True,
    ) -> Any:
        """Sample from ``options`` (optionally weighted by ``p``)."""
        return self.stream(label).choice(options, size=size, p=p, replace=replace)

    def poisson(self, label: str, lam: float) -> int:
        """Sample a Poisson variate with rate ``lam`` from the named stream."""
        return int(self.stream(label).poisson(lam))

    def shuffle(self, label: str, values: list[Any]) -> None:
        """Shuffle ``values`` in place using the named stream."""
        self.stream(label).shuffle(values)

"""Argument-validation helpers used across the library.

Every public constructor and function validates its inputs eagerly so that
misconfiguration surfaces at the call site rather than deep inside a
simulation loop.  The helpers below raise :class:`ValueError` or
:class:`TypeError` with messages that name the offending parameter.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ensure_positive",
    "ensure_non_negative",
    "ensure_probability",
    "ensure_in_range",
    "ensure_type",
]


def ensure_positive(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Raise :class:`ValueError` unless ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def ensure_in_range(value: float, name: str, low: float, high: float) -> float:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return value


def ensure_type(value: Any, name: str, expected: type | tuple[type, ...]) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {expected_names}, got {type(value).__name__}")
    return value

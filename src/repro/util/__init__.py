"""Shared utilities: random-number management, validation, and logging helpers.

These modules deliberately contain no peer-to-peer logic.  They exist so that
every other subpackage can rely on a single, deterministic source of
randomness and a consistent set of argument-validation helpers.
"""

from repro.util.rng import RandomSource, derive_seed, spawn_rng
from repro.util.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
    ensure_type,
)

__all__ = [
    "RandomSource",
    "derive_seed",
    "spawn_rng",
    "ensure_in_range",
    "ensure_non_negative",
    "ensure_positive",
    "ensure_probability",
    "ensure_type",
]

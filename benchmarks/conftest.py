"""Benchmark-harness configuration.

Every benchmark regenerates one table or figure of the paper at a reduced but
representative scale (the full paper scale of 2^17 nodes and 100 000 searches
is reachable by passing larger parameters to the underlying experiment
functions).  Each benchmark prints the regenerated rows/series — run with
``pytest benchmarks/ --benchmark-only -s`` to see them — and stores the key
numbers in ``benchmark.extra_info`` so they appear in the saved benchmark
JSON.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make the benchmarks runnable from a clean checkout (``pytest benchmarks/``
# or ``python benchmarks/benchmark_*.py``) without a manual PYTHONPATH
# export: prefer an installed ``repro`` package, fall back to ../src.
_SRC = Path(__file__).resolve().parent.parent / "src"
try:
    import repro  # noqa: F401
except ImportError:
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="Run the benchmarks at (close to) the paper's original scale. Slow.",
    )


@pytest.fixture(scope="session")
def paper_scale(request) -> bool:
    """Whether the benchmarks should run at paper scale."""
    return bool(request.config.getoption("--paper-scale"))

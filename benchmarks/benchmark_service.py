"""Benchmark: million-node service — shared-memory snapshot + sustained traffic.

Every other BENCH artifact tops out at 2^14–2^17 nodes; this one pins the
ROADMAP's "millions of users" trajectory at **n = 10^6**:

* **compile** — :func:`repro.fastpath.build_snapshot` assembles the
  million-node CSR snapshot directly (no object graph exists at this scale);
* **share** — the arrays are packed into one
  :class:`~repro.fastpath.shm.SnapshotArena` segment, and an attached
  mapping is asserted field-identical to the heap build before anything is
  timed against it;
* **sustain** — a mixed-traffic loop interleaves liveness churn deltas
  (crash bursts via :class:`~repro.fastpath.delta.DeltaSnapshot.from_snapshot`,
  periodic revive acting as batched repair) with large lookup batches,
  reporting steady-state QPS, per-batch p50/p99 milliseconds, and
  delta-refresh cost;
* **fan out** — a :class:`~concurrent.futures.ProcessPoolExecutor` maps the
  same segment from worker processes (attach-by-spec, per-worker
  :func:`~repro.fastpath.snapcache.cached_attach` reuse) and routes shards
  against it, so the million-node arrays exist **once** in physical memory
  however many workers route.

The snapshot is built one-sided (``symmetric_neighbors=False``): folding
incoming power-law links at n = 10^6 would give hub vertices thousand-wide
dense rows, and the dense routing matrices scale with ``n x max_degree``.
One-sided keeps ``max_degree ~ links_per_node + 2`` — the memory envelope
the README's operating-at-scale section documents.

Run with ``pytest benchmarks/benchmark_service.py --benchmark-only -s`` or
directly with ``python benchmarks/benchmark_service.py [--nodes N]
[--rounds R] [--workers W]``.  Results are written to ``BENCH_service.json``
at the repository root, extending the cross-PR performance trajectory; the
weekly CI job re-runs it at full scale with a longer sustain phase.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

if __name__ in ("__main__", "__mp_main__"):  # direct execution / spawned worker
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

import numpy as np

from repro.fastpath import (
    ArenaSpec,
    BatchGreedyRouter,
    DeltaSnapshot,
    SnapshotArena,
    SnapshotDelta,
    build_snapshot,
    cached_attach,
    snapshot_cache_stats,
    snapshot_nbytes,
)
from repro.fastpath.delta import OP_FAIL, OP_REVIVE, assert_snapshots_identical
from repro.telemetry import (
    MS_BUCKETS,
    Histogram,
    current as telemetry_current,
    session as telemetry_session,
    write_bench_result,
)
from repro.util.rng import spawn_rng

NODES = 1_000_000
SEED = 7
ROUNDS = 12
BATCH = 20_000
CHURN_PER_ROUND = 1_000
REPAIR_EVERY = 3
WORKERS = 2
WORKER_TASKS = 4
WORKER_BATCH = 10_000


def _draw_pairs(rng: np.random.Generator, alive_labels: np.ndarray, count: int) -> np.ndarray:
    """``count`` (source, target) pairs of distinct live labels."""
    sources = alive_labels[rng.integers(0, alive_labels.size, size=count)]
    targets = alive_labels[rng.integers(0, alive_labels.size, size=count)]
    clash = sources == targets
    while np.any(clash):
        targets[clash] = alive_labels[rng.integers(0, alive_labels.size, size=int(clash.sum()))]
        clash = sources == targets
    return np.stack([sources, targets], axis=1).astype(np.int64)


def _worker_route(payload: tuple[ArenaSpec, int, int]) -> dict:
    """Pool worker: map the arena (cached per process) and route one shard."""
    spec, task_seed, batch = payload
    arena = cached_attach(spec)
    snapshot = arena.snapshot()
    rng = spawn_rng(task_seed, "service-worker-pairs")
    alive_labels = snapshot.labels  # fully populated build: everyone is alive
    pairs = _draw_pairs(rng, np.asarray(alive_labels), batch)
    router = BatchGreedyRouter(snapshot, seed=task_seed)
    started = time.perf_counter()
    result = router.route_batch(pairs[:, 0], pairs[:, 1])
    elapsed = time.perf_counter() - started
    return {
        "pid": os.getpid(),
        "queries": int(pairs.shape[0]),
        "successes": int(result.success.sum()),
        "route_seconds": elapsed,
        "cache": snapshot_cache_stats(),
    }


def run_service_benchmark(
    nodes: int = NODES,
    rounds: int = ROUNDS,
    batch: int = BATCH,
    churn_per_round: int = CHURN_PER_ROUND,
    repair_every: int = REPAIR_EVERY,
    workers: int = WORKERS,
    worker_tasks: int = WORKER_TASKS,
    worker_batch: int = WORKER_BATCH,
    seed: int = SEED,
) -> dict:
    """Compile, share, sustain, and fan out; return the stats dict."""
    tel = telemetry_current()

    # -- compile ---------------------------------------------------------- #
    started = time.perf_counter()
    heap_snapshot = build_snapshot(nodes, seed=seed, symmetric_neighbors=False)
    build_seconds = time.perf_counter() - started
    nbytes = snapshot_nbytes(heap_snapshot)

    # -- share + field identity ------------------------------------------- #
    started = time.perf_counter()
    arena = SnapshotArena.create(heap_snapshot)
    arena_create_seconds = time.perf_counter() - started
    stats: dict = {}
    try:
        started = time.perf_counter()
        mapper = SnapshotArena.attach(arena.spec)
        arena_attach_seconds = time.perf_counter() - started
        assert_snapshots_identical(mapper.snapshot(), heap_snapshot, "arena vs heap")
        mapper.close()

        shared = arena.snapshot()

        # -- sustain: mixed traffic over the shared snapshot --------------- #
        mirror = DeltaSnapshot.from_snapshot(shared)
        router = BatchGreedyRouter(mirror.snapshot(), seed=seed)
        rng = spawn_rng(seed, "service-bench")
        batch_hist = Histogram("bench.route_batch_ms", MS_BUCKETS)
        refresh_seconds = 0.0
        route_seconds = 0.0
        queries = 0
        successes = 0
        failed: list[int] = []
        for round_index in range(rounds):
            ops: list[tuple] = []
            if (round_index + 1) % repair_every == 0 and failed:
                ops = [(OP_REVIVE, label) for label in failed]
                failed = []
            else:
                victims = rng.choice(nodes, size=churn_per_round, replace=False)
                current_failed = set(failed)
                fresh = [int(v) for v in victims if int(v) not in current_failed]
                ops = [(OP_FAIL, label) for label in fresh]
                failed.extend(fresh)
            started = time.perf_counter()
            mirror.apply(SnapshotDelta(ops=ops))
            snapshot = mirror.snapshot()
            refresh_elapsed = time.perf_counter() - started
            refresh_seconds += refresh_elapsed
            router.rebase(snapshot)

            alive_labels = np.asarray(snapshot.labels)[np.asarray(snapshot.alive)]
            pairs = _draw_pairs(rng, alive_labels, batch)
            started = time.perf_counter()
            result = router.route_batch(pairs[:, 0], pairs[:, 1])
            elapsed = time.perf_counter() - started
            route_seconds += elapsed
            queries += batch
            successes += int(result.success.sum())
            batch_hist.record(elapsed * 1e3)
            if tel is not None:
                tel.observe("bench.route_batch_ms", elapsed * 1e3, buckets=MS_BUCKETS)
                tel.observe("bench.refresh_ms", refresh_elapsed * 1e3, buckets=MS_BUCKETS)

        # -- fan out: worker processes map the same segment ----------------- #
        payloads = [
            (arena.spec, seed + 1000 + task, worker_batch) for task in range(worker_tasks)
        ]
        started = time.perf_counter()
        # Spawned (not forked) workers get their own resource tracker and an
        # empty per-process cache, so attach/unregister bookkeeping and the
        # hit/miss counters are exactly the cold-worker story.
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            shard_results = list(pool.map(_worker_route, payloads))
        parallel_wall_seconds = time.perf_counter() - started
        worker_queries = sum(shard["queries"] for shard in shard_results)
        worker_successes = sum(shard["successes"] for shard in shard_results)
        worker_route_seconds = sum(shard["route_seconds"] for shard in shard_results)
        # Cache counters are cumulative per process; keep each pid's last word.
        per_pid: dict[int, dict] = {}
        for shard in shard_results:
            best = per_pid.get(shard["pid"])
            if best is None or sum(shard["cache"].values()) > sum(best.values()):
                per_pid[shard["pid"]] = shard["cache"]
        cache_hits = sum(stats["hits"] for stats in per_pid.values())
        cache_misses = sum(stats["misses"] for stats in per_pid.values())

        stats = {
            "nodes": nodes,
            "links_per_node": int(np.ceil(np.log2(nodes))),
            "symmetric_neighbors": False,
            "rounds": rounds,
            "batch": batch,
            "churn_per_round": churn_per_round,
            "repair_every": repair_every,
            "build_seconds": build_seconds,
            "snapshot_nbytes": nbytes,
            "arena_nbytes": arena.nbytes,
            "arena_create_seconds": arena_create_seconds,
            "arena_attach_seconds": arena_attach_seconds,
            "identity_checked": True,
            "queries": queries,
            "success_rate": successes / queries if queries else 0.0,
            "route_seconds": route_seconds,
            "qps": queries / route_seconds if route_seconds else 0.0,
            "batch_ms_p50": batch_hist.quantile(0.5),
            "batch_ms_p99": batch_hist.quantile(0.99),
            "refresh_ms_mean": 1000.0 * refresh_seconds / rounds,
            "workers": workers,
            "worker_tasks": worker_tasks,
            "worker_queries": worker_queries,
            "worker_success_rate": (
                worker_successes / worker_queries if worker_queries else 0.0
            ),
            "worker_qps": (
                worker_queries / worker_route_seconds if worker_route_seconds else 0.0
            ),
            "parallel_wall_seconds": parallel_wall_seconds,
            "arena_cache_hits": cache_hits,
            "arena_cache_misses": cache_misses,
        }
    finally:
        arena.close()
        arena.unlink()
    return stats


def check_service_benchmark(stats: dict) -> None:
    """Acceptance asserts: identity, service quality, and real sharing."""
    assert stats["identity_checked"]
    # The segment ships exactly the snapshot's array footprint.
    assert stats["arena_nbytes"] >= stats["snapshot_nbytes"]
    assert stats["arena_nbytes"] <= stats["snapshot_nbytes"] * 1.01 + 1024
    # Sustained traffic stays serviceable through the churn bursts.
    assert stats["success_rate"] >= 0.95, stats["success_rate"]
    assert stats["worker_success_rate"] >= 0.95, stats["worker_success_rate"]
    assert stats["qps"] > 0 and stats["worker_qps"] > 0
    # Liveness-tier refreshes must stay far below a batch's routing cost.
    assert stats["refresh_ms_mean"] < 1000.0, stats["refresh_ms_mean"]
    # With more tasks than workers, the per-worker attach cache must hit.
    assert stats["arena_cache_hits"] >= 1, stats
    assert stats["arena_cache_misses"] <= stats["workers"], stats


def stats_to_run_result(stats: dict):
    """Wrap the stats in a structured RunResult stamped with the service spec."""
    from repro.experiments.runner import ExperimentTable
    from repro.scenarios import RunResult
    from repro.scenarios.service import service_spec

    spec = service_spec(
        nodes=stats["nodes"],
        occupancy=1.0,
        links_per_node=stats["links_per_node"],
        rounds=stats["rounds"],
        churn_rate=stats["churn_per_round"] / stats["nodes"],
        searches=stats["batch"],
        seed=SEED,
        engine="fastpath",
    )
    table = ExperimentTable(
        title=(
            f"million-node service @ {stats['nodes']} nodes: shared-memory "
            f"snapshot + sustained mixed traffic ({stats['rounds']} rounds, "
            f"{stats['batch']} lookups/round, {stats['workers']} workers)"
        ),
        columns=["metric", "value"],
        notes="compile is the direct-to-CSR build (no object graph exists at "
        "this scale); the arena is one shared-memory segment all workers "
        "map; churn is liveness-tier deltas (crash bursts + periodic "
        "revive); field identity arena vs heap is asserted before timing.",
    )
    for key in sorted(stats):
        table.add_row(key, stats[key])
    return RunResult(
        scenario="bench-service",
        spec=spec,
        engine_requested="fastpath",
        engine_used="fastpath",
        tables=[table],
        seconds=stats["build_seconds"]
        + stats["arena_create_seconds"]
        + stats["route_seconds"]
        + stats["parallel_wall_seconds"],
    )


def measure_service_benchmark(**kwargs) -> tuple[dict, dict]:
    """Run the benchmark inside a telemetry session; return (stats, dump)."""
    with telemetry_session() as tel:
        stats = run_service_benchmark(**kwargs)
    return stats, tel.to_dict()


def write_bench_artifact(
    stats: dict, path: Path | None = None, telemetry: dict | None = None
) -> Path:
    """Write the RunResult JSON artifact (default: BENCH_service.json at repo root)."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    return write_bench_result(stats_to_run_result(stats), path, telemetry=telemetry)


def _report(stats: dict) -> str:
    return (
        f"\nmillion-node service @ {stats['nodes']} nodes "
        f"({stats['links_per_node']} links/node, one-sided)\n"
        f"  compile {stats['build_seconds']:.1f}s, snapshot "
        f"{stats['snapshot_nbytes'] / 1e6:.1f} MB -> arena "
        f"{stats['arena_nbytes'] / 1e6:.1f} MB "
        f"(create {stats['arena_create_seconds'] * 1e3:.0f} ms, attach "
        f"{stats['arena_attach_seconds'] * 1e3:.1f} ms, field-identical)\n"
        f"  sustained: {stats['queries']} lookups over {stats['rounds']} rounds, "
        f"success {stats['success_rate']:.4f}, "
        f"QPS {stats['qps']:,.0f}, batch p50 {stats['batch_ms_p50']:.0f} ms "
        f"p99 {stats['batch_ms_p99']:.0f} ms, refresh "
        f"{stats['refresh_ms_mean']:.1f} ms/round\n"
        f"  workers: {stats['workers']} procs x {stats['worker_tasks']} tasks, "
        f"success {stats['worker_success_rate']:.4f}, "
        f"aggregate QPS {stats['worker_qps']:,.0f} "
        f"(cache {stats['arena_cache_hits']} hits / "
        f"{stats['arena_cache_misses']} misses)"
    )


def test_service_scale(benchmark):
    """Million-node compile + arena share + sustained mixed traffic."""
    stats, telemetry = benchmark.pedantic(
        measure_service_benchmark, rounds=1, iterations=1
    )
    print(_report(stats))
    for key in (
        "build_seconds", "snapshot_nbytes", "qps", "worker_qps",
        "batch_ms_p50", "batch_ms_p99", "refresh_ms_mean",
    ):
        benchmark.extra_info[key] = stats[key]
    artifact = write_bench_artifact(stats, telemetry=telemetry)
    print(f"  artifact: {artifact}")
    check_service_benchmark(stats)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=NODES)
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--batch", type=int, default=BATCH)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--worker-tasks", type=int, default=WORKER_TASKS)
    options = parser.parse_args(argv)
    stats, telemetry = measure_service_benchmark(
        nodes=options.nodes,
        rounds=options.rounds,
        batch=options.batch,
        workers=options.workers,
        worker_tasks=options.worker_tasks,
    )
    print(_report(stats))
    artifact = write_bench_artifact(stats, telemetry=telemetry)
    print(f"  artifact: {artifact}")
    check_service_benchmark(stats)
    print(
        "\nall assertions passed (field-identical arena, >= 95% success, "
        "shared-segment fan-out)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

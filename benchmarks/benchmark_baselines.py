"""Benchmark: baseline comparison (Section 3's systems on one workload).

The paper argues that Chord, CAN, and Tapestry are all instances of greedy
routing in a metric space and should behave comparably; this benchmark runs
the same random lookup workload over each system and over this paper's
overlay, healthy and with 30% failed nodes.

Expected shape: the logarithmic systems (this paper's overlay, Chord,
Kleinberg with enough links, Plaxton) deliver in O(log n)-ish hops, while CAN
with d=2 needs O(sqrt n) hops; under failures without repair, the systems with
more routing choice (this overlay with backtracking, Chord with successor
lists) lose far fewer searches than the rigid ones (CAN, Plaxton).
"""

from __future__ import annotations

from repro.experiments.baseline_comparison import run_baseline_comparison


def test_baseline_comparison(benchmark, paper_scale):
    """Hop counts and failure behaviour across all implemented systems."""
    bits = 14 if paper_scale else 10
    searches = 1000 if paper_scale else 200

    table = benchmark.pedantic(
        run_baseline_comparison,
        kwargs={"bits": bits, "searches": searches, "failure_level": 0.3, "seed": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())

    systems = table.column("system")
    hops = dict(zip(systems, table.column("mean_hops")))
    healthy_failures = dict(zip(systems, table.column("failed_fraction")))
    degraded_failures = dict(
        zip(systems, table.column("failed_fraction_after_failures"))
    )
    this_paper = next(s for s in systems if "this-paper" in s)
    can = next(s for s in systems if s.startswith("can"))
    chord = next(s for s in systems if s == "chord")

    benchmark.extra_info["hops_this_paper"] = hops[this_paper]
    benchmark.extra_info["hops_chord"] = hops[chord]
    benchmark.extra_info["hops_can"] = hops[can]

    # All systems deliver everything on the intact network.
    assert all(f == 0.0 for f in healthy_failures.values())
    # CAN's polynomial routing needs clearly more hops than the log systems.
    assert hops[can] > 1.5 * hops[this_paper]
    assert hops[can] > 1.5 * hops[chord]
    # This paper's overlay with backtracking tolerates the failures at least
    # as well as every baseline (no baseline runs a repair protocol here).
    assert all(
        degraded_failures[this_paper] <= degraded_failures[other] + 0.02
        for other in systems
    )

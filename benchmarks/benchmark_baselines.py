"""Benchmark: baseline comparison (Section 3's systems on one workload).

The paper argues that Chord, CAN, and Tapestry are all instances of greedy
routing in a metric space and should behave comparably; this benchmark runs
the same random lookup workload over each system and over this paper's
overlay, healthy and with 30% failed nodes.

Expected shape: the logarithmic systems (this paper's overlay, Chord,
Kleinberg with enough links, Plaxton) deliver in O(log n)-ish hops, while CAN
with d=2 needs O(sqrt n) hops; under failures without repair, the systems with
more routing choice (this overlay with backtracking, Chord with successor
lists) lose far fewer searches than the rigid ones (CAN, Plaxton).

Since the Overlay redesign every topology also compiles to the fastpath:
``run_protocol_engine_comparison`` batch-routes each protocol's snapshot
against its scalar ``route()`` at n >= 10^4 under 30% failures, asserts a
>= 10x throughput speedup **per protocol** with identical statistics, and
writes the machine-readable ``BENCH_baselines.json`` artifact at the repo
root (same RunResult trajectory pattern as ``BENCH_fastpath.json``).

Run with ``pytest benchmarks/benchmark_baselines.py --benchmark-only -s`` or
directly with ``python benchmarks/benchmark_baselines.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __name__ == "__main__":  # direct execution from a clean checkout
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

import numpy as np

from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.telemetry import (
    SECONDS_BUCKETS,
    current as telemetry_current,
    session as telemetry_session,
    write_bench_result,
)

SEED = 4
QUERIES = 10_000
FAILURE_LEVEL = 0.3


BITS = 14
PAPER_BITS = 16


def _protocol_systems(paper_scale: bool) -> dict:
    """One instance per overlay protocol, every one at exactly n = 2^bits."""
    from repro.baselines import (
        CanNetwork,
        ChordNetwork,
        KleinbergGridNetwork,
        PlaxtonNetwork,
    )

    bits = PAPER_BITS if paper_scale else BITS
    side = 1 << (bits // 2)
    return {
        "chord": ChordNetwork(bits=bits),
        "kleinberg": KleinbergGridNetwork(side=side, links_per_node=bits, seed=SEED),
        "can": CanNetwork(side=side, dimensions=2),
        "plaxton": PlaxtonNetwork(digits=bits // 2, base=4),
    }


def run_protocol_engine_comparison(
    queries: int = QUERIES,
    failure_level: float = FAILURE_LEVEL,
    seed: int = SEED,
    paper_scale: bool = False,
) -> dict:
    """Route the same workload per protocol through both engines.

    Each protocol instance gets ``failure_level`` of its nodes failed, then
    routes ``queries`` random live-pair lookups once through the scalar
    ``route()`` and once batched over ``compile_snapshot()``.  Each engine
    receives the workload in its native form — (source, target) tuples for
    the scalar walk, label arrays for the batch engine — so the timings
    measure routing, not input marshalling.  Returns
    ``{protocol: {nodes, object_seconds, fastpath_*, speedup, ...}}``.
    """
    from repro.fastpath import BatchGreedyRouter
    from repro.simulation.workload import LookupWorkload

    results: dict[str, dict] = {}
    for offset, (name, system) in enumerate(_protocol_systems(paper_scale).items()):
        system.fail_fraction(failure_level, seed=seed + 10 * offset)
        live = system.labels(only_alive=True)
        pairs = LookupWorkload(seed=seed + 10 * offset + 1).pairs(live, queries)
        pair_array = np.asarray(pairs, dtype=np.int64)

        started = time.perf_counter()
        failures = 0
        hops: list[int] = []
        for source, target in pairs:
            route = system.route(source, target)
            if route.success:
                hops.append(route.hops)
            else:
                failures += 1
        object_seconds = time.perf_counter() - started

        tel = telemetry_current()
        if tel is not None:
            tel.observe(
                f"bench.{name}.object_seconds", object_seconds, buckets=SECONDS_BUCKETS
            )

        started = time.perf_counter()
        snapshot = system.compile_snapshot()
        # The dense routing matrices are pure topology artifacts built
        # lazily on first use; materialise them in the compile phase so the
        # route phase measures routing alone (matching the scalar side,
        # whose tables were built at construction time).
        snapshot.routing_matrices()
        snapshot.class_matrix()
        snapshot.labels_compact()
        compiled = time.perf_counter()
        router = BatchGreedyRouter(snapshot, hop_limit=system.hop_limit)
        batch = router.route_batch(pair_array[:, 0], pair_array[:, 1])
        finished = time.perf_counter()

        if tel is not None:
            tel.observe(
                f"bench.{name}.fastpath_compile_seconds",
                compiled - started,
                buckets=SECONDS_BUCKETS,
            )
            tel.observe(
                f"bench.{name}.fastpath_route_seconds",
                finished - compiled,
                buckets=SECONDS_BUCKETS,
            )

        results[name] = {
            "nodes": len(system.labels(only_alive=False)),
            "queries": len(pairs),
            "failure_level": failure_level,
            "object_seconds": object_seconds,
            "fastpath_compile_seconds": compiled - started,
            "fastpath_route_seconds": finished - compiled,
            "speedup": object_seconds / (finished - compiled),
            "object_successes": len(pairs) - failures,
            "fastpath_successes": int(batch.success.sum()),
            "object_success_rate": 1.0 - failures / len(pairs),
            "fastpath_success_rate": batch.success_rate(),
            "object_mean_hops": float(np.mean(hops)) if hops else 0.0,
            "fastpath_mean_hops": batch.mean_hops(),
        }
    return results


def check_protocol_speedups(stats: dict) -> None:
    """The acceptance assertions: >= 10x per protocol, identical statistics."""
    for protocol, entry in stats.items():
        # The engines are hop-for-hop identical, so the integer success
        # counts must match exactly (rates are derived floats).
        assert entry["object_successes"] == entry["fastpath_successes"], (
            f"{protocol}: success counts diverge "
            f"({entry['object_successes']} vs {entry['fastpath_successes']})"
        )
        assert abs(entry["object_mean_hops"] - entry["fastpath_mean_hops"]) < 1e-9, (
            f"{protocol}: mean hops diverge "
            f"({entry['object_mean_hops']:.4f} vs {entry['fastpath_mean_hops']:.4f})"
        )
        assert entry["speedup"] >= 10.0, (
            f"{protocol}: batched speedup {entry['speedup']:.1f}x < 10x"
        )


def measure_protocol_engine_comparison(**kwargs) -> tuple[dict, dict]:
    """Run the engine comparison inside a telemetry session; return (stats, dump)."""
    with telemetry_session() as tel:
        stats = run_protocol_engine_comparison(**kwargs)
    return stats, tel.to_dict()


def write_baselines_artifact(
    stats: dict, path: Path | None = None, telemetry: dict | None = None
) -> Path:
    """Write the per-protocol engine comparison as BENCH_baselines.json."""
    from repro.experiments.runner import ExperimentTable
    from repro.scenarios import RunResult
    from repro.scenarios.library import baselines_spec

    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_baselines.json"
    table = ExperimentTable(
        title=f"protocol engine speedups @ {QUERIES} queries, "
        f"{FAILURE_LEVEL:.0%} failed nodes",
        columns=[
            "protocol", "nodes", "object_s", "fastpath_compile_s",
            "fastpath_route_s", "speedup", "success_rate", "mean_hops",
        ],
        notes="object and fastpath statistics are identical at the same seed; "
        "only one copy of each is shown.",
    )
    for protocol, entry in stats.items():
        table.add_row(
            protocol,
            entry["nodes"],
            entry["object_seconds"],
            entry["fastpath_compile_seconds"],
            entry["fastpath_route_seconds"],
            entry["speedup"],
            entry["fastpath_success_rate"],
            entry["fastpath_mean_hops"],
        )
    # The spec must describe the run the rows record: n = 2^BITS per
    # protocol, TERMINATE recovery (the baselines' own scalar rule and the
    # batch router's default), the benchmark workload and failure level.
    spec = baselines_spec(
        bits=BITS,
        searches=QUERIES,
        failure_level=FAILURE_LEVEL,
        seed=SEED,
        engine="fastpath",
    ).with_overrides({"routing.recovery": "terminate"})
    record = RunResult(
        scenario="bench-baselines",
        spec=spec,
        engine_requested="fastpath",
        engine_used="fastpath",
        tables=[table],
        seconds=sum(
            entry["object_seconds"] + entry["fastpath_route_seconds"]
            for entry in stats.values()
        ),
    )
    return write_bench_result(record, path, telemetry=telemetry)


def _report_protocols(stats: dict) -> str:
    lines = [f"\nprotocol engines @ {QUERIES} queries, {FAILURE_LEVEL:.0%} failed nodes"]
    for protocol, entry in stats.items():
        lines.append(
            f"  {protocol:10s} n={entry['nodes']:6d}  "
            f"object {entry['object_seconds']:6.2f}s | "
            f"fastpath {entry['fastpath_route_seconds']:5.2f}s | "
            f"{entry['speedup']:6.1f}x | success {entry['fastpath_success_rate']:.4f}"
        )
    return "\n".join(lines)


def test_baseline_comparison(benchmark, paper_scale):
    """Hop counts and failure behaviour across all implemented systems."""
    bits = 14 if paper_scale else 10
    searches = 1000 if paper_scale else 200

    table = benchmark.pedantic(
        run_baseline_comparison,
        kwargs={"bits": bits, "searches": searches, "failure_level": 0.3, "seed": 4},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.to_text())

    systems = table.column("system")
    hops = dict(zip(systems, table.column("mean_hops")))
    healthy_failures = dict(zip(systems, table.column("failed_fraction")))
    degraded_failures = dict(
        zip(systems, table.column("failed_fraction_after_failures"))
    )
    this_paper = next(s for s in systems if "this-paper" in s)
    can = next(s for s in systems if s.startswith("can"))
    chord = next(s for s in systems if s == "chord")

    benchmark.extra_info["hops_this_paper"] = hops[this_paper]
    benchmark.extra_info["hops_chord"] = hops[chord]
    benchmark.extra_info["hops_can"] = hops[can]

    # All systems deliver everything on the intact network.
    assert all(f == 0.0 for f in healthy_failures.values())
    # CAN's polynomial routing needs clearly more hops than the log systems.
    assert hops[can] > 1.5 * hops[this_paper]
    assert hops[can] > 1.5 * hops[chord]
    # This paper's overlay with backtracking tolerates the failures at least
    # as well as every baseline (no baseline runs a repair protocol here).
    assert all(
        degraded_failures[this_paper] <= degraded_failures[other] + 0.02
        for other in systems
    )


def test_protocol_fastpath_speedups(benchmark, paper_scale):
    """Every baseline protocol must batch-route >= 10x faster, identically."""
    stats, telemetry = benchmark.pedantic(
        measure_protocol_engine_comparison,
        kwargs={"paper_scale": paper_scale},
        rounds=1,
        iterations=1,
    )
    print(_report_protocols(stats))
    for protocol, entry in stats.items():
        benchmark.extra_info[f"{protocol}_speedup"] = entry["speedup"]
    artifact = write_baselines_artifact(stats, telemetry=telemetry)
    print(f"  artifact: {artifact}")
    check_protocol_speedups(stats)


if __name__ == "__main__":
    protocol_stats, run_telemetry = measure_protocol_engine_comparison()
    print(_report_protocols(protocol_stats))
    artifact = write_baselines_artifact(protocol_stats, telemetry=run_telemetry)
    print(f"  artifact: {artifact}")
    check_protocol_speedups(protocol_stats)
    print("\nall assertions passed (>= 10x batched routing per protocol, "
          "statistics identical)")

"""Benchmarks for raw construction and routing throughput.

Not a figure from the paper, but the numbers a downstream adopter asks first:
how long does it take to build an overlay of n nodes with the Section-5
heuristic versus the one-shot ideal builder, and how many lookups per second
does greedy routing sustain?
"""

from __future__ import annotations

from repro.core.builder import build_ideal_network
from repro.core.construction import build_heuristic_network
from repro.core.routing import GreedyRouter, RecoveryStrategy
from repro.simulation.workload import LookupWorkload


def test_build_ideal_network_speed(benchmark, paper_scale):
    """One-shot ideal construction of an n-node overlay."""
    n = (1 << 14) if paper_scale else (1 << 12)
    result = benchmark(build_ideal_network, n, None, 0)
    assert len(result.graph) == n


def test_build_heuristic_network_speed(benchmark, paper_scale):
    """Incremental Section-5 construction of an n-node overlay."""
    n = (1 << 12) if paper_scale else (1 << 10)
    result = benchmark.pedantic(
        build_heuristic_network,
        kwargs={"n": n, "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert len(result.graph) == n


def test_greedy_routing_throughput(benchmark, paper_scale):
    """Greedy lookups per benchmark round on a healthy overlay."""
    n = (1 << 14) if paper_scale else (1 << 12)
    graph = build_ideal_network(n, seed=1).graph
    router = GreedyRouter(graph)
    pairs = LookupWorkload(seed=2).pairs(graph.labels(only_alive=True), 500)

    def run_lookups():
        return sum(1 for s, t in pairs if router.route(s, t).success)

    successes = benchmark(run_lookups)
    assert successes == len(pairs)


def test_backtracking_routing_throughput_under_failures(benchmark, paper_scale):
    """Backtracking lookups per round with 50% of the nodes failed."""
    from repro.core.failures import NodeFailureModel

    n = (1 << 14) if paper_scale else (1 << 12)
    graph = build_ideal_network(n, seed=3).graph
    NodeFailureModel(0.5, seed=4).apply(graph)
    router = GreedyRouter(graph, recovery=RecoveryStrategy.BACKTRACK)
    pairs = LookupWorkload(seed=5).pairs(graph.labels(only_alive=True), 300)

    def run_lookups():
        return sum(1 for s, t in pairs if router.route(s, t).success)

    successes = benchmark(run_lookups)
    assert successes > 0

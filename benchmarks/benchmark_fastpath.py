"""Benchmark: batched fastpath engine vs the scalar object engine.

Routes the same 10 000 random queries over the same 10 000-node overlay with
both engines (terminate recovery, two-sided mode — the configuration the
fastpath contract covers) and reports the throughput gap.  Besides speed,
the benchmark asserts **statistical agreement**: the two engines are
hop-for-hop compatible, so success rate and mean delivery time must match to
tight tolerance (they are in fact identical on identical seeds).

Run with ``pytest benchmarks/benchmark_fastpath.py --benchmark-only -s`` or
directly with ``python benchmarks/benchmark_fastpath.py``.

Results are reported through the scenario API's structured
:class:`~repro.scenarios.RunResult` record and written to
``BENCH_fastpath.json`` at the repository root, so successive PRs leave a
machine-readable performance trajectory that can be diffed.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

if __name__ == "__main__":  # direct execution from a clean checkout
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir() and str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

import numpy as np

from repro.core.builder import build_ideal_network
from repro.core.routing import GreedyRouter, RecoveryStrategy
from repro.fastpath import BatchGreedyRouter, compile_snapshot
from repro.simulation.workload import LookupWorkload

NODES = 10_000
QUERIES = 10_000
SEED = 1


def _object_engine(graph, pairs) -> tuple[float, float, float]:
    """Return (seconds, success_rate, mean_hops) for the scalar router."""
    router = GreedyRouter(graph, recovery=RecoveryStrategy.TERMINATE, seed=SEED)
    hops: list[int] = []
    failures = 0
    started = time.perf_counter()
    for source, target in pairs:
        route = router.route(source, target)
        if route.success:
            hops.append(route.hops)
        else:
            failures += 1
    elapsed = time.perf_counter() - started
    success_rate = 1.0 - failures / len(pairs)
    return elapsed, success_rate, float(np.mean(hops)) if hops else 0.0


def _fastpath_engine(graph, pairs) -> tuple[float, float, float, float]:
    """Return (compile_s, route_s, success_rate, mean_hops) for the batch engine."""
    started = time.perf_counter()
    router = BatchGreedyRouter(compile_snapshot(graph))
    compiled = time.perf_counter()
    result = router.route_pairs(pairs)
    finished = time.perf_counter()
    return (
        compiled - started,
        finished - compiled,
        result.success_rate(),
        result.mean_hops(),
    )


def run_comparison(nodes: int = NODES, queries: int = QUERIES, seed: int = SEED) -> dict:
    """Build one overlay, route the same queries with both engines."""
    graph = build_ideal_network(nodes, seed=seed).graph
    pairs = LookupWorkload(seed=seed + 1).pairs(graph.labels(only_alive=True), queries)

    object_seconds, object_success, object_hops = _object_engine(graph, pairs)
    compile_seconds, route_seconds, fast_success, fast_hops = _fastpath_engine(
        graph, pairs
    )
    return {
        "nodes": nodes,
        "queries": queries,
        "object_seconds": object_seconds,
        "object_qps": queries / object_seconds,
        "fastpath_compile_seconds": compile_seconds,
        "fastpath_route_seconds": route_seconds,
        "fastpath_qps": queries / route_seconds,
        "throughput_speedup": object_seconds / route_seconds,
        "end_to_end_speedup": object_seconds / (compile_seconds + route_seconds),
        "object_success_rate": object_success,
        "fastpath_success_rate": fast_success,
        "object_mean_hops": object_hops,
        "fastpath_mean_hops": fast_hops,
    }


def stats_to_run_result(stats: dict):
    """Wrap the comparison stats in a structured, JSON-able RunResult."""
    from repro.experiments.runner import ExperimentTable
    from repro.scenarios import RunResult, ScenarioSpec, TopologySpec, WorkloadSpec

    spec = ScenarioSpec(
        scenario="bench-fastpath",
        topology=TopologySpec(kind="ideal", nodes=stats["nodes"]),
        workload=WorkloadSpec(searches=stats["queries"]),
        engine="fastpath",
        seed=SEED,
    )
    table = ExperimentTable(
        title=f"fastpath vs object engine @ n={stats['nodes']}, {stats['queries']} queries",
        columns=["metric", "value"],
        notes="queries_per_sec counts routing time alone; end_to_end_speedup "
        "includes one-off snapshot compilation.",
    )
    for key in sorted(stats):
        table.add_row(key, stats[key])
    return RunResult(
        scenario="bench-fastpath",
        spec=spec,
        engine_requested="fastpath",
        engine_used="fastpath",
        tables=[table],
        seconds=stats["object_seconds"]
        + stats["fastpath_compile_seconds"]
        + stats["fastpath_route_seconds"],
    )


def write_bench_artifact(stats: dict, path: Path | None = None) -> Path:
    """Write the RunResult JSON artifact (default: BENCH_fastpath.json at repo root)."""
    if path is None:
        path = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"
    path.write_text(stats_to_run_result(stats).to_json() + "\n", encoding="utf-8")
    return path


def check_agreement_and_speedup(stats: dict) -> None:
    """The acceptance assertions: >= 10x throughput, matching statistics."""
    # Statistical agreement — the engines are hop-for-hop compatible, so the
    # tolerance is belt-and-braces (the values are identical in practice).
    assert abs(stats["object_success_rate"] - stats["fastpath_success_rate"]) <= 0.01, (
        f"success rates diverge: object {stats['object_success_rate']:.4f} "
        f"vs fastpath {stats['fastpath_success_rate']:.4f}"
    )
    assert abs(stats["object_mean_hops"] - stats["fastpath_mean_hops"]) <= 0.05, (
        f"mean hops diverge: object {stats['object_mean_hops']:.3f} "
        f"vs fastpath {stats['fastpath_mean_hops']:.3f}"
    )
    # Throughput: >= 10x queries/sec (typically 40-80x); end-to-end including
    # one-off snapshot compilation stays comfortably ahead as well.
    assert stats["throughput_speedup"] >= 10.0, (
        f"fastpath throughput speedup {stats['throughput_speedup']:.1f}x < 10x"
    )
    assert stats["end_to_end_speedup"] >= 3.0, (
        f"fastpath end-to-end speedup {stats['end_to_end_speedup']:.1f}x < 3x"
    )


def _report(stats: dict) -> str:
    return (
        f"\nfastpath vs object @ n={stats['nodes']}, {stats['queries']} queries\n"
        f"  object:   {stats['object_seconds']:.3f}s "
        f"({stats['object_qps']:,.0f} queries/sec)\n"
        f"  fastpath: compile {stats['fastpath_compile_seconds']:.3f}s + "
        f"route {stats['fastpath_route_seconds']:.3f}s "
        f"({stats['fastpath_qps']:,.0f} queries/sec)\n"
        f"  speedup:  {stats['throughput_speedup']:.1f}x throughput, "
        f"{stats['end_to_end_speedup']:.1f}x end-to-end\n"
        f"  agreement: success {stats['object_success_rate']:.4f} vs "
        f"{stats['fastpath_success_rate']:.4f}, mean hops "
        f"{stats['object_mean_hops']:.3f} vs {stats['fastpath_mean_hops']:.3f}"
    )


def test_fastpath_speedup_and_agreement(benchmark, paper_scale):
    """Fastpath must be >= 10x faster than the object engine and agree with it."""
    nodes = (1 << 15) if paper_scale else NODES
    queries = 50_000 if paper_scale else QUERIES

    stats = benchmark.pedantic(
        run_comparison,
        kwargs={"nodes": nodes, "queries": queries, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    print(_report(stats))
    for key, value in stats.items():
        benchmark.extra_info[key] = value
    artifact = write_bench_artifact(stats)
    print(f"  artifact: {artifact}")
    check_agreement_and_speedup(stats)


if __name__ == "__main__":
    result = run_comparison()
    print(_report(result))
    artifact = write_bench_artifact(result)
    print(f"  artifact: {artifact}")
    check_agreement_and_speedup(result)
    print("\nall assertions passed (>= 10x throughput, statistics agree)")
